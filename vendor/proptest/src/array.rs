//! `prop::array`: fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// See [`uniform32`] and friends.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn new_value(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.new_value(rng))
    }
}

/// A generic fixed-size array strategy.
pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
    UniformArray { element }
}

macro_rules! named_uniform {
    ($($name:ident => $n:literal),* $(,)?) => {$(
        /// A fixed-size array strategy (named form, matching proptest).
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*}
}
named_uniform! {
    uniform4 => 4,
    uniform8 => 8,
    uniform12 => 12,
    uniform16 => 16,
    uniform32 => 32,
}
