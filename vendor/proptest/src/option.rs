//! `prop::option`: strategies for `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// `Some` three times out of four, mirroring the real crate's default
/// weighting.
pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy { element }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    element: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.element.new_value(rng))
        }
    }
}
