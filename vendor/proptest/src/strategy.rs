//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree / shrinking: a
/// strategy simply draws a fresh value from the runner's RNG.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing the predicate. The runner
    /// retries (bounded), so keep the predicate permissive.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Type-erases the strategy for heterogeneous composition
    /// (e.g. [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
    pub(crate) reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}): no accepted value after 1000 draws",
            self.reason
        );
    }
}

/// Uniform choice among same-typed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof!: no options");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*}
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*}
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
