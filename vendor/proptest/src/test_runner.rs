//! The deterministic case runner behind [`crate::proptest!`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Runner configuration (subset of the real `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's precondition failed (`prop_assume!`); draw another.
    Reject(&'static str),
    /// A property assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure carrying its message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A rejected precondition.
    pub fn reject(what: &'static str) -> Self {
        TestCaseError::Reject(what)
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `config.cases` successful cases of `f`, drawing each case's
/// inputs from a seed derived from the test name, the case index, and
/// an optional `PROPTEST_SEED` environment override. Rejections
/// (`prop_assume!`) retry with fresh seeds, bounded at 64 per case.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| {
            let v = v.trim().trim_start_matches("0x");
            u64::from_str_radix(v, 16).ok()
        })
        .unwrap_or_else(|| fnv1a(name));
    const MAX_REJECTS_PER_CASE: u32 = 64;
    for case in 0..config.cases {
        let mut attempt = 0u32;
        loop {
            let seed = base
                .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((attempt as u64) << 48);
            let mut rng = TestRng::seed_from_u64(seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
            match outcome {
                Ok(Ok(())) => break,
                Ok(Err(TestCaseError::Reject(what))) => {
                    attempt += 1;
                    assert!(
                        attempt < MAX_REJECTS_PER_CASE,
                        "proptest {name}: case {case} rejected {MAX_REJECTS_PER_CASE} times \
                         (last prop_assume!: {what})"
                    );
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "proptest {name}: case {case}/{} failed \
                         (rerun with PROPTEST_SEED=0x{base:016x}):\n{msg}",
                        config.cases
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "proptest {name}: case {case}/{} panicked \
                         (rerun with PROPTEST_SEED=0x{base:016x})",
                        config.cases
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run_cases("t", &ProptestConfig::with_cases(10), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn rejects_retry_with_fresh_inputs() {
        let mut accepted = 0;
        run_cases("t2", &ProptestConfig::with_cases(5), |rng| {
            if rng.gen_range(0u32..4) == 0 {
                return Err(TestCaseError::reject("unlucky"));
            }
            accepted += 1;
            Ok(())
        });
        assert_eq!(accepted, 5);
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failure_panics_with_seed() {
        run_cases("t3", &ProptestConfig::with_cases(3), |_| {
            Err(TestCaseError::fail("nope".into()))
        });
    }
}
