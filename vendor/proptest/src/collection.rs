//! Collection strategies: `vec`, `btree_set`, and the [`SizeRange`]
//! conversions they accept.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// An inclusive size band accepted wherever the real crate takes
/// `impl Into<SizeRange>`: a bare `usize` (exact), `a..b`, or `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` holding between `size.lo` and `size.hi`
/// *distinct* elements. Panics if the element strategy cannot produce
/// enough distinct values in a bounded number of draws.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let want = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut draws = 0usize;
        while set.len() < want {
            set.insert(self.element.new_value(rng));
            draws += 1;
            assert!(
                draws < want * 100 + 100,
                "btree_set: could not draw {want} distinct elements \
                 after {draws} attempts"
            );
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(vec(any::<u8>(), 6).new_value(&mut rng).len(), 6);
            let n = vec(any::<u8>(), 1..4).new_value(&mut rng).len();
            assert!((1..4).contains(&n));
            let m = vec(any::<u8>(), 0..=2).new_value(&mut rng).len();
            assert!(m <= 2);
        }
    }

    #[test]
    fn btree_set_is_exact_and_distinct() {
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..20 {
            let s = btree_set(0usize..20, 3).new_value(&mut rng);
            assert_eq!(s.len(), 3);
        }
    }
}
