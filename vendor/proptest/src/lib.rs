//! Offline shim for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! re-implements the property-testing API subset the workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `boxed`, range / regex-string / collection / option / array / tuple
//! strategies, `any::<T>()`, `prop_oneof!`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports its deterministic seed
//!   (re-runnable via `PROPTEST_SEED`) instead of a minimized input.
//! - Regex strategies support the subset actually used: literals,
//!   classes (`[a-z0-9._-]`, including ranges), groups, alternation
//!   (`|`), and repetition (`{m}`, `{m,n}`, `?`, `*`, `+`).
//! - Default case count is 64 (override with `PROPTEST_CASES` or
//!   `ProptestConfig::with_cases`).

pub mod strategy;

pub mod test_runner;

pub mod sample;

pub mod string;

pub mod collection;

pub mod option;

pub mod array;

pub mod arbitrary;

pub use arbitrary::{any, Arbitrary};

/// Namespace alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::{array, collection, option, sample, strategy};
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// item expands to a `#[test]` (the attribute comes from the source)
/// running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal item-muncher behind [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__pt_config,
                |__pt_rng| {
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __pt_rng);)+
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a proptest body, failing the case (not
/// the whole process) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current case (the runner draws a replacement) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type. (Weighted variants of the real macro are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
