//! Regex-driven string generation: `"[a-z0-9]{1,8}"` used directly as
//! a `Strategy<Value = String>`.
//!
//! Supported subset (everything the workspace's patterns use, plus a
//! little headroom): literal characters, `\`-escapes, character
//! classes with ranges (`[a-zA-Z0-9._-]`), groups `(...)`, top-level
//! and grouped alternation `|`, and the repetitions `{m}`, `{m,n}`,
//! `?`, `*`, `+` (the unbounded forms are capped at 8).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Cap applied to `*` and `+`.
const UNBOUNDED_REP_CAP: u32 = 8;

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    Group(Alternation),
}

#[derive(Clone, Debug)]
struct Term {
    atom: Atom,
    min: u32,
    max: u32,
}

type Sequence = Vec<Term>;

#[derive(Clone, Debug)]
struct Alternation(Vec<Sequence>);

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
            pattern,
        }
    }

    fn fail(&self, what: &str) -> ! {
        panic!("unsupported regex {:?}: {what}", self.pattern);
    }

    fn parse_alternation(&mut self) -> Alternation {
        let mut alts = vec![self.parse_sequence()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            alts.push(self.parse_sequence());
        }
        Alternation(alts)
    }

    fn parse_sequence(&mut self) -> Sequence {
        let mut seq = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            let (min, max) = self.parse_repetition();
            seq.push(Term { atom, min, max });
        }
        seq
    }

    fn parse_atom(&mut self) -> Atom {
        match self.chars.next() {
            Some('(') => {
                let inner = self.parse_alternation();
                if self.chars.next() != Some(')') {
                    self.fail("unclosed group");
                }
                Atom::Group(inner)
            }
            Some('[') => Atom::Class(self.parse_class()),
            Some('\\') => match self.chars.next() {
                Some(c) => Atom::Literal(c),
                None => self.fail("dangling escape"),
            },
            Some('.') => Atom::Class(vec![(' ', '~')]),
            Some(c) if !"?*+{".contains(c) => Atom::Literal(c),
            Some(c) => self.fail(&format!("unexpected {c:?}")),
            None => self.fail("unexpected end"),
        }
    }

    fn parse_class(&mut self) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        loop {
            let c = match self.chars.next() {
                Some(']') => {
                    if ranges.is_empty() {
                        self.fail("empty class");
                    }
                    return ranges;
                }
                Some('\\') => self.chars.next().unwrap_or_else(|| self.fail("escape")),
                Some(c) => c,
                None => self.fail("unclosed class"),
            };
            // `a-z` range, unless `-` is the final char before `]`.
            if self.chars.peek() == Some(&'-') {
                let mut ahead = self.chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&']') | None => ranges.push((c, c)),
                    Some(&hi) => {
                        self.chars.next();
                        self.chars.next();
                        if hi < c {
                            self.fail("inverted class range");
                        }
                        ranges.push((c, hi));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
    }

    fn parse_repetition(&mut self) -> (u32, u32) {
        match self.chars.peek() {
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('*') => {
                self.chars.next();
                (0, UNBOUNDED_REP_CAP)
            }
            Some('+') => {
                self.chars.next();
                (1, UNBOUNDED_REP_CAP)
            }
            Some('{') => {
                self.chars.next();
                let mut spec = String::new();
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => self.fail("unclosed repetition"),
                    }
                }
                let parse = |s: &str| -> u32 {
                    s.trim()
                        .replace('_', "")
                        .parse()
                        .unwrap_or_else(|_| self.fail("bad repetition count"))
                };
                match spec.split_once(',') {
                    Some((m, n)) => (parse(m), parse(n)),
                    None => {
                        let n = parse(&spec);
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        }
    }
}

fn generate(alt: &Alternation, rng: &mut TestRng, out: &mut String) {
    let seq = &alt.0[rng.gen_range(0..alt.0.len())];
    for term in seq {
        let n = rng.gen_range(term.min..=term.max);
        for _ in 0..n {
            match &term.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    out.push(char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo));
                }
                Atom::Group(inner) => generate(inner, rng, out),
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let alt = Parser::new(self).parse_alternation();
        let mut out = String::new();
        generate(&alt, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn check(pattern: &'static str, validate: impl Fn(&str) -> bool) {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = pattern.new_value(&mut rng);
            assert!(validate(&s), "pattern {pattern:?} produced {s:?}");
        }
    }

    #[test]
    fn class_with_repetition() {
        check("[a-z0-9]{1,8}", |s| {
            (1..=8).contains(&s.len())
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
        });
    }

    #[test]
    fn grouped_paths() {
        check("(/[a-zA-Z0-9._-]{1,12}){0,5}", |s| {
            s.is_empty()
                || (s.starts_with('/')
                    && s.split('/').skip(1).all(|seg| {
                        (1..=12).contains(&seg.len())
                            && seg
                                .chars()
                                .all(|c| c.is_ascii_alphanumeric() || "._-".contains(c))
                    }))
        });
    }

    #[test]
    fn alternation_including_literals() {
        check("(/[a-z]{1,4}){1,3}|/|//bad|/trailing/", |s| {
            s == "/" || s == "//bad" || s == "/trailing/" || s.starts_with('/')
        });
    }

    #[test]
    fn printable_class_range() {
        check("[ -~]{0,20}", |s| {
            s.len() <= 20 && s.chars().all(|c| (' '..='~').contains(&c))
        });
    }

    #[test]
    fn dash_at_class_edge_is_literal() {
        check("[A-Za-z0-9-]{1,5}", |s| {
            s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
        });
    }
}
