//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*}
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.gen::<u64>())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable; the
        // workspace never relies on exotic code points from `any`.
        rng.gen_range(0x20u32..0x7F) as u8 as char
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
