//! `prop::sample`: values for picking indices into runtime-sized
//! collections.

/// An index "proportion" drawn independently of any collection, mapped
/// into `0..len` at use time via [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Self {
        Index(raw)
    }

    /// Maps this index into `0..len`. Panics when `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        // Scale the 64-bit proportion rather than taking a modulus so
        // the mapping is monotone in the raw value, like the real crate.
        ((self.0 as u128 * len as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_stays_in_bounds() {
        for raw in [0u64, 1, u64::MAX / 2, u64::MAX] {
            for len in [1usize, 2, 7, 1000] {
                assert!(Index::new(raw).index(len) < len);
            }
        }
    }

    #[test]
    fn index_is_monotone_in_raw_value() {
        let a = Index::new(u64::MAX / 4).index(100);
        let b = Index::new(u64::MAX / 2).index(100);
        assert!(a <= b);
    }
}
