//! Offline shim for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable, zero-copy
//! sliceable byte buffer backed by `Arc<[u8]>`. Only the API surface the
//! workspace uses is implemented.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable shared byte buffer. Clones share the allocation;
/// [`Bytes::slice`] returns a view without copying.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (does not allocate a backing store per call).
    pub fn new() -> Bytes {
        static EMPTY: &[u8] = &[];
        Bytes::from_static(EMPTY)
    }

    /// Wraps a static slice. (The shim copies into an `Arc` once; the
    /// real crate is zero-copy here, which no caller depends on.)
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes {
            end: bytes.len(),
            data: Arc::from(bytes),
            start: 0,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view. Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "Bytes::slice: range {lo}..{hi} out of bounds for length {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_view() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(..=1);
        assert_eq!(&s2[..], &[2, 3]);
    }

    #[test]
    fn equality_and_conversions() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from("abc"));
        assert_eq!(Bytes::from("abc"), "abc");
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![9u8]).to_vec(), vec![9u8]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from_static(b"ab").slice(0..3);
    }
}
