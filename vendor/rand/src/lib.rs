//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the pieces the workspace actually uses: the [`Rng`] / [`SeedableRng`]
//! traits, [`rngs::StdRng`], integer/float `gen_range`, and `gen::<f64>`.
//! The core generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic across platforms, which is what the simulator needs.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// A range form accepted by [`Rng::gen_range`]. Generic over the
/// produced type (rather than using an associated type) so integer
/// literal inference can flow from the call site's target type, as it
/// does with the real crate.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return u128::sample(rng) as $t;
                }
                lo.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
    )*}
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*}
}
impl_sample_range_float!(f32, f64);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of the inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range` (`Range` or `RangeInclusive`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility: callers asking for the "small"
    /// generator get the same xoshiro256++ core.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
