//! Offline shim for the `criterion` crate.
//!
//! Implements a small but honest micro-benchmark harness behind the
//! criterion API subset the workspace uses: `Criterion::bench_function`,
//! `benchmark_group` + `Throughput`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark is auto-calibrated so a batch takes
//! roughly [`TARGET_BATCH`], then `SAMPLES` batches are timed and the
//! median per-iteration time is reported (median resists scheduler
//! noise better than the mean).

use std::time::{Duration, Instant};

/// Target wall-clock duration of one measured batch.
const TARGET_BATCH: Duration = Duration::from_millis(20);
/// Number of measured batches per benchmark.
const SAMPLES: usize = 11;

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-rate annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration nanoseconds, filled in by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Calibrates and measures `f`, recording the median ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: grow the batch until it costs ~TARGET_BATCH.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= TARGET_BATCH || batch >= 1 << 40 {
                break;
            }
            // Aim directly at the target, with 2x headroom for noise.
            let scale =
                (TARGET_BATCH.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64).clamp(2.0, 1e6);
            batch = ((batch as f64) * scale) as u64;
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human_rate(bytes_per_sec: f64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    if bytes_per_sec >= GIB {
        format!("{:.2} GiB/s", bytes_per_sec / GIB)
    } else {
        format!("{:.2} MiB/s", bytes_per_sec / MIB)
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        median_ns: f64::NAN,
    };
    f(&mut b);
    let mut line = format!("bench  {name:<48} {:>12}/iter", human_ns(b.median_ns));
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (b.median_ns / 1e9);
            line.push_str(&format!("  ({})", human_rate(rate)));
        }
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (b.median_ns / 1e9);
            line.push_str(&format!("  ({rate:.0} elem/s"));
            line.push(')');
        }
        None => {}
    }
    println!("{line}");
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Honors a `cargo bench -- <filter>` substring filter.
    fn accepts(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = name.into();
        if self.accepts(&name) {
            run_one(&name, None, &mut f);
        }
        self
    }

    /// Opens a named group sharing a throughput annotation.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks (shim for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.into());
        if self.criterion.accepts(&full) {
            run_one(&full, self.throughput, &mut f);
        }
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Builds a `Criterion` honoring the CLI filter argument, skipping
/// cargo's `--bench` style flags.
pub fn criterion_from_args() -> Criterion {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    Criterion { filter }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::criterion_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let mut b = Bencher {
            median_ns: f64::NAN,
        };
        b.iter(|| black_box(1u64).wrapping_mul(3));
        assert!(b.median_ns.is_finite());
        assert!(b.median_ns > 0.0);
        assert!(b.median_ns < 1_000.0, "trivial op took {} ns", b.median_ns);
    }
}
