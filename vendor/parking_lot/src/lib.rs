//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the (tiny) API subset the workspace uses on top of
//! `std::sync`. Semantics differ from the real crate in one deliberate
//! way: lock poisoning is ignored (`parking_lot` has no poisoning), so
//! the guards are obtained with `unwrap_or_else(PoisonError::into_inner)`.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (no `Result`), mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
