//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! NoCDN usage records are "secured via a cryptographic signature using
//! the secret key furnished by the content provider" (§IV-B). That
//! signature is HMAC-SHA-256 here: the provider issues a short-term
//! secret per peer; the loader signs usage records with it.

use crate::sha256::Sha256;

/// A 256-bit HMAC tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HmacTag(pub [u8; 32]);

impl HmacTag {
    /// The raw tag bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are hashed first, per RFC 2104.
///
/// ```
/// use hpop_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     tag.as_bytes()[..4],
///     [0xf7, 0xbc, 0x83, 0xf4],
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> HmacTag {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(Sha256::digest(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    HmacTag(*outer.finalize().as_bytes())
}

/// Verifies a tag in constant time.
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], tag: &HmacTag) -> bool {
    let expect = hmac_sha256(key, message);
    crate::constant_time_eq(&expect.0, &tag.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(tag: &HmacTag) -> String {
        tag.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_binary_data() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        assert!(!verify_hmac_sha256(b"k", b"m2", &tag));
        assert!(!verify_hmac_sha256(b"k2", b"m", &tag));
        let mut forged = tag;
        forged.0[31] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"m", &forged));
    }
}
