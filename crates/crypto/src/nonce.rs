//! Replay protection for signed usage records.
//!
//! §IV-B: NoCDN usage reports "include a nonce to prevent replay". The
//! [`NonceRegistry`] is the provider-side dedup set: a nonce is accepted
//! exactly once per scope (peer), with an optional sliding window to
//! bound memory over long deployments.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A 128-bit nonce carried in a usage record.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Nonce(pub u128);

impl Nonce {
    /// Derives a nonce deterministically from a counter and scope id —
    /// used by simulated clients, which draw the counter from the
    /// experiment's seeded RNG.
    pub fn from_parts(scope: u64, counter: u64) -> Nonce {
        Nonce(((scope as u128) << 64) | counter as u128)
    }
}

/// Accepts each (scope, nonce) pair at most once.
///
/// ```
/// use hpop_crypto::nonce::{Nonce, NonceRegistry};
/// let mut reg = NonceRegistry::new();
/// let n = Nonce(7);
/// assert!(reg.accept("peer-1", n));
/// assert!(!reg.accept("peer-1", n));   // replay rejected
/// assert!(reg.accept("peer-2", n));    // different scope is fine
/// ```
#[derive(Clone, Debug, Default)]
pub struct NonceRegistry {
    seen: BTreeMap<String, BTreeSet<Nonce>>,
    order: VecDeque<(String, Nonce)>,
    capacity: Option<usize>,
    rejected: u64,
}

impl NonceRegistry {
    /// Creates an unbounded registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry that remembers only the most recent `capacity`
    /// nonces (across all scopes). Older nonces are forgotten FIFO; a
    /// record replayed after eviction would be re-accepted, so size the
    /// window to cover the records' validity period.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        NonceRegistry {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Registers a nonce for a scope. Returns `true` if it was fresh,
    /// `false` on replay.
    pub fn accept(&mut self, scope: &str, nonce: Nonce) -> bool {
        let set = self.seen.entry(scope.to_owned()).or_default();
        if !set.insert(nonce) {
            self.rejected += 1;
            return false;
        }
        if let Some(cap) = self.capacity {
            self.order.push_back((scope.to_owned(), nonce));
            while self.order.len() > cap {
                let (s, n) = self.order.pop_front().expect("len > cap > 0");
                if let Some(set) = self.seen.get_mut(&s) {
                    set.remove(&n);
                    if set.is_empty() {
                        self.seen.remove(&s);
                    }
                }
            }
        }
        true
    }

    /// Whether a nonce has been seen (without registering it).
    pub fn contains(&self, scope: &str, nonce: Nonce) -> bool {
        self.seen.get(scope).is_some_and(|s| s.contains(&nonce))
    }

    /// Number of currently remembered nonces.
    pub fn len(&self) -> usize {
        self.seen.values().map(BTreeSet::len).sum()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Total replays rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The sliding-window capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Every remembered `(scope, nonce)` pair, in FIFO order for a
    /// bounded registry and sorted order otherwise — a deterministic
    /// enumeration for persistence layers.
    pub fn entries(&self) -> Vec<(String, Nonce)> {
        if self.capacity.is_some() {
            self.order.iter().cloned().collect()
        } else {
            self.seen
                .iter()
                .flat_map(|(s, set)| set.iter().map(move |n| (s.clone(), *n)))
                .collect()
        }
    }

    /// Rebuilds a registry from [`NonceRegistry::capacity`],
    /// [`NonceRegistry::rejected`] and [`NonceRegistry::entries`]. The
    /// entries are re-accepted in order, so a bounded registry's
    /// eviction window comes back exactly as it was.
    pub fn restore(capacity: Option<usize>, rejected: u64, entries: &[(String, Nonce)]) -> Self {
        let mut reg = match capacity {
            Some(c) => NonceRegistry::with_capacity(c),
            None => NonceRegistry::new(),
        };
        for (scope, nonce) in entries {
            reg.accept(scope, *nonce);
        }
        reg.rejected = rejected;
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_once_per_scope() {
        let mut r = NonceRegistry::new();
        assert!(r.accept("a", Nonce(1)));
        assert!(!r.accept("a", Nonce(1)));
        assert!(r.accept("b", Nonce(1)));
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn contains_does_not_register() {
        let mut r = NonceRegistry::new();
        assert!(!r.contains("a", Nonce(9)));
        r.accept("a", Nonce(9));
        assert!(r.contains("a", Nonce(9)));
        assert!(!r.contains("b", Nonce(9)));
    }

    #[test]
    fn bounded_registry_evicts_fifo() {
        let mut r = NonceRegistry::with_capacity(2);
        r.accept("p", Nonce(1));
        r.accept("p", Nonce(2));
        r.accept("p", Nonce(3)); // evicts Nonce(1)
        assert!(!r.contains("p", Nonce(1)));
        assert!(r.contains("p", Nonce(2)));
        assert!(r.contains("p", Nonce(3)));
        assert_eq!(r.len(), 2);
        // Evicted nonce would (by design) be re-accepted.
        assert!(r.accept("p", Nonce(1)));
    }

    #[test]
    fn from_parts_is_injective_over_scope_and_counter() {
        assert_ne!(Nonce::from_parts(1, 2), Nonce::from_parts(2, 1));
        assert_eq!(Nonce::from_parts(1, 2), Nonce::from_parts(1, 2));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = NonceRegistry::with_capacity(0);
    }

    #[test]
    fn empty_registry() {
        let r = NonceRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.rejected(), 0);
    }
}
