//! ChaCha20 stream cipher (RFC 8439).
//!
//! The data attic encrypts content before peer backup (§IV-A, "Data
//! Availability": "backup the encrypted data ... with a variety of
//! peers"). ChaCha20 is the cipher: simple to implement from spec,
//! fast in pure Rust, and nonce-misuse is easy to audit in tests.

/// ChaCha20 keystream generator / stream cipher.
///
/// Encryption and decryption are the same XOR operation:
///
/// ```
/// use hpop_crypto::ChaCha20;
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut ct = b"attic backup block".to_vec();
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut ct);
/// assert_ne!(&ct[..], b"attic backup block");
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut ct);
/// assert_eq!(&ct[..], b"attic backup block");
/// ```
#[derive(Clone, Debug)]
pub struct ChaCha20 {
    state: [u32; 16],
}

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key, 96-bit nonce and initial
    /// 32-bit block counter (RFC 8439 layout).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 { state }
    }

    #[inline]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    /// Produces the next 64-byte keystream block and advances the counter.
    fn next_block(&mut self) -> [u8; 64] {
        let mut work = self.state;
        for _ in 0..10 {
            // column rounds
            Self::quarter_round(&mut work, 0, 4, 8, 12);
            Self::quarter_round(&mut work, 1, 5, 9, 13);
            Self::quarter_round(&mut work, 2, 6, 10, 14);
            Self::quarter_round(&mut work, 3, 7, 11, 15);
            // diagonal rounds
            Self::quarter_round(&mut work, 0, 5, 10, 15);
            Self::quarter_round(&mut work, 1, 6, 11, 12);
            Self::quarter_round(&mut work, 2, 7, 8, 13);
            Self::quarter_round(&mut work, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let v = work[i].wrapping_add(self.state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        out
    }

    /// XORs the keystream into `data` in place (encrypt or decrypt).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(64) {
            let ks = self.next_block();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// Convenience: returns an encrypted copy of `data`.
    pub fn encrypt(key: &[u8; 32], nonce: &[u8; 12], data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        ChaCha20::new(key, nonce, 0).apply_keystream(&mut out);
        out
    }

    /// Convenience: returns a decrypted copy of `data` (same as encrypt).
    pub fn decrypt(key: &[u8; 32], nonce: &[u8; 12], data: &[u8]) -> Vec<u8> {
        Self::encrypt(key, nonce, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut c = ChaCha20::new(&key, &nonce, 1);
        let block = c.next_block();
        let expect_start = [0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15];
        assert_eq!(&block[..8], &expect_start);
        let expect_end = [0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e];
        assert_eq!(&block[56..], &expect_end);
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut data);
        assert_eq!(
            &data[..16],
            &[
                0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
                0x69, 0x81
            ]
        );
        assert_eq!(data.len(), plaintext.len());
        // Round-trips.
        ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut data);
        assert_eq!(&data[..], plaintext);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = [1u8; 32];
        let a = ChaCha20::encrypt(&key, &[0u8; 12], b"same plaintext");
        let b = ChaCha20::encrypt(&key, &[1u8; 12], b"same plaintext");
        assert_ne!(a, b);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_various_lengths() {
        let key = [42u8; 32];
        let nonce = [7u8; 12];
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = ChaCha20::encrypt(&key, &nonce, &data);
            assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), data, "len {len}");
            if len > 0 {
                assert_ne!(ct, data, "len {len} ciphertext equals plaintext");
            }
        }
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [3u8; 32];
        let nonce = [5u8; 12];
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let b0 = c.next_block();
        let b1 = c.next_block();
        assert_ne!(b0, b1);
        // A cipher starting at counter 1 produces b1 first.
        let mut c2 = ChaCha20::new(&key, &nonce, 1);
        assert_eq!(c2.next_block(), b1);
    }
}
