//! The cache accountability puzzle (CAPnet-style).
//!
//! NoCDN's signature + nonce + work-cross-check accounting stops a peer
//! from *forging* usage records, but it cannot stop a peer and a client
//! who **collude**: the client holds a real provider-issued key and can
//! sign a record for a retrieval that never happened. CAPnet's insight
//! is economic, not cryptographic — make every *payable* record cost
//! the serving side at least one data-dependent pass over the bytes it
//! claims to have served, so fabricating a retrieval is as expensive as
//! honestly performing it, and the attacker's payable bytes per unit of
//! work are bounded by a constant regardless of how many Sybil clients
//! they mint.
//!
//! The puzzle is a sequential random walk over the served bytes:
//!
//! 1. The state is seeded from a **challenge** the provider's per-epoch
//!    seed binds to `(client, peer, nonce)` — so a solution cannot be
//!    replayed across records (the nonce is single-use) nor precomputed
//!    before the epoch seed is published.
//! 2. Each round hashes two data blocks into the state: the
//!    round-indexed block (so every pass provably covers every byte of
//!    the claim — a proof over even one wrong block cannot survive a
//!    full replay) and a state-selected block (so rounds are strictly
//!    sequential and cannot be answered without holding the data). The
//!    number of rounds scales with the data length.
//! 3. The proof carries periodic **checkpoints** of the walk. The
//!    verifier — who has the authentic bytes — replays only a sampled
//!    subset of checkpoint-to-checkpoint segments (always including the
//!    final, tag-binding one), chosen pseudo-randomly from the proof
//!    tag itself. Verification therefore costs a small constant number
//!    of segments while a solver must still compute the whole chain:
//!    every sampled segment is a full re-derivation, and a fabricated
//!    proof fails the first sampled segment with overwhelming
//!    probability.
//!
//! Both sides report the bytes of data they touched, which is the work
//! currency experiment E25 budgets attacker profit against.

use crate::sha256::Sha256;

/// Tuning for puzzle difficulty and verification sampling.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PuzzleParams {
    /// Bytes of data hashed per round.
    pub block_bytes: usize,
    /// Full passes over the data the walk must make (difficulty ≥ 1).
    pub passes: u32,
    /// Rounds between proof checkpoints.
    pub checkpoint_rounds: u32,
    /// Checkpoint segments the verifier replays (the final segment is
    /// always among them).
    pub verify_segments: u32,
}

impl Default for PuzzleParams {
    fn default() -> PuzzleParams {
        PuzzleParams {
            block_bytes: 4096,
            passes: 1,
            checkpoint_rounds: 8,
            verify_segments: 3,
        }
    }
}

impl PuzzleParams {
    /// Rounds the walk runs for `len` bytes of data: at least one block
    /// visit per pass per block, never zero.
    pub fn rounds_for(&self, len: usize) -> u32 {
        let blocks = len.div_ceil(self.block_bytes.max(1)).max(1);
        (blocks as u32).saturating_mul(self.passes.max(1))
    }
}

/// A 32-byte challenge binding a puzzle instance to one usage record.
/// Callers derive it from the provider's epoch seed and the record's
/// `(client, peer, nonce)` identity (see `hpop-nocdn`'s puzzle module).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PuzzleChallenge(pub [u8; 32]);

/// A solved puzzle: the final walk state plus periodic checkpoints for
/// sampled verification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PuzzleProof {
    /// The final walk state (binds the whole chain).
    pub tag: [u8; 32],
    /// Walk state after every `checkpoint_rounds` rounds (the final
    /// state is `tag`, not repeated here).
    pub checkpoints: Vec<[u8; 32]>,
}

/// Outcome of [`solve`] or [`verify`]: the verdict plus the bytes of
/// data the walk touched (the work currency of E25).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PuzzleWork {
    /// Bytes of data hashed.
    pub data_bytes: u64,
    /// Rounds executed.
    pub rounds: u64,
}

fn block_of(data: &[u8], idx: usize, block: usize) -> &[u8] {
    let from = idx * block;
    let to = (from + block).min(data.len());
    &data[from..to]
}

/// One walk step: absorb the round counter, the round-indexed block
/// (coverage), and the state-selected block (sequentiality). Returns
/// the touched byte count.
fn step(state: &mut [u8; 32], round: u32, data: &[u8], block: usize) -> u64 {
    let nblocks = data.len().div_ceil(block).max(1);
    let cover = if data.is_empty() {
        &[][..]
    } else {
        block_of(data, round as usize % nblocks, block)
    };
    let idx =
        (u64::from_le_bytes(state[..8].try_into().expect("8 bytes")) % nblocks as u64) as usize;
    let jump = if data.is_empty() {
        &[][..]
    } else {
        block_of(data, idx, block)
    };
    let mut h = Sha256::new();
    h.update(&state[..]);
    h.update(&round.to_le_bytes());
    h.update(cover);
    h.update(jump);
    *state = h.finalize().0;
    (cover.len() + jump.len()) as u64
}

fn initial_state(challenge: &PuzzleChallenge) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"hpop-cap-v1");
    h.update(&challenge.0);
    h.finalize().0
}

/// Solves the puzzle over `data` for `challenge`. Deterministic; the
/// returned work is what an honest solver necessarily spends.
pub fn solve(
    challenge: &PuzzleChallenge,
    data: &[u8],
    params: &PuzzleParams,
) -> (PuzzleProof, PuzzleWork) {
    let rounds = params.rounds_for(data.len());
    let mut state = initial_state(challenge);
    let mut checkpoints = Vec::new();
    let mut touched = 0u64;
    for r in 0..rounds {
        touched += step(&mut state, r, data, params.block_bytes.max(1));
        let done = r + 1;
        if done % params.checkpoint_rounds.max(1) == 0 && done < rounds {
            checkpoints.push(state);
        }
    }
    (
        PuzzleProof {
            tag: state,
            checkpoints,
        },
        PuzzleWork {
            data_bytes: touched,
            rounds: rounds as u64,
        },
    )
}

/// The checkpoint segments a proof for `len` bytes must have: segment
/// `i` spans rounds `[i*cp, min((i+1)*cp, rounds))`.
fn segment_count(rounds: u32, cp: u32) -> u32 {
    rounds.div_ceil(cp.max(1)).max(1)
}

/// Verifies a proof by replaying sampled checkpoint segments against
/// the authentic `data`. Returns the verdict and the verifier's work.
///
/// The sample is drawn deterministically from the proof tag and the
/// challenge, so the prover cannot know in advance which segments will
/// be checked (the tag commits to the whole chain), and two verifiers
/// of the same record agree. The final segment is always replayed: it
/// is the one that pins `tag`.
pub fn verify(
    challenge: &PuzzleChallenge,
    data: &[u8],
    proof: &PuzzleProof,
    params: &PuzzleParams,
) -> (bool, PuzzleWork) {
    let cp = params.checkpoint_rounds.max(1);
    let rounds = params.rounds_for(data.len());
    let segments = segment_count(rounds, cp);
    let mut work = PuzzleWork {
        data_bytes: 0,
        rounds: 0,
    };
    if proof.checkpoints.len() != segments as usize - 1 {
        return (false, work);
    }
    // Sample selection: final segment plus verify_segments-1 others
    // drawn from H(tag || challenge).
    let mut chosen: Vec<u32> = vec![segments - 1];
    if segments > 1 && params.verify_segments > 1 {
        let mut h = Sha256::new();
        h.update(b"hpop-cap-sample");
        h.update(&proof.tag);
        h.update(&challenge.0);
        let mut pick_state = h.finalize().0;
        let wanted = (params.verify_segments - 1).min(segments - 1);
        let mut guard = 0u32;
        while (chosen.len() as u32) < wanted + 1 && guard < 8 * segments {
            let v = u64::from_le_bytes(pick_state[..8].try_into().expect("8 bytes"));
            let seg = (v % segments as u64) as u32;
            if !chosen.contains(&seg) {
                chosen.push(seg);
            }
            pick_state = Sha256::digest(&pick_state).0;
            guard += 1;
        }
    }
    for &seg in &chosen {
        // Replay rounds [seg*cp, end) from the recorded entry state.
        let from = seg * cp;
        let to = ((seg + 1) * cp).min(rounds);
        let mut state = if seg == 0 {
            initial_state(challenge)
        } else {
            proof.checkpoints[seg as usize - 1]
        };
        for r in from..to {
            work.data_bytes += step(&mut state, r, data, params.block_bytes.max(1));
            work.rounds += 1;
        }
        let expected = if seg == segments - 1 {
            &proof.tag
        } else {
            &proof.checkpoints[seg as usize]
        };
        if !crate::constant_time_eq(&state, expected) {
            return (false, work);
        }
    }
    (true, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chal(b: u8) -> PuzzleChallenge {
        PuzzleChallenge([b; 32])
    }

    #[test]
    fn honest_solve_verifies() {
        let data = vec![7u8; 40_000];
        let p = PuzzleParams::default();
        let (proof, work) = solve(&chal(1), &data, &p);
        assert_eq!(work.rounds, 10); // ceil(40000/4096) = 10 blocks
        assert!(work.data_bytes >= data.len() as u64 / 2, "walk covers data");
        let (ok, vwork) = verify(&chal(1), &data, &proof, &p);
        assert!(ok);
        assert!(vwork.rounds <= work.rounds);
    }

    #[test]
    fn verification_is_sampled_and_cheaper_on_long_walks() {
        let data = vec![3u8; 64 * 4096];
        let p = PuzzleParams {
            checkpoint_rounds: 4,
            verify_segments: 2,
            ..PuzzleParams::default()
        };
        let (proof, work) = solve(&chal(2), &data, &p);
        assert_eq!(work.rounds, 64);
        assert_eq!(proof.checkpoints.len(), 15);
        let (ok, vwork) = verify(&chal(2), &data, &proof, &p);
        assert!(ok);
        assert_eq!(vwork.rounds, 8, "2 segments x 4 rounds");
    }

    #[test]
    fn wrong_data_fails() {
        let data = vec![9u8; 20_000];
        let p = PuzzleParams::default();
        let (proof, _) = solve(&chal(3), &data, &p);
        let mut other = data.clone();
        other[12_345] ^= 1;
        assert!(!verify(&chal(3), &other, &proof, &p).0);
    }

    #[test]
    fn wrong_challenge_fails() {
        let data = vec![9u8; 20_000];
        let p = PuzzleParams::default();
        let (proof, _) = solve(&chal(4), &data, &p);
        assert!(!verify(&chal(5), &data, &proof, &p).0);
    }

    #[test]
    fn fabricated_proof_fails() {
        let data = vec![1u8; 9_000];
        let p = PuzzleParams::default();
        let fake = PuzzleProof {
            tag: [0xAB; 32],
            checkpoints: Vec::new(),
        };
        assert!(!verify(&chal(6), &data, &fake, &p).0);
    }

    #[test]
    fn checkpoint_count_mismatch_fails_cheaply() {
        let data = vec![1u8; 64 * 4096];
        let p = PuzzleParams {
            checkpoint_rounds: 4,
            ..PuzzleParams::default()
        };
        let (mut proof, _) = solve(&chal(7), &data, &p);
        proof.checkpoints.pop();
        let (ok, work) = verify(&chal(7), &data, &proof, &p);
        assert!(!ok);
        assert_eq!(work.rounds, 0, "rejected before any replay");
    }

    #[test]
    fn tampered_checkpoint_fails() {
        let data = vec![5u8; 64 * 4096];
        let p = PuzzleParams {
            checkpoint_rounds: 4,
            verify_segments: 16, // check everything
            ..PuzzleParams::default()
        };
        let (mut proof, _) = solve(&chal(8), &data, &p);
        proof.checkpoints[3][0] ^= 1;
        assert!(!verify(&chal(8), &data, &proof, &p).0);
    }

    #[test]
    fn empty_and_tiny_data_are_well_defined() {
        let p = PuzzleParams::default();
        for data in [vec![], vec![1u8], vec![2u8; 4096]] {
            let (proof, work) = solve(&chal(9), &data, &p);
            assert_eq!(work.rounds, 1);
            assert!(verify(&chal(9), &data, &proof, &p).0);
        }
    }

    #[test]
    fn difficulty_scales_with_passes() {
        let data = vec![1u8; 10 * 4096];
        let one = PuzzleParams::default();
        let three = PuzzleParams {
            passes: 3,
            ..PuzzleParams::default()
        };
        let (_, w1) = solve(&chal(10), &data, &one);
        let (_, w3) = solve(&chal(10), &data, &three);
        assert_eq!(w3.rounds, 3 * w1.rounds);
        assert!(w3.data_bytes > 2 * w1.data_bytes);
    }
}
