//! Property-based tests of the cryptographic primitives.

use crate::chacha20::ChaCha20;
use crate::hmac::{hmac_sha256, verify_hmac_sha256};
use crate::sha256::{Digest, Sha256};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot for any split of any input.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        splits in proptest::collection::vec(any::<prop::sample::Index>(), 0..4),
    ) {
        let want = Sha256::digest(&data);
        let mut points: Vec<usize> = splits.iter().map(|i| i.index(data.len() + 1)).collect();
        points.sort_unstable();
        let mut h = Sha256::new();
        let mut at = 0;
        for p in points {
            h.update(&data[at..p]);
            at = p;
        }
        h.update(&data[at..]);
        prop_assert_eq!(h.finalize(), want);
    }

    /// Hex rendering round-trips.
    #[test]
    fn digest_hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..100)) {
        let d = Sha256::digest(&data);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    /// ChaCha20 decryption inverts encryption for any key/nonce/input.
    #[test]
    fn chacha20_roundtrip(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::collection::vec(any::<u8>(), 12),
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let nonce: [u8; 12] = nonce.try_into().expect("12 bytes");
        let ct = ChaCha20::encrypt(&key, &nonce, &data);
        prop_assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), data);
    }

    /// HMAC verifies with the right key and rejects any single-bit key
    /// or message flip.
    #[test]
    fn hmac_rejects_bit_flips(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        msg in proptest::collection::vec(any::<u8>(), 1..200),
        flip_key in any::<bool>(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac_sha256(&key, &msg, &tag));
        let (mut k2, mut m2) = (key.clone(), msg.clone());
        if flip_key {
            let i = byte.index(k2.len());
            k2[i] ^= 1 << bit;
        } else {
            let i = byte.index(m2.len());
            m2[i] ^= 1 << bit;
        }
        prop_assert!(!verify_hmac_sha256(&k2, &m2, &tag));
    }
}
