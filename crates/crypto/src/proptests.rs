//! Property-based tests of the cryptographic primitives.

use crate::chacha20::ChaCha20;
use crate::hmac::{hmac_sha256, verify_hmac_sha256};
use crate::puzzle::{self, PuzzleChallenge, PuzzleParams, PuzzleProof};
use crate::sha256::{Digest, Sha256};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot for any split of any input.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        splits in proptest::collection::vec(any::<prop::sample::Index>(), 0..4),
    ) {
        let want = Sha256::digest(&data);
        let mut points: Vec<usize> = splits.iter().map(|i| i.index(data.len() + 1)).collect();
        points.sort_unstable();
        let mut h = Sha256::new();
        let mut at = 0;
        for p in points {
            h.update(&data[at..p]);
            at = p;
        }
        h.update(&data[at..]);
        prop_assert_eq!(h.finalize(), want);
    }

    /// Hex rendering round-trips.
    #[test]
    fn digest_hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..100)) {
        let d = Sha256::digest(&data);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    /// ChaCha20 decryption inverts encryption for any key/nonce/input.
    #[test]
    fn chacha20_roundtrip(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::collection::vec(any::<u8>(), 12),
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let nonce: [u8; 12] = nonce.try_into().expect("12 bytes");
        let ct = ChaCha20::encrypt(&key, &nonce, &data);
        prop_assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), data);
    }

    /// HMAC verifies with the right key and rejects any single-bit key
    /// or message flip.
    #[test]
    fn hmac_rejects_bit_flips(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        msg in proptest::collection::vec(any::<u8>(), 1..200),
        flip_key in any::<bool>(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac_sha256(&key, &msg, &tag));
        let (mut k2, mut m2) = (key.clone(), msg.clone());
        if flip_key {
            let i = byte.index(k2.len());
            k2[i] ^= 1 << bit;
        } else {
            let i = byte.index(m2.len());
            m2[i] ^= 1 << bit;
        }
        prop_assert!(!verify_hmac_sha256(&k2, &m2, &tag));
    }

    /// Accountability puzzle **completeness**: an honest solve over the
    /// authentic bytes verifies for every data size, challenge, and
    /// parameterization.
    #[test]
    fn puzzle_honest_solves_always_verify(
        challenge in proptest::array::uniform32(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
        block_shift in 6u32..13,
        checkpoint_rounds in 1u32..10,
        verify_segments in 1u32..6,
    ) {
        let params = PuzzleParams {
            block_bytes: 1usize << block_shift,
            passes: 1,
            checkpoint_rounds,
            verify_segments,
        };
        let chal = PuzzleChallenge(challenge);
        let (proof, work) = puzzle::solve(&chal, &data, &params);
        prop_assert_eq!(work.rounds, params.rounds_for(data.len()) as u64);
        let (ok, vwork) = puzzle::verify(&chal, &data, &proof, &params);
        prop_assert!(ok, "honest solve rejected");
        prop_assert!(vwork.rounds <= work.rounds);
    }

    /// Accountability puzzle **soundness**: a proof fabricated without
    /// the data — a random tag, a proof for different bytes, or a proof
    /// for a different record binding — never verifies.
    #[test]
    fn puzzle_fabricated_proofs_never_verify(
        challenge in proptest::array::uniform32(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 1..8_000),
        fake_tag in proptest::array::uniform32(any::<u8>()),
        flip in any::<prop::sample::Index>(),
    ) {
        // Full (unsampled) verification: every segment replayed, so the
        // per-pass coverage guarantee applies to the whole claim.
        let params = PuzzleParams {
            block_bytes: 512,
            passes: 1,
            checkpoint_rounds: 3,
            verify_segments: 32,
        };
        let chal = PuzzleChallenge(challenge);
        let (real, _) = puzzle::solve(&chal, &data, &params);

        // A data-less forgery: right checkpoint shape, made-up states.
        let segments = (params.rounds_for(data.len()).div_ceil(3)).max(1) as usize;
        let forged = PuzzleProof {
            tag: fake_tag,
            checkpoints: vec![fake_tag; segments - 1],
        };
        // (The astronomically unlikely collision fake_tag == real.tag
        // would still fail: the final segment replay pins the chain.)
        prop_assert!(!puzzle::verify(&chal, &data, &forged, &params).0);

        // A real proof over *different* bytes (peer claims data it
        // never held).
        let mut other = data.clone();
        let at = flip.index(other.len());
        other[at] ^= 0x01;
        let (stolen, _) = puzzle::solve(&chal, &other, &params);
        prop_assert!(!puzzle::verify(&chal, &data, &stolen, &params).0);

        // A real proof bound to a different record identity.
        let mut chal2 = challenge;
        chal2[0] ^= 0x01;
        prop_assert!(!puzzle::verify(&PuzzleChallenge(chal2), &data, &real, &params).0);
    }
}
