//! # hpop-crypto — cryptographic primitives for HPoP services
//!
//! NoCDN (§IV-B) needs content hashes and HMAC-signed usage records; the
//! data attic (§IV-A) needs encryption-at-rest for peer backup. The
//! sanctioned offline dependency set contains no crypto crate, so the
//! primitives are implemented here from their specifications:
//!
//! - [`sha256`] — SHA-256 (FIPS 180-4), with incremental hashing.
//! - [`hmac`] — HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//! - [`chacha20`] — the ChaCha20 stream cipher (RFC 8439).
//! - [`nonce`] — a replay-protection registry for signed usage records.
//! - [`puzzle`] — the CAPnet-style cache accountability puzzle: a
//!   data-dependent proof of serving that bounds what fabricated usage
//!   records can earn per unit of attacker work.
//! - [`constant_time_eq`] — timing-safe comparison for MAC verification.
//!
//! Every primitive is validated against official test vectors in its
//! module tests. These implementations favour clarity over speed; they are
//! *not* hardened against side channels beyond constant-time comparison
//! and are intended for the simulation/research context of this crate.
//!
//! ```
//! use hpop_crypto::{sha256, hmac};
//!
//! let digest = sha256::Sha256::digest(b"hello world");
//! assert_eq!(digest.to_hex().len(), 64);
//!
//! let tag = hmac::hmac_sha256(b"secret key", b"usage record");
//! assert!(hmac::verify_hmac_sha256(b"secret key", b"usage record", &tag));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod proptests;

pub mod chacha20;
pub mod hmac;
pub mod nonce;
pub mod puzzle;
pub mod sha256;

pub use chacha20::ChaCha20;
pub use hmac::{hmac_sha256, verify_hmac_sha256, HmacTag};
pub use nonce::{Nonce, NonceRegistry};
pub use puzzle::{PuzzleChallenge, PuzzleParams, PuzzleProof, PuzzleWork};
pub use sha256::{Digest, Sha256};

/// Compares two byte slices in time independent of their contents
/// (assuming equal lengths); unequal lengths return `false` immediately,
/// which leaks only the length — public for MACs and digests.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_time_eq_basic() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(constant_time_eq(b"", b""));
    }
}
