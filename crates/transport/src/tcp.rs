//! TCP configuration and analytic performance math.
//!
//! §IV-D: "over a 1 Gbps network path with a 50 msec RTT a TCP connection
//! will require 10 RTTs and over 14 MB of data before utilizing the
//! available capacity." [`slow_start_rampup`] reproduces that arithmetic
//! exactly; [`transfer_duration`] extends it to whole transfers, and
//! [`mathis_throughput`] bounds steady-state rate under loss.

use hpop_netsim::time::SimDuration;
use hpop_netsim::units::Bandwidth;

/// TCP endpoint parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpConfig {
    /// Maximum segment size in bytes (1460 for Ethernet-framed IPv4).
    pub mss: u32,
    /// Initial congestion window in segments (RFC 6928 allows 10).
    pub init_cwnd_segments: u32,
    /// Initial slow-start threshold in bytes; `None` = unlimited (slow
    /// start runs until loss or link saturation).
    pub initial_ssthresh: Option<u64>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            init_cwnd_segments: 10,
            initial_ssthresh: None,
        }
    }
}

impl TcpConfig {
    /// The paper's era: a conservative initial window of 4 segments
    /// (pre-RFC 6928 kernels), making ramp-up even slower.
    pub fn conservative() -> Self {
        TcpConfig {
            mss: 1460,
            init_cwnd_segments: 4,
            initial_ssthresh: None,
        }
    }

    /// Initial congestion window in bytes.
    pub fn init_cwnd_bytes(&self) -> u64 {
        self.mss as u64 * self.init_cwnd_segments as u64
    }
}

/// The result of a slow-start ramp-up computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RampUp {
    /// Round trips of exponential growth before the window covers the
    /// bandwidth-delay product.
    pub rtts: u32,
    /// Bytes transferred *before* the connection reaches full rate.
    pub bytes_before_full: u64,
    /// Wall-clock time spent ramping (`rtts × rtt`).
    pub time_to_full: SimDuration,
    /// The bandwidth-delay product the window had to reach.
    pub bdp_bytes: u64,
}

/// Computes how long (RTTs, bytes) a slow-starting connection needs
/// before it can utilize a path of capacity `target` and round-trip time
/// `rtt` (§IV-D's headline arithmetic).
///
/// ```
/// use hpop_transport::tcp::{slow_start_rampup, TcpConfig};
/// use hpop_netsim::prelude::*;
///
/// // The paper's example: 1 Gbps, 50 ms RTT.
/// let r = slow_start_rampup(&TcpConfig::default(), SimDuration::from_millis(50), Bandwidth::gbps(1.0));
/// assert_eq!(r.rtts, 9);                       // ~10 RTTs incl. the first window
/// assert!(r.bytes_before_full > 7_000_000);    // megabytes spent ramping
/// ```
pub fn slow_start_rampup(cfg: &TcpConfig, rtt: SimDuration, target: Bandwidth) -> RampUp {
    let bdp = target.bdp_bytes(rtt).ceil() as u64;
    let mut cwnd = cfg.init_cwnd_bytes();
    let mut sent = 0u64;
    let mut rtts = 0u32;
    while cwnd < bdp {
        sent += cwnd;
        cwnd = cwnd.saturating_mul(2);
        rtts += 1;
        if rtts > 64 {
            break; // window doubled past any real BDP; safety valve
        }
    }
    RampUp {
        rtts,
        bytes_before_full: sent,
        time_to_full: rtt * rtts as u64,
        bdp_bytes: bdp,
    }
}

/// Analytic duration of a `bytes`-long transfer over a clean path
/// (`bottleneck` capacity, `rtt` round-trip), including slow-start:
/// each RTT carries one congestion window until the window reaches the
/// BDP, after which the transfer proceeds at line rate.
///
/// Does not include connection establishment; add one `rtt` for the
/// SYN exchange if modeling a cold connection.
pub fn transfer_duration(
    cfg: &TcpConfig,
    bytes: u64,
    rtt: SimDuration,
    bottleneck: Bandwidth,
) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    let bdp = bottleneck.bdp_bytes(rtt).max(1.0) as u64;
    let mut cwnd = cfg.init_cwnd_bytes().min(bdp.max(1));
    let mut remaining = bytes;
    let mut elapsed = SimDuration::ZERO;
    // Exponential phase: one window per RTT.
    while cwnd < bdp {
        if remaining <= cwnd {
            // Final partial window: serialization of what's left plus the
            // propagation to the receiver (half RTT).
            return elapsed + bottleneck.time_to_send(remaining).min(rtt) + rtt / 2;
        }
        remaining -= cwnd;
        elapsed += rtt;
        let next = match cfg.initial_ssthresh {
            Some(t) if cwnd >= t => cwnd + cfg.mss as u64, // congestion avoidance
            _ => cwnd * 2,
        };
        cwnd = next.min(bdp);
    }
    // Line-rate phase.
    elapsed + bottleneck.time_to_send(remaining) + rtt / 2
}

/// The Mathis et al. steady-state throughput bound for a loss rate `p`:
/// `rate = (MSS / RTT) * sqrt(3/2) / sqrt(p)`. Returns `None` for `p = 0`
/// (unbounded; the path capacity governs instead).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1)` or `rtt` is zero.
pub fn mathis_throughput(mss: u32, rtt: SimDuration, p: f64) -> Option<Bandwidth> {
    assert!(
        (0.0..1.0).contains(&p),
        "loss probability out of range: {p}"
    );
    assert!(!rtt.is_zero(), "rtt must be positive");
    if p == 0.0 {
        return None;
    }
    let rate_bytes = mss as f64 / rtt.as_secs_f64() * (1.5f64).sqrt() / p.sqrt();
    Some(Bandwidth::from_bps(rate_bytes * 8.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS: f64 = 1e9;

    #[test]
    fn paper_rampup_example() {
        // 1 Gbps * 50 ms = 6.25 MB BDP. From 14.6 KB, doubling: 9 RTTs.
        let r = slow_start_rampup(
            &TcpConfig::default(),
            SimDuration::from_millis(50),
            Bandwidth::gbps(1.0),
        );
        assert_eq!(r.bdp_bytes, 6_250_000);
        assert_eq!(r.rtts, 9);
        // Bytes sent during ramp: 14600 * (2^9 - 1) = 7,458,600.
        assert_eq!(r.bytes_before_full, 14_600 * 511);
        assert_eq!(r.time_to_full, SimDuration::from_millis(450));
    }

    #[test]
    fn paper_rampup_conservative_iw() {
        // With the era's IW4 the paper's "over 14 MB" figure emerges:
        // total data touched before full rate = sent + BDP ≈ 12-14 MB.
        let r = slow_start_rampup(
            &TcpConfig::conservative(),
            SimDuration::from_millis(50),
            Bandwidth::gbps(1.0),
        );
        assert_eq!(r.rtts, 11);
        let total = r.bytes_before_full + r.bdp_bytes;
        assert!(
            total > 14_000_000,
            "ramp consumed {total} bytes; paper says >14MB"
        );
    }

    #[test]
    fn zero_rtt_path_needs_no_ramp() {
        let r = slow_start_rampup(
            &TcpConfig::default(),
            SimDuration::ZERO,
            Bandwidth::gbps(1.0),
        );
        assert_eq!(r.rtts, 0);
        assert_eq!(r.bytes_before_full, 0);
    }

    #[test]
    fn small_transfer_never_reaches_line_rate() {
        let cfg = TcpConfig::default();
        let rtt = SimDuration::from_millis(50);
        let bw = Bandwidth::gbps(1.0);
        // A 100 KB transfer: ~3 windows (14.6 + 29.2 + 58.4 KB > 100 KB).
        let d = transfer_duration(&cfg, 100_000, rtt, bw);
        // Mostly RTT-bound: between 2 and 3.5 RTTs.
        let rtts = d.as_secs_f64() / rtt.as_secs_f64();
        assert!(rtts > 2.0 && rtts < 3.5, "took {rtts} RTTs");
        // The achieved rate is a tiny fraction of 1 Gbps — the paper's
        // point about why CCZ users never see their capacity.
        let rate = 100_000.0 * 8.0 / d.as_secs_f64();
        assert!(rate < 0.01 * GBPS, "rate {rate}");
    }

    #[test]
    fn huge_transfer_approaches_line_rate() {
        let cfg = TcpConfig::default();
        let rtt = SimDuration::from_millis(50);
        let bw = Bandwidth::gbps(1.0);
        let bytes = 10_000_000_000u64; // 10 GB
        let d = transfer_duration(&cfg, bytes, rtt, bw);
        let rate = bytes as f64 * 8.0 / d.as_secs_f64();
        assert!(rate > 0.98 * GBPS, "rate {rate}");
    }

    #[test]
    fn duration_monotonic_in_bytes() {
        let cfg = TcpConfig::default();
        let rtt = SimDuration::from_millis(20);
        let bw = Bandwidth::mbps(100.0);
        let mut last = SimDuration::ZERO;
        for bytes in [1u64, 10_000, 100_000, 1_000_000, 10_000_000] {
            let d = transfer_duration(&cfg, bytes, rtt, bw);
            assert!(d >= last, "bytes={bytes}");
            last = d;
        }
    }

    #[test]
    fn zero_bytes_is_instant() {
        assert_eq!(
            transfer_duration(
                &TcpConfig::default(),
                0,
                SimDuration::from_millis(50),
                Bandwidth::gbps(1.0)
            ),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ssthresh_switches_to_linear_growth() {
        let mut cfg = TcpConfig::default();
        let rtt = SimDuration::from_millis(50);
        let bw = Bandwidth::gbps(1.0);
        let fast = transfer_duration(&cfg, 20_000_000, rtt, bw);
        cfg.initial_ssthresh = Some(100_000);
        let slow = transfer_duration(&cfg, 20_000_000, rtt, bw);
        assert!(slow > fast, "CA-limited {slow} vs slow-start {fast}");
    }

    #[test]
    fn mathis_shape() {
        let rtt = SimDuration::from_millis(50);
        let r1 = mathis_throughput(1460, rtt, 0.01).unwrap();
        let r2 = mathis_throughput(1460, rtt, 0.04).unwrap();
        // Quadrupling loss halves throughput.
        assert!((r1.bits_per_sec() / r2.bits_per_sec() - 2.0).abs() < 1e-9);
        assert!(mathis_throughput(1460, rtt, 0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "loss probability out of range")]
    fn mathis_validates_loss() {
        let _ = mathis_throughput(1460, SimDuration::from_millis(1), 1.0);
    }
}
