//! Property-based tests of the transport models' conservation laws.

use crate::mptcp::{MptcpStats, MptcpTransfer, Scheduler, SubflowSpec};
use crate::tcp::{transfer_duration, TcpConfig};
use hpop_netsim::netsim::NetSim;
use hpop_netsim::time::SimDuration;
use hpop_netsim::topology::TopologyBuilder;
use hpop_netsim::units::Bandwidth;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn run_mptcp(
    caps_mbps: &[u32],
    bytes: u64,
    overheads: &[u32],
    scheduler: Scheduler,
    seed: u64,
) -> MptcpStats {
    let mut b = TopologyBuilder::new();
    let client = b.add_node("client");
    let server = b.add_node("server");
    let mut wps = Vec::new();
    for (i, &c) in caps_mbps.iter().enumerate() {
        let w = b.add_node(format!("wp{i}"));
        b.add_link(
            server,
            w,
            Bandwidth::mbps(c as f64),
            SimDuration::from_millis(10),
        );
        b.add_link(
            w,
            client,
            Bandwidth::mbps(c as f64),
            SimDuration::from_millis(10),
        );
        wps.push(w);
    }
    let topo = b.build();
    let mut sim = NetSim::with_topology(topo);
    let subflows: Vec<SubflowSpec> = wps
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let path = sim
                .state
                .net
                .routing()
                .route_via(server, w, client)
                .expect("path");
            let mut s = SubflowSpec::new(format!("sf{i}"), path);
            s.per_packet_overhead = overheads[i % overheads.len()];
            s
        })
        .collect();
    let out: Rc<RefCell<Option<MptcpStats>>> = Rc::new(RefCell::new(None));
    let o2 = out.clone();
    MptcpTransfer::launch(
        &mut sim,
        subflows,
        bytes,
        TcpConfig::default(),
        scheduler,
        seed,
        move |_, s| *o2.borrow_mut() = Some(s),
    );
    sim.run();
    let s = out.borrow_mut().take().expect("completes");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MPTCP conservation: subflow goodput sums to the request exactly;
    /// wire bytes are goodput plus the configured per-packet tax; the
    /// transfer always terminates.
    #[test]
    fn mptcp_conserves_bytes(
        caps in proptest::collection::vec(5u32..500, 1..4),
        bytes in 100_000u64..20_000_000,
        overhead in 0u32..60,
        rr in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let sched = if rr { Scheduler::RoundRobin } else { Scheduler::MinRtt };
        let s = run_mptcp(&caps, bytes, &[overhead], sched, seed);
        prop_assert_eq!(s.bytes, bytes);
        let goodput: u64 = s.subflows.iter().map(|f| f.bytes).sum();
        prop_assert_eq!(goodput, bytes);
        for f in &s.subflows {
            prop_assert!(f.wire_bytes >= f.bytes);
            // The tax is bounded by ceil-per-window granularity.
            let max_tax = (f.bytes as f64 * (overhead as f64 / 1460.0)).ceil() as u64
                + f.windows as u64;
            prop_assert!(
                f.wire_bytes - f.bytes <= max_tax,
                "tax {} > bound {max_tax}",
                f.wire_bytes - f.bytes
            );
        }
        // Shares sum to 1 for non-empty transfers.
        let share_sum: f64 = (0..s.subflows.len()).map(|i| s.share(i)).sum();
        prop_assert!((share_sum - 1.0).abs() < 1e-9);
    }

    /// The analytic TCP duration is monotone in bytes and bounded below
    /// by both the line-rate serialization time and one half RTT.
    #[test]
    fn analytic_duration_bounds(
        bytes_a in 1u64..100_000_000,
        bytes_b in 1u64..100_000_000,
        rtt_ms in 1u64..400,
        mbps in 1u32..10_000,
    ) {
        let cfg = TcpConfig::default();
        let rtt = SimDuration::from_millis(rtt_ms);
        let bw = Bandwidth::mbps(mbps as f64);
        let (small, big) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        let d_small = transfer_duration(&cfg, small, rtt, bw);
        let d_big = transfer_duration(&cfg, big, rtt, bw);
        prop_assert!(d_small <= d_big);
        prop_assert!(d_big >= bw.time_to_send(big));
        prop_assert!(d_small >= rtt / 2);
    }
}
