//! Multipath TCP: one logical connection, many subflows.
//!
//! §IV-C's trick: the client opens subflows *through waypoints*; the
//! server "will not understand that the two subflows are not coming from
//! two interfaces on the same device". Here a connection owns N subflows,
//! each with its own path, congestion state and smoothed RTT. The
//! scheduler (the server's, for downloads) hands each idle subflow its
//! next window; the client can steer it by inflating a subflow's ACK
//! delay (raising the RTT the scheduler sees) or by closing subflows
//! outright — the paper's two steering mechanisms.
//!
//! Tunnel encapsulation overhead (VPN: 36 bytes/packet; NAT: 0) is
//! modeled as a wire-byte inflation factor on the tunneled subflow.

use crate::rtt::SrttEstimator;
use crate::tcp::TcpConfig;
use hpop_netsim::netsim::NetSim;
use hpop_netsim::routing::Path;
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_netsim::units::Bandwidth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Description of one subflow of an MPTCP connection.
#[derive(Clone, Debug)]
pub struct SubflowSpec {
    /// Human-readable label for reporting (`"direct"`, `"via-attic-7"`).
    pub label: String,
    /// The network path this subflow takes.
    pub path: Path,
    /// Extra delay the client adds to this subflow's ACKs (§IV-C
    /// steering); inflates the RTT the scheduler observes *and* slows the
    /// subflow's self-clocking.
    pub ack_delay: SimDuration,
    /// Per-packet encapsulation overhead in bytes (VPN tunneling adds 36;
    /// NAT adds 0).
    pub per_packet_overhead: u32,
}

impl SubflowSpec {
    /// A plain subflow over `path` with no steering or tunnel overhead.
    pub fn new(label: impl Into<String>, path: Path) -> Self {
        SubflowSpec {
            label: label.into(),
            path,
            ack_delay: SimDuration::ZERO,
            per_packet_overhead: 0,
        }
    }
}

/// Which subflow the (server-side) scheduler feeds next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Default Linux MPTCP behaviour: lowest smoothed RTT first — the
    /// scheduler §IV-C's ACK-delay trick manipulates.
    MinRtt,
    /// Round-robin across open subflows (ablation baseline).
    RoundRobin,
}

/// Per-subflow completion statistics.
#[derive(Clone, Debug)]
pub struct SubflowStats {
    /// The spec's label.
    pub label: String,
    /// Goodput bytes this subflow delivered.
    pub bytes: u64,
    /// Windows dispatched on this subflow.
    pub windows: u32,
    /// Loss events on this subflow.
    pub loss_events: u32,
    /// Final smoothed RTT the scheduler saw (`None` if never used).
    pub srtt: Option<SimDuration>,
    /// Wire bytes including tunnel encapsulation overhead.
    pub wire_bytes: u64,
}

/// Completion statistics of an MPTCP transfer.
#[derive(Clone, Debug)]
pub struct MptcpStats {
    /// Total goodput bytes (the requested size).
    pub bytes: u64,
    /// Launch instant.
    pub started_at: SimTime,
    /// Completion instant.
    pub completed_at: SimTime,
    /// Per-subflow breakdown, in spec order.
    pub subflows: Vec<SubflowStats>,
}

impl MptcpStats {
    /// Transfer duration.
    pub fn duration(&self) -> SimDuration {
        self.completed_at.since(self.started_at)
    }

    /// Mean aggregate goodput.
    pub fn mean_rate(&self) -> Bandwidth {
        let dt = self.duration().as_secs_f64();
        if dt <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::from_bps(self.bytes as f64 * 8.0 / dt)
        }
    }

    /// Fraction of goodput bytes carried by subflow `i`.
    pub fn share(&self, i: usize) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.subflows[i].bytes as f64 / self.bytes as f64
        }
    }
}

struct Subflow {
    spec: SubflowSpec,
    rtt_base: SimDuration,
    loss: f64,
    cwnd: u64,
    ssthresh: u64,
    srtt: SrttEstimator,
    busy: bool,
    closed: bool,
    delivered: u64,
    wire_bytes: u64,
    windows: u32,
    loss_events: u32,
}

impl Subflow {
    fn rtt_eff(&self) -> SimDuration {
        self.rtt_base + self.spec.ack_delay
    }

    fn sched_rtt(&self) -> SimDuration {
        self.srtt.srtt().unwrap_or_else(|| self.rtt_eff())
    }

    fn overhead_factor(&self, mss: u32) -> f64 {
        1.0 + self.spec.per_packet_overhead as f64 / mss as f64
    }
}

type DoneCallback = Box<dyn FnOnce(&mut NetSim, MptcpStats)>;

struct ConnState {
    cfg: TcpConfig,
    scheduler: Scheduler,
    subflows: Vec<Subflow>,
    unassigned: u64,
    total: u64,
    started_at: SimTime,
    rr_next: usize,
    rng: StdRng,
    on_done: Option<DoneCallback>,
}

/// Control handle over a live MPTCP transfer (the client's steering
/// interface: withdraw detours, adjust ACK delays).
#[derive(Clone)]
pub struct MptcpHandle {
    st: Rc<RefCell<ConnState>>,
}

impl std::fmt::Debug for MptcpHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.st.borrow();
        f.debug_struct("MptcpHandle")
            .field("subflows", &st.subflows.len())
            .field("unassigned", &st.unassigned)
            .finish()
    }
}

impl MptcpHandle {
    /// Closes subflow `idx`: it gets no further windows (its in-flight
    /// window still completes). The §IV-C "withdraw undesirable detours"
    /// operation.
    ///
    /// # Panics
    ///
    /// Panics if this would close the last open subflow while data
    /// remains (the connection could never finish), or if `idx` is out
    /// of range.
    pub fn close_subflow(&self, sim: &mut NetSim, idx: usize) {
        {
            let mut st = self.st.borrow_mut();
            let open_others = st
                .subflows
                .iter()
                .enumerate()
                .filter(|(i, s)| *i != idx && !s.closed)
                .count();
            assert!(
                open_others > 0 || st.unassigned == 0,
                "cannot close the last open subflow with data remaining"
            );
            st.subflows[idx].closed = true;
        }
        pump(sim, self.st.clone());
    }

    /// Adjusts the client-imposed ACK delay of subflow `idx` (steering).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_ack_delay(&self, idx: usize, delay: SimDuration) {
        self.st.borrow_mut().subflows[idx].spec.ack_delay = delay;
    }

    /// Adds a subflow to the live connection (§IV-C: hosts "add, remove,
    /// or change detours dynamically in the course of the
    /// communication"). Returns the new subflow's index. No-op beyond
    /// bookkeeping if the transfer already finished.
    pub fn add_subflow(&self, sim: &mut NetSim, spec: SubflowSpec) -> usize {
        let idx = {
            let mut st = self.st.borrow_mut();
            let topo = sim.state.net.topology();
            let cfg = st.cfg;
            st.subflows.push(Subflow {
                rtt_base: spec.path.rtt(topo).max(SimDuration::from_micros(100)),
                loss: spec.path.loss(topo),
                cwnd: cfg.init_cwnd_bytes().max(1),
                ssthresh: cfg.initial_ssthresh.unwrap_or(u64::MAX),
                srtt: SrttEstimator::new(),
                busy: false,
                closed: false,
                delivered: 0,
                wire_bytes: 0,
                windows: 0,
                loss_events: 0,
                spec,
            });
            st.subflows.len() - 1
        };
        pump(sim, self.st.clone());
        idx
    }

    /// Bytes not yet handed to any subflow.
    pub fn unassigned(&self) -> u64 {
        self.st.borrow().unassigned
    }

    /// Number of subflows (open or closed).
    pub fn subflow_count(&self) -> usize {
        self.st.borrow().subflows.len()
    }

    /// Number of subflows still open.
    pub fn open_subflows(&self) -> usize {
        self.st
            .borrow()
            .subflows
            .iter()
            .filter(|s| !s.closed)
            .count()
    }

    /// Whether subflow `idx` is open.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn is_open(&self, idx: usize) -> bool {
        !self.st.borrow().subflows[idx].closed
    }

    /// Goodput bytes delivered so far by subflow `idx`.
    pub fn delivered(&self, idx: usize) -> u64 {
        self.st.borrow().subflows[idx].delivered
    }
}

/// A multipath TCP bulk transfer.
///
/// ```
/// use hpop_netsim::prelude::*;
/// use hpop_transport::mptcp::{MptcpTransfer, Scheduler, SubflowSpec};
/// use hpop_transport::tcp::TcpConfig;
///
/// let mut b = TopologyBuilder::new();
/// let server = b.add_node("server");
/// let client = b.add_node("client");
/// b.add_link(server, client, Bandwidth::mbps(100.0), SimDuration::from_millis(10));
/// let mut sim = NetSim::with_topology(b.build());
/// let path = sim.state.net.routing().route(server, client).expect("connected");
/// MptcpTransfer::launch(
///     &mut sim,
///     vec![SubflowSpec::new("direct", path)],
///     5 * MB,
///     TcpConfig::default(),
///     Scheduler::MinRtt,
///     0,
///     |_, stats| assert_eq!(stats.bytes, 5 * MB),
/// );
/// sim.run();
/// ```
#[derive(Debug)]
pub struct MptcpTransfer;

impl MptcpTransfer {
    /// Launches a transfer of `bytes` across `subflows`, returning a
    /// steering handle. `on_done` fires when every byte has been
    /// delivered (across all subflows).
    ///
    /// # Panics
    ///
    /// Panics if `subflows` is empty.
    pub fn launch(
        sim: &mut NetSim,
        subflows: Vec<SubflowSpec>,
        bytes: u64,
        cfg: TcpConfig,
        scheduler: Scheduler,
        seed: u64,
        on_done: impl FnOnce(&mut NetSim, MptcpStats) + 'static,
    ) -> MptcpHandle {
        assert!(!subflows.is_empty(), "MPTCP needs at least one subflow");
        let topo = sim.state.net.topology().clone();
        let subflows: Vec<Subflow> = subflows
            .into_iter()
            .map(|spec| Subflow {
                rtt_base: spec.path.rtt(&topo).max(SimDuration::from_micros(100)),
                loss: spec.path.loss(&topo),
                cwnd: cfg.init_cwnd_bytes().max(1),
                ssthresh: cfg.initial_ssthresh.unwrap_or(u64::MAX),
                srtt: SrttEstimator::new(),
                busy: false,
                closed: false,
                delivered: 0,
                wire_bytes: 0,
                windows: 0,
                loss_events: 0,
                spec,
            })
            .collect();
        let st = Rc::new(RefCell::new(ConnState {
            cfg,
            scheduler,
            subflows,
            unassigned: bytes,
            total: bytes,
            started_at: sim.now(),
            rr_next: 0,
            rng: StdRng::seed_from_u64(seed),
            on_done: Some(Box::new(on_done)),
        }));
        pump(sim, st.clone());
        MptcpHandle { st }
    }
}

/// Picks the next idle, open subflow per the scheduler; `None` if all
/// busy/closed.
fn pick(st: &mut ConnState) -> Option<usize> {
    let candidates: Vec<usize> = st
        .subflows
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.busy && !s.closed)
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    match st.scheduler {
        Scheduler::MinRtt => candidates
            .into_iter()
            .min_by_key(|&i| st.subflows[i].sched_rtt()),
        Scheduler::RoundRobin => {
            let n = st.subflows.len();
            for off in 0..n {
                let i = (st.rr_next + off) % n;
                if candidates.contains(&i) {
                    st.rr_next = (i + 1) % n;
                    return Some(i);
                }
            }
            None
        }
    }
}

/// Dispatches windows to idle subflows until data or subflows run out;
/// finishes the connection when everything is delivered.
fn pump(sim: &mut NetSim, st: Rc<RefCell<ConnState>>) {
    loop {
        let dispatch = {
            let mut s = st.borrow_mut();
            if s.unassigned == 0 {
                let all_idle = s.subflows.iter().all(|f| !f.busy);
                if all_idle {
                    if let Some(cb) = s.on_done.take() {
                        let stats = MptcpStats {
                            bytes: s.total,
                            started_at: s.started_at,
                            completed_at: sim.now(),
                            subflows: s
                                .subflows
                                .iter()
                                .map(|f| SubflowStats {
                                    label: f.spec.label.clone(),
                                    bytes: f.delivered,
                                    windows: f.windows,
                                    loss_events: f.loss_events,
                                    srtt: f.srtt.srtt(),
                                    wire_bytes: f.wire_bytes,
                                })
                                .collect(),
                        };
                        drop(s);
                        cb(sim, stats);
                        return;
                    }
                }
                return;
            }
            let Some(idx) = pick(&mut s) else { return };
            let window = s.subflows[idx].cwnd.min(s.unassigned);
            s.unassigned -= window;
            let mss = s.cfg.mss;
            let f = &mut s.subflows[idx];
            f.busy = true;
            f.windows += 1;
            let ovh = f.overhead_factor(mss);
            let wire = (window as f64 * ovh).ceil() as u64;
            f.wire_bytes += wire;
            let rtt_eff = f.rtt_eff();
            // Cap the wire rate so goodput is cwnd/rtt_eff.
            let cap = Bandwidth::from_bps(f.cwnd as f64 * ovh * 8.0 / rtt_eff.as_secs_f64());
            (idx, window, wire, cap, f.spec.path.clone(), rtt_eff)
        };
        let (idx, window, wire, cap, path, rtt_eff) = dispatch;
        let st2 = st.clone();
        let dispatched_at = sim.now();
        sim.start_transfer_on_path(path, wire, Some(cap), move |sim, _| {
            // The window's last byte has been serialized; ACK-delay adds
            // client-side latency before the server sees the window done.
            let ack_extra = {
                let s = st2.borrow();
                s.subflows[idx].spec.ack_delay
            };
            let st3 = st2.clone();
            sim.schedule_in(ack_extra, move |sim| {
                let observed = sim.now().since(dispatched_at);
                {
                    let mut s = st3.borrow_mut();
                    let mss = s.cfg.mss;
                    let f = &mut s.subflows[idx];
                    f.busy = false;
                    f.delivered += window;
                    f.srtt.observe(observed);
                    let npkts = window.div_ceil(mss as u64).max(1);
                    let p_win = 1.0 - (1.0 - f.loss).powi(npkts.min(1 << 20) as i32);
                    let lost = f.loss > 0.0 && {
                        let roll: f64 = s.rng.gen();
                        roll < p_win
                    };
                    let f = &mut s.subflows[idx];
                    if lost {
                        f.loss_events += 1;
                        f.ssthresh = (f.cwnd / 2).max(2 * mss as u64);
                        f.cwnd = f.ssthresh;
                    } else if observed <= rtt_eff + rtt_eff / 4 {
                        if f.cwnd < f.ssthresh {
                            f.cwnd = f.cwnd.saturating_mul(2);
                        } else {
                            f.cwnd += mss as u64;
                        }
                        f.cwnd = f.cwnd.min(1 << 30);
                    }
                }
                pump(sim, st3);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_netsim::presets::{detour_triangle, DetourParams};
    use hpop_netsim::units::MB;

    /// Builds the §IV-C triangle and the two standard subflows
    /// (direct + via waypoint).
    fn triangle_subflows() -> (NetSim, Vec<SubflowSpec>) {
        let t = detour_triangle(&DetourParams::default());
        let mut sim = NetSim::with_topology(t.topology.clone());
        let direct = Path::new(
            &t.topology,
            t.server,
            t.client,
            vec![t.topology.neighbors(t.server)[0].1],
        );
        let via = sim
            .state
            .net
            .routing()
            .route_via(t.server, t.waypoint, t.client)
            .unwrap();
        (
            sim,
            vec![
                SubflowSpec::new("direct", direct),
                SubflowSpec::new("via-waypoint", via),
            ],
        )
    }

    fn run(
        mut sim: NetSim,
        subflows: Vec<SubflowSpec>,
        bytes: u64,
        sched: Scheduler,
        seed: u64,
    ) -> MptcpStats {
        let out: Rc<RefCell<Option<MptcpStats>>> = Rc::new(RefCell::new(None));
        let o2 = out.clone();
        MptcpTransfer::launch(
            &mut sim,
            subflows,
            bytes,
            TcpConfig::default(),
            sched,
            seed,
            move |_, s| *o2.borrow_mut() = Some(s),
        );
        sim.run();
        let s = out.borrow_mut().take().expect("completed");
        s
    }

    #[test]
    fn single_subflow_behaves_like_tcp() {
        let (sim, mut flows) = triangle_subflows();
        flows.truncate(1);
        let s = run(sim, flows, 10 * MB, Scheduler::MinRtt, 1);
        assert_eq!(s.bytes, 10 * MB);
        assert_eq!(s.subflows.len(), 1);
        assert_eq!(s.subflows[0].bytes, 10 * MB);
    }

    #[test]
    fn two_subflows_aggregate_bandwidth() {
        let (sim, flows) = triangle_subflows();
        let both = run(sim, flows, 200 * MB, Scheduler::MinRtt, 1);
        let (sim, mut flows) = triangle_subflows();
        flows.truncate(1); // direct only (200 Mbps, lossy)
        let direct_only = run(sim, flows, 200 * MB, Scheduler::MinRtt, 1);
        assert!(
            both.mean_rate().bits_per_sec() > 1.5 * direct_only.mean_rate().bits_per_sec(),
            "aggregate {} vs direct {}",
            both.mean_rate(),
            direct_only.mean_rate()
        );
        // The clean gigabit detour carries the bulk of the bytes.
        assert!(both.share(1) > 0.6, "waypoint share {}", both.share(1));
    }

    #[test]
    fn ack_delay_steers_bytes_away() {
        let (sim, flows) = triangle_subflows();
        let baseline = run(sim, flows, 100 * MB, Scheduler::MinRtt, 5);
        let (sim, mut flows) = triangle_subflows();
        // Penalize the waypoint subflow with 200 ms of ACK delay.
        flows[1].ack_delay = SimDuration::from_millis(200);
        let steered = run(sim, flows, 100 * MB, Scheduler::MinRtt, 5);
        assert!(
            steered.share(1) < baseline.share(1) - 0.2,
            "steering did not shift share: {} -> {}",
            baseline.share(1),
            steered.share(1)
        );
    }

    #[test]
    fn tunnel_overhead_appears_in_wire_bytes() {
        let (sim, mut flows) = triangle_subflows();
        flows[1].per_packet_overhead = 36; // VPN encapsulation
        let s = run(sim, flows, 50 * MB, Scheduler::MinRtt, 2);
        let sf = &s.subflows[1];
        assert!(sf.wire_bytes > sf.bytes);
        let factor = sf.wire_bytes as f64 / sf.bytes as f64;
        assert!(
            (factor - (1.0 + 36.0 / 1460.0)).abs() < 0.01,
            "factor {factor}"
        );
        // The untunneled subflow has no inflation.
        assert_eq!(s.subflows[0].wire_bytes, s.subflows[0].bytes);
    }

    #[test]
    fn close_subflow_stops_feeding_it() {
        let (mut sim, flows) = triangle_subflows();
        let out: Rc<RefCell<Option<MptcpStats>>> = Rc::new(RefCell::new(None));
        let o2 = out.clone();
        let handle = MptcpTransfer::launch(
            &mut sim,
            flows,
            100 * MB,
            TcpConfig::default(),
            Scheduler::MinRtt,
            9,
            move |_, s| *o2.borrow_mut() = Some(s),
        );
        let h2 = handle.clone();
        sim.schedule_in(SimDuration::from_millis(500), move |sim| {
            h2.close_subflow(sim, 0); // withdraw the lossy direct path
        });
        sim.run();
        let s = out.borrow_mut().take().unwrap();
        // The direct subflow carried only the pre-close portion.
        assert!(s.share(0) < 0.35, "direct share {}", s.share(0));
        assert_eq!(s.bytes, 100 * MB);
    }

    #[test]
    fn round_robin_balances_windows() {
        let (sim, flows) = triangle_subflows();
        let s = run(sim, flows, 100 * MB, Scheduler::RoundRobin, 3);
        // Windows are interleaved across both subflows.
        assert!(s.subflows[0].windows > 5);
        assert!(s.subflows[1].windows > 5);
    }

    #[test]
    fn determinism() {
        let (sim, flows) = triangle_subflows();
        let a = run(sim, flows, 30 * MB, Scheduler::MinRtt, 11);
        let (sim, flows) = triangle_subflows();
        let b = run(sim, flows, 30 * MB, Scheduler::MinRtt, 11);
        assert_eq!(a.completed_at, b.completed_at);
        assert_eq!(a.subflows[0].bytes, b.subflows[0].bytes);
    }

    #[test]
    #[should_panic(expected = "at least one subflow")]
    fn empty_subflows_panics() {
        let (mut sim, _) = triangle_subflows();
        let _ = MptcpTransfer::launch(
            &mut sim,
            vec![],
            MB,
            TcpConfig::default(),
            Scheduler::MinRtt,
            0,
            |_, _| {},
        );
    }

    #[test]
    #[should_panic(expected = "last open subflow")]
    fn cannot_close_final_subflow() {
        let (mut sim, mut flows) = triangle_subflows();
        flows.truncate(1);
        let handle = MptcpTransfer::launch(
            &mut sim,
            flows,
            100 * MB,
            TcpConfig::default(),
            Scheduler::MinRtt,
            0,
            |_, _| {},
        );
        handle.close_subflow(&mut sim, 0);
    }
}
