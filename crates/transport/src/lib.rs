//! # hpop-transport — TCP and Multipath TCP models
//!
//! The Detour Collective (§IV-C) "leverages multipath TCP (MPTCP) to
//! make detours transparent to applications": the client opens extra
//! subflows through cooperative waypoints, the server believes they are
//! ordinary interfaces of the same host, and the client steers the
//! server's RTT-based scheduler by delaying subflow-level ACKs. The §IV-D
//! ramp-up arithmetic (1 Gbps × 50 ms ⇒ ~10 RTTs / 14 MB before full
//! utilization) is a TCP slow-start property. This crate models both:
//!
//! - [`tcp`] — configuration and *analytic* TCP math: slow-start ramp-up,
//!   whole-transfer duration, and the Mathis steady-state throughput
//!   bound under loss.
//! - [`rtt`] — the RFC 6298-style smoothed-RTT estimator MPTCP schedulers
//!   consult.
//! - [`conn`] — an event-driven, self-clocked single-path TCP transfer
//!   over the [`hpop_netsim`] flow network: congestion window evolution
//!   (slow start, congestion avoidance, multiplicative decrease on loss)
//!   expressed as a per-window rate cap.
//! - [`mptcp`] — multipath connections: per-subflow congestion control,
//!   minRTT / round-robin schedulers, client-side ACK-delay steering and
//!   per-packet tunnel overhead (the §IV-C VPN-vs-NAT tradeoff).
//!
//! ## Model fidelity
//!
//! The transfer model is *window-grained*: each congestion window is one
//! simulator flow whose rate cap is `cwnd / rtt_effective`, so a full
//! window takes one RTT when uncontended (self-clocking) and stretches
//! under contention exactly as the fair-share allocator dictates. Loss is
//! sampled per window from the path loss probability. This reproduces
//! ramp-up, congestion response, RTT-biased scheduling and bandwidth
//! aggregation — the behaviours the paper's claims rest on — without
//! per-packet simulation.
//!
//! Known non-goals of the model: contending flows share max-min fairly
//! regardless of RTT (real TCP's RTT unfairness is not reproduced), and
//! there are no router queues, so bufferbloat and loss-synchronization
//! effects do not arise. None of the paper's claims depend on either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod proptests;

pub mod conn;
pub mod mptcp;
pub mod rtt;
pub mod tcp;

pub use conn::{TcpStats, TcpTransfer};
pub use mptcp::{MptcpStats, MptcpTransfer, Scheduler, SubflowSpec};
pub use rtt::SrttEstimator;
pub use tcp::{mathis_throughput, slow_start_rampup, transfer_duration, RampUp, TcpConfig};
