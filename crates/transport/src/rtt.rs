//! Smoothed round-trip-time estimation (RFC 6298 style).
//!
//! MPTCP's default scheduler picks the subflow with the lowest smoothed
//! RTT — which is precisely the knob §IV-C's client turns by delaying
//! subflow-level ACKs. The estimator here is what both the server model
//! and the client steering logic consult.

use hpop_netsim::time::SimDuration;

/// EWMA smoothed-RTT estimator with RFC 6298 gains (α = 1/8, β = 1/4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
}

impl Default for SrttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl SrttEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> Self {
        SrttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
        }
    }

    /// Feeds one RTT measurement.
    pub fn observe(&mut self, sample: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let diff = if sample > srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                // rttvar = 3/4 rttvar + 1/4 |diff|
                self.rttvar =
                    SimDuration::from_nanos((self.rttvar.as_nanos() / 4) * 3 + diff.as_nanos() / 4);
                // srtt = 7/8 srtt + 1/8 sample
                self.srtt = Some(SimDuration::from_nanos(
                    (srtt.as_nanos() / 8) * 7 + sample.as_nanos() / 8,
                ));
            }
        }
    }

    /// The smoothed RTT, or `None` before the first sample.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// The retransmission timeout: `srtt + 4 * rttvar`, floored at 200 ms
    /// (a common kernel minimum); `None` before the first sample.
    pub fn rto(&self) -> Option<SimDuration> {
        let srtt = self.srtt?;
        let rto = srtt + self.rttvar * 4;
        Some(rto.max(SimDuration::from_millis(200)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = SrttEstimator::new();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.rto(), None);
        e.observe(SimDuration::from_millis(40));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(40)));
        assert_eq!(e.rttvar(), SimDuration::from_millis(20));
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut e = SrttEstimator::new();
        for _ in 0..100 {
            e.observe(SimDuration::from_millis(30));
        }
        let srtt = e.srtt().unwrap().as_millis_f64();
        assert!((srtt - 30.0).abs() < 0.5, "srtt {srtt}");
        assert!(e.rttvar() < SimDuration::from_millis(1));
    }

    #[test]
    fn tracks_rtt_inflation() {
        // The §IV-C steering scenario: the client starts delaying ACKs by
        // 50 ms; the server's estimate rises toward the inflated value.
        let mut e = SrttEstimator::new();
        for _ in 0..20 {
            e.observe(SimDuration::from_millis(30));
        }
        for _ in 0..100 {
            e.observe(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap().as_millis_f64();
        assert!(srtt > 75.0, "srtt only rose to {srtt}");
    }

    #[test]
    fn rto_floor() {
        let mut e = SrttEstimator::new();
        e.observe(SimDuration::from_millis(1));
        assert_eq!(e.rto(), Some(SimDuration::from_millis(200)));
    }

    #[test]
    fn rto_scales_with_variance() {
        let mut e = SrttEstimator::new();
        // Alternating samples keep variance high.
        for i in 0..50 {
            e.observe(SimDuration::from_millis(if i % 2 == 0 { 100 } else { 300 }));
        }
        let rto = e.rto().unwrap();
        let srtt = e.srtt().unwrap();
        assert!(rto > srtt + SimDuration::from_millis(100));
    }
}
