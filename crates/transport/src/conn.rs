//! Event-driven single-path TCP transfers over the flow network.
//!
//! Each congestion window is dispatched as one simulator flow rate-capped
//! at `cwnd / rtt`: uncontended, a full window takes exactly one RTT
//! (self-clocking); under contention the fair-share allocator stretches
//! it. Loss is sampled per window from the path's end-to-end loss
//! probability; on loss the window halves (NewReno-style multiplicative
//! decrease). Growth is ACK-clocked: the window only grows when the
//! previous window completed near the RTT bound (i.e. the sender, not the
//! path, was the limit).

use crate::tcp::TcpConfig;
use hpop_netsim::netsim::NetSim;
use hpop_netsim::routing::Path;
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_netsim::topology::NodeId;
use hpop_netsim::units::Bandwidth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Completion statistics of a TCP transfer.
#[derive(Clone, Debug)]
pub struct TcpStats {
    /// Bytes delivered (the requested transfer size).
    pub bytes: u64,
    /// When the transfer was launched.
    pub started_at: SimTime,
    /// When the last byte arrived.
    pub completed_at: SimTime,
    /// Congestion windows dispatched.
    pub windows: u32,
    /// Loss events experienced (each halved the window).
    pub loss_events: u32,
    /// The final congestion window, bytes.
    pub final_cwnd: u64,
}

impl TcpStats {
    /// Transfer duration.
    pub fn duration(&self) -> SimDuration {
        self.completed_at.since(self.started_at)
    }

    /// Mean goodput over the transfer.
    pub fn mean_rate(&self) -> Bandwidth {
        let dt = self.duration().as_secs_f64();
        if dt <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::from_bps(self.bytes as f64 * 8.0 / dt)
        }
    }
}

type DoneCallback = Box<dyn FnOnce(&mut NetSim, TcpStats)>;

struct State {
    path: Path,
    rtt: SimDuration,
    loss: f64,
    cfg: TcpConfig,
    cwnd: u64,
    ssthresh: u64,
    remaining: u64,
    total: u64,
    windows: u32,
    loss_events: u32,
    started_at: SimTime,
    rng: StdRng,
    on_done: Option<DoneCallback>,
}

/// A self-clocked TCP bulk transfer.
#[derive(Debug)]
pub struct TcpTransfer;

impl TcpTransfer {
    /// Launches a transfer of `bytes` from `src` to `dst` along the
    /// native route. `seed` drives per-window loss sampling (determinism:
    /// same seed, same run). `on_done` fires when the last byte lands.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` are disconnected.
    pub fn launch(
        sim: &mut NetSim,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cfg: TcpConfig,
        seed: u64,
        on_done: impl FnOnce(&mut NetSim, TcpStats) + 'static,
    ) {
        let path = sim
            .state
            .net
            .routing()
            .route(src, dst)
            .unwrap_or_else(|| panic!("no route between {src:?} and {dst:?}"));
        Self::launch_on_path(sim, path, bytes, cfg, seed, on_done);
    }

    /// Launches a transfer along an explicit path (e.g. a detour).
    pub fn launch_on_path(
        sim: &mut NetSim,
        path: Path,
        bytes: u64,
        cfg: TcpConfig,
        seed: u64,
        on_done: impl FnOnce(&mut NetSim, TcpStats) + 'static,
    ) {
        let topo = sim.state.net.topology();
        let rtt = path.rtt(topo).max(SimDuration::from_micros(100));
        let loss = path.loss(topo);
        let st = Rc::new(RefCell::new(State {
            cwnd: cfg.init_cwnd_bytes().max(1),
            ssthresh: cfg.initial_ssthresh.unwrap_or(u64::MAX),
            remaining: bytes,
            total: bytes,
            windows: 0,
            loss_events: 0,
            started_at: sim.now(),
            rng: StdRng::seed_from_u64(seed),
            on_done: Some(Box::new(on_done)),
            path,
            rtt,
            loss,
            cfg,
        }));
        send_window(sim, st);
    }
}

fn finish(sim: &mut NetSim, st: &Rc<RefCell<State>>) {
    let (cb, stats) = {
        let mut s = st.borrow_mut();
        let stats = TcpStats {
            bytes: s.total,
            started_at: s.started_at,
            completed_at: sim.now(),
            windows: s.windows,
            loss_events: s.loss_events,
            final_cwnd: s.cwnd,
        };
        (s.on_done.take(), stats)
    };
    if let Some(cb) = cb {
        cb(sim, stats);
    }
}

fn send_window(sim: &mut NetSim, st: Rc<RefCell<State>>) {
    let (window, cap, path, dispatched_at, rtt) = {
        let mut s = st.borrow_mut();
        if s.remaining == 0 {
            drop(s);
            finish(sim, &st);
            return;
        }
        let window = s.cwnd.min(s.remaining);
        s.windows += 1;
        let cap = Bandwidth::from_bps(s.cwnd as f64 * 8.0 / s.rtt.as_secs_f64());
        (window, cap, s.path.clone(), sim.now(), s.rtt)
    };
    let st2 = st.clone();
    sim.start_transfer_on_path(path, window, Some(cap), move |sim, _info| {
        let observed = sim.now().since(dispatched_at);
        {
            let mut s = st2.borrow_mut();
            s.remaining -= window;
            // Sample loss over the packets of this window.
            let npkts = window.div_ceil(s.cfg.mss as u64).max(1);
            let p_window = 1.0 - (1.0 - s.loss).powi(npkts.min(1 << 20) as i32);
            if s.loss > 0.0 && s.rng.gen::<f64>() < p_window {
                s.loss_events += 1;
                s.ssthresh = (s.cwnd / 2).max(2 * s.cfg.mss as u64);
                s.cwnd = s.ssthresh;
            } else if observed <= rtt + rtt / 4 {
                // ACK-clocked growth: only while the sender is the limit.
                if s.cwnd < s.ssthresh {
                    s.cwnd = s.cwnd.saturating_mul(2).min(s.ssthresh.max(s.cwnd * 2));
                } else {
                    s.cwnd += s.cfg.mss as u64;
                }
                s.cwnd = s.cwnd.min(1 << 30); // 1 GiB receive-window cap
            }
        }
        send_window(sim, st2);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_netsim::presets::{ccz, CczParams};
    use hpop_netsim::topology::TopologyBuilder;
    use hpop_netsim::units::MB;

    fn one_link(cap: Bandwidth, latency: SimDuration, loss: f64) -> (NetSim, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link_full(x, y, cap, cap, latency, loss);
        (NetSim::with_topology(b.build()), x, y)
    }

    fn run_transfer(
        cap: Bandwidth,
        latency: SimDuration,
        loss: f64,
        bytes: u64,
        seed: u64,
    ) -> TcpStats {
        let (mut sim, x, y) = one_link(cap, latency, loss);
        let out: Rc<RefCell<Option<TcpStats>>> = Rc::new(RefCell::new(None));
        let o2 = out.clone();
        TcpTransfer::launch(
            &mut sim,
            x,
            y,
            bytes,
            TcpConfig::default(),
            seed,
            move |_, s| {
                *o2.borrow_mut() = Some(s);
            },
        );
        sim.run();
        let s = out.borrow_mut().take().expect("transfer completed");
        s
    }

    #[test]
    fn short_transfer_is_rtt_bound() {
        // 100 KB over 1 Gbps / 25 ms one-way (50 ms RTT): ~3 windows.
        let s = run_transfer(
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(25),
            0.0,
            100_000,
            1,
        );
        let d = s.duration().as_secs_f64();
        assert!(d > 0.10 && d < 0.20, "took {d}s");
        assert!(s.windows >= 3 && s.windows <= 4, "windows {}", s.windows);
        // Goodput is a tiny fraction of the gigabit.
        assert!(s.mean_rate().as_mbps() < 10.0);
    }

    #[test]
    fn long_transfer_saturates_link() {
        let s = run_transfer(
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(25),
            0.0,
            2_000 * MB,
            1,
        );
        assert!(s.loss_events == 0);
        assert!(s.mean_rate().as_mbps() > 900.0, "rate {}", s.mean_rate());
    }

    #[test]
    fn loss_caps_throughput() {
        let clean = run_transfer(
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(25),
            0.0,
            100 * MB,
            7,
        );
        let lossy = run_transfer(
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(25),
            0.01,
            100 * MB,
            7,
        );
        assert!(lossy.loss_events > 0);
        assert!(
            lossy.mean_rate().bits_per_sec() < clean.mean_rate().bits_per_sec() / 2.0,
            "lossy {} vs clean {}",
            lossy.mean_rate(),
            clean.mean_rate()
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = run_transfer(
            Bandwidth::mbps(100.0),
            SimDuration::from_millis(10),
            0.02,
            10 * MB,
            42,
        );
        let b = run_transfer(
            Bandwidth::mbps(100.0),
            SimDuration::from_millis(10),
            0.02,
            10 * MB,
            42,
        );
        assert_eq!(a.completed_at, b.completed_at);
        assert_eq!(a.loss_events, b.loss_events);
        assert_eq!(a.windows, b.windows);
    }

    #[test]
    fn different_seed_differs_under_loss() {
        let a = run_transfer(
            Bandwidth::mbps(100.0),
            SimDuration::from_millis(10),
            0.05,
            10 * MB,
            1,
        );
        let b = run_transfer(
            Bandwidth::mbps(100.0),
            SimDuration::from_millis(10),
            0.05,
            10 * MB,
            2,
        );
        assert_ne!(a.completed_at, b.completed_at);
    }

    #[test]
    fn two_tcp_flows_share_fairly() {
        let (mut sim, x, y) = one_link(Bandwidth::mbps(100.0), SimDuration::from_millis(5), 0.0);
        let done: Rc<RefCell<Vec<TcpStats>>> = Rc::new(RefCell::new(Vec::new()));
        for seed in 0..2 {
            let d2 = done.clone();
            TcpTransfer::launch(
                &mut sim,
                x,
                y,
                50 * MB,
                TcpConfig::default(),
                seed,
                move |_, s| d2.borrow_mut().push(s),
            );
        }
        sim.run();
        let done = done.borrow();
        assert_eq!(done.len(), 2);
        for s in done.iter() {
            let r = s.mean_rate().as_mbps();
            assert!(
                r > 35.0 && r < 65.0,
                "rate {r} not near the 50 Mbps fair share"
            );
        }
    }

    #[test]
    fn ccz_home_to_server_ramp_matches_paper_shape() {
        // E2 sanity: on the CCZ preset (49 ms RTT, 1 Gbps bottleneck) a
        // 14 MB transfer is still mostly in slow start.
        let net = ccz(&CczParams::default());
        let mut sim = NetSim::with_topology(net.topology.clone());
        let out: Rc<RefCell<Option<TcpStats>>> = Rc::new(RefCell::new(None));
        let o2 = out.clone();
        TcpTransfer::launch(
            &mut sim,
            net.server,
            net.homes[0],
            14 * MB,
            TcpConfig::default(),
            3,
            move |_, s| *o2.borrow_mut() = Some(s),
        );
        sim.run();
        let s = out.borrow_mut().take().unwrap();
        let rate = s.mean_rate().as_mbps();
        assert!(
            rate < 450.0,
            "14MB transfer achieved {rate} Mbps — slow start should keep it well under capacity"
        );
        assert!(s.windows >= 9, "only {} windows", s.windows);
    }
}
