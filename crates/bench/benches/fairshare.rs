//! Fair-share allocator microbenchmarks: the global progressive-filling
//! oracle (`max_min_rates`) versus the incremental bottleneck-set
//! allocator (`FlowNet`), per flow event, at n ∈ {100, 1k, 10k}
//! standing flows on a hierarchical metro city.
//!
//! A flow event for the global allocator is one full `max_min_rates`
//! re-solve of the whole demand set (what the pre-PR engine did on
//! every start/completion/cancel). For the incremental allocator it is
//! one `start_on_hops` + one `cancel` against a warm standing set —
//! the ripple re-solves only the touched bottleneck sets.
//!
//! Besides the criterion groups, `main` first runs one deterministic
//! manual timing pass and writes `BENCH_micro.json`
//! (`micro.fairshare.{glob|inc}.n{N}.ns_per_event` plus
//! `micro.fairshare.speedup_n10000_x10`), which CI bounds via
//! `check_snapshot --budget`.

use criterion::{black_box, criterion_group, Criterion};
use hpop_netsim::fairshare::{max_min_rates, Demand};
use hpop_netsim::flow::FlowNet;
use hpop_netsim::presets::{metro, MetroNetwork, MetroParams};
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_netsim::units::Bandwidth;
use hpop_obs::MetricsRegistry;
use std::time::Instant;

/// xorshift64* — deterministic workload without pulling in `rand`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn city_for(flows: usize) -> MetroNetwork {
    metro(&MetroParams {
        homes: (flows * 4).max(128),
        ..MetroParams::default()
    })
}

/// The standing demand set: one uplink flow per pick, every 4th capped.
fn demand_set(city: &MetroNetwork, n: usize) -> Vec<Demand> {
    let mut rng = Rng(0x5EED ^ n as u64 | 1);
    (0..n)
        .map(|i| {
            let h = rng.below(city.home_count() as u64) as usize;
            Demand {
                links: city.up_hops(h).to_vec(),
                cap: (i % 4 == 0).then(|| Bandwidth::mbps(200.0)),
            }
        })
        .collect()
}

/// A `FlowNet` warmed with the same standing set; returns the net and
/// the home picks so churn events can reuse the hops.
fn warm_net(city: &MetroNetwork, n: usize) -> (FlowNet, Vec<usize>) {
    let mut rng = Rng(0x5EED ^ n as u64 | 1);
    let mut net = FlowNet::new(city.topology.clone());
    let mut picks = Vec::with_capacity(n);
    for i in 0..n {
        let h = rng.below(city.home_count() as u64) as usize;
        net.start_on_hops(
            city.homes[h],
            city.backbone,
            &city.up_hops(h),
            u64::MAX / 4, // long-lived: the standing set never drains
            (i % 4 == 0).then(|| Bandwidth::mbps(200.0)),
            SimTime::ZERO,
            hpop_obs::TraceCtx::NONE,
        );
        picks.push(h);
    }
    (net, picks)
}

/// One incremental flow event: start a transfer on `home`'s uplink,
/// then cancel it — two ripples against the warm standing set.
fn inc_event(net: &mut FlowNet, city: &MetroNetwork, home: usize, at: SimTime) {
    let id = net.start_on_hops(
        city.homes[home],
        city.backbone,
        &city.up_hops(home),
        u64::MAX / 4,
        None,
        at,
        hpop_obs::TraceCtx::NONE,
    );
    net.cancel(id, at);
}

const SIZES: [usize; 3] = [100, 1_000, 10_000];

fn bench_global(c: &mut Criterion) {
    let mut g = c.benchmark_group("fairshare/global");
    for &n in &SIZES {
        let city = city_for(n);
        let demands = demand_set(&city, n);
        g.bench_function(format!("n{n}"), |b| {
            b.iter(|| black_box(max_min_rates(&city.topology, &demands)))
        });
    }
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("fairshare/incremental");
    for &n in &SIZES {
        let city = city_for(n);
        let (mut net, picks) = warm_net(&city, n);
        let mut i = 0usize;
        let mut t = SimTime::from_nanos(1);
        g.bench_function(format!("n{n}"), |b| {
            b.iter(|| {
                inc_event(&mut net, &city, picks[i % picks.len()], t);
                i += 1;
                t += SimDuration::from_nanos(1);
                black_box(net.active_count())
            })
        });
    }
    g.finish();
}

/// Deterministic manual pass: times `iters` events of each kind and
/// writes the `micro.*` counters CI budget-checks.
fn write_micro_snapshot() {
    let metrics = MetricsRegistry::new();
    let pass_started = Instant::now();
    let mut speedup_10k = 0.0;
    for &n in &SIZES {
        let city = city_for(n);
        let demands = demand_set(&city, n);
        // Global: full re-solves. 10k flows cost ~ms each; a handful is
        // plenty for a per-event figure.
        let iters = (200_000 / n).clamp(5, 400) as u32;
        let started = Instant::now();
        for _ in 0..iters {
            black_box(max_min_rates(&city.topology, &demands));
        }
        let glob_ns = started.elapsed().as_nanos() as u64 / iters as u64;

        let (mut net, picks) = warm_net(&city, n);
        let inc_iters = 20_000u32;
        let mut t = SimTime::from_nanos(1);
        let started = Instant::now();
        for i in 0..inc_iters as usize {
            inc_event(&mut net, &city, picks[i % picks.len()], t);
            t += SimDuration::from_nanos(1);
        }
        // An inc event is a start + a cancel = two ripples; report per
        // ripple so the comparison with one global re-solve is fair.
        let inc_ns = (started.elapsed().as_nanos() as u64 / inc_iters as u64 / 2).max(1);

        metrics
            .counter(&format!("micro.fairshare.glob.n{n}.ns_per_event"))
            .add(glob_ns);
        metrics
            .counter(&format!("micro.fairshare.inc.n{n}.ns_per_event"))
            .add(inc_ns);
        if n == 10_000 {
            speedup_10k = glob_ns as f64 / inc_ns as f64;
        }
    }
    metrics
        .counter("micro.fairshare.speedup_n10000_x10")
        .add((speedup_10k * 10.0) as u64);
    // The harness markers `check_snapshot` requires of every snapshot
    // (this one is written by the bench itself, not `harness::run`).
    metrics.counter("exp.tables").add(0);
    metrics
        .gauge("exp.wall_ms")
        .set(pass_started.elapsed().as_secs_f64() * 1e3);
    // `cargo bench` sets the cwd to the package dir; the committed
    // artifact lives at the workspace root next to the other BENCH_*.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_micro.json");
    let snap = metrics.snapshot("micro");
    if let Err(e) = snap.write_to(out) {
        eprintln!("bench_fairshare: cannot write {out}: {e}");
    }
    println!(
        "fairshare micro: 10k-flow event {speedup_10k:.0}x faster incrementally \
         (BENCH_micro.json written)"
    );
}

criterion_group!(benches, bench_global, bench_incremental);

fn main() {
    write_micro_snapshot();
    let mut c = criterion::criterion_from_args();
    benches(&mut c);
}
