//! Criterion benchmarks over the simulator and the end-to-end
//! experiment kernels: how fast the harness itself regenerates the
//! paper's results (simulated seconds per wall-clock second).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpop_bench::experiments::{
    e02_tcp_rampup, e03_bottleneck_shift, e10_tunnel_tradeoff, e15_coop_cache, e16_nat_traversal,
};
use hpop_netsim::netsim::NetSim;
use hpop_netsim::presets::{ccz, CczParams};
use hpop_netsim::units::MB;

fn bench_flow_sim(c: &mut Criterion) {
    // 50 homes each pulling 100 MB through the shared uplink: one full
    // max-min reallocation per flow event.
    c.bench_function("netsim/ccz_50_homes_bulk", |b| {
        b.iter(|| {
            let net = ccz(&CczParams {
                homes: 50,
                ..CczParams::default()
            });
            let mut sim = NetSim::with_topology(net.topology.clone());
            for h in 0..50 {
                sim.start_transfer(net.server, net.homes[h], 100 * MB, |_, _| {});
            }
            sim.run();
            black_box(sim.events_run())
        })
    });
}

fn bench_experiments(c: &mut Criterion) {
    c.bench_function("experiment/e02_rampup_tables", |b| {
        b.iter(|| black_box(e02_tcp_rampup::rampup_table()))
    });
    c.bench_function("experiment/e03_bottleneck_20_homes", |b| {
        b.iter(|| black_box(e03_bottleneck_shift::run(&[20])))
    });
    c.bench_function("experiment/e10_tunnel_sweep", |b| {
        b.iter(|| black_box(e10_tunnel_tradeoff::run()))
    });
    c.bench_function("experiment/e15_coop_10_homes", |b| {
        b.iter(|| black_box(e15_coop_cache::run(&[10], 100)))
    });
    c.bench_function("experiment/e16_nat_matrix", |b| {
        b.iter(|| black_box(e16_nat_traversal::matrix_table()))
    });
}

criterion_group!(benches, bench_flow_sim, bench_experiments);
criterion_main!(benches);
