//! Criterion micro-benchmarks for the cryptographic and coding
//! substrates every HPoP service leans on: SHA-256 (NoCDN object
//! verification), HMAC (usage-record signing), ChaCha20 (attic backup
//! encryption) and Reed–Solomon encode/reconstruct (peer backup).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hpop_crypto::chacha20::ChaCha20;
use hpop_crypto::hmac::hmac_sha256;
use hpop_crypto::sha256::Sha256;
use hpop_erasure::rs::ReedSolomon;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [1_024usize, 65_536, 1_048_576] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest/{size}"), |b| {
            b.iter(|| Sha256::digest(black_box(&data)))
        });
    }
    g.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let key = [7u8; 32];
    let record = b"usage|3|12345|987654|7|42";
    c.bench_function("hmac/usage_record", |b| {
        b.iter(|| hmac_sha256(black_box(&key), black_box(record)))
    });
}

fn bench_chacha20(c: &mut Criterion) {
    let key = [9u8; 32];
    let nonce = [1u8; 12];
    let mut g = c.benchmark_group("chacha20");
    for size in [4_096usize, 1_048_576] {
        let data = vec![0x55u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("encrypt/{size}"), |b| {
            b.iter(|| ChaCha20::encrypt(black_box(&key), black_box(&nonce), black_box(&data)))
        });
    }
    g.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let rs = ReedSolomon::new(8, 4).expect("valid params");
    let blob = vec![0x3cu8; 1_048_576];
    let mut g = c.benchmark_group("reed_solomon");
    g.throughput(Throughput::Bytes(blob.len() as u64));
    g.bench_function("encode/RS(12,8)/1MiB", |b| {
        b.iter(|| rs.encode_blob(black_box(&blob)).expect("encodes"))
    });
    let shards = rs.encode_blob(&blob).expect("encodes");
    g.bench_function("reconstruct/RS(12,8)/1MiB/4lost", |b| {
        b.iter(|| {
            let mut s = shards.clone();
            s[0] = None;
            s[3] = None;
            s[8] = None;
            s[11] = None;
            rs.reconstruct_blob(black_box(s), blob.len())
                .expect("reconstructs")
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_chacha20,
    bench_reed_solomon
);
criterion_main!(benches);
