//! # hpop-bench — the experiment harness
//!
//! One module per experiment in DESIGN.md's index (E1–E16). Each
//! experiment exposes `run(…) -> Table` producing the rows the paper's
//! claims predict; the `exp_*` binaries print them, `exp_all`
//! regenerates the complete EXPERIMENTS.md data, and `benches/` holds
//! criterion timing benches over the same code paths.
//!
//! Everything is seeded and deterministic: running any experiment twice
//! prints identical tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use table::Table;
