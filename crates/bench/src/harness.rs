//! Shared entry point for the `exp_*` binaries.
//!
//! Every experiment binary delegates to [`run`], which makes the whole
//! suite behave uniformly:
//!
//! - **Quiet by default.** Tables are not printed; they land (with a
//!   snapshot of the global metrics registry) in `BENCH_<exp>.json`.
//!   `--verbose` re-enables the human-readable table output.
//! - **Structured tracing.** The global tracer is enabled for the run,
//!   so instrumented hot paths (lock mediation, chunk verify, subflow
//!   scheduling, prefetch serving) record events; `--trace <path>`
//!   attaches a JSONL sink that streams them to disk.
//! - **Stable results schema.** The JSON artifact is an
//!   [`hpop_obs::Snapshot`] (schema v1): counters, gauges, histogram
//!   summaries (p50/p90/p99) plus the experiment tables under
//!   `extra.tables`.

use crate::table::Table;
use hpop_obs::json::Value;
use hpop_obs::sink::JsonlSink;
use hpop_obs::{event, AttributionReport, SloBreach, Snapshot};
use std::sync::Mutex;
use std::time::Instant;

/// Latency attribution deposited by the running experiment, folded into
/// the snapshot by [`run_with_opts`].
static PENDING_ATTRIBUTION: Mutex<Option<AttributionReport>> = Mutex::new(None);

/// SLO breach windows deposited by the running experiment.
static PENDING_BREACHES: Mutex<Vec<SloBreach>> = Mutex::new(Vec::new());

/// Deposits the critical-path attribution report for the snapshot the
/// harness is about to write (schema v2 `latency_attribution`).
pub fn stash_attribution(report: AttributionReport) {
    *PENDING_ATTRIBUTION.lock().unwrap() = Some(report);
}

/// Deposits SLO breach windows for the snapshot the harness is about to
/// write (schema v2 `slo_breaches`); accumulates across calls.
pub fn stash_slo_breaches(breaches: Vec<SloBreach>) {
    PENDING_BREACHES.lock().unwrap().extend(breaches);
}

/// Command-line options shared by every experiment binary.
#[derive(Clone, Debug, Default)]
pub struct ExpOptions {
    /// Re-enable human-readable table output (`--verbose` / `-v`).
    pub verbose: bool,
    /// Print tables as GitHub Markdown instead of aligned text
    /// (`--markdown`, implies nothing about quietness).
    pub markdown: bool,
    /// Stream trace events to this JSONL file (`--trace <path>`).
    pub trace_path: Option<String>,
    /// Override the snapshot path (`--out <path>`; default
    /// `BENCH_<exp>.json` in the working directory).
    pub out_path: Option<String>,
    /// Pin the wall-clock gauge to zero (`--stable`) so that two runs
    /// of a deterministic experiment produce byte-identical snapshots —
    /// required for committed artifacts like `BENCH_chaos.json`.
    pub stable: bool,
}

impl ExpOptions {
    /// Parses the process arguments. Unknown flags are ignored so that
    /// individual binaries can grow extra options without breaking the
    /// shared parser.
    pub fn from_env() -> ExpOptions {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut opts = ExpOptions::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--verbose" | "-v" => opts.verbose = true,
                "--markdown" => opts.markdown = true,
                "--stable" => opts.stable = true,
                "--trace" => {
                    i += 1;
                    opts.trace_path = args.get(i).cloned();
                }
                "--out" => {
                    i += 1;
                    opts.out_path = args.get(i).cloned();
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }
}

/// Runs one experiment end to end: enables tracing, executes `produce`,
/// folds the tables and the global metrics registry into a
/// [`Snapshot`], and writes `BENCH_<exp>.json`.
///
/// This is the `main` of every `exp_*` binary.
pub fn run(exp: &str, produce: impl FnOnce() -> Vec<Table>) {
    run_with(exp, ExpOptions::from_env(), produce);
}

/// [`run`] for experiments that need to see the parsed options (E22
/// pins its overhead counters under `--stable`).
pub fn run_opts(exp: &str, produce: impl FnOnce(&ExpOptions) -> Vec<Table>) {
    run_with_opts(exp, ExpOptions::from_env(), produce);
}

/// [`run`] with explicit options; returns the snapshot for tests.
pub fn run_with(exp: &str, opts: ExpOptions, produce: impl FnOnce() -> Vec<Table>) -> Snapshot {
    run_with_opts(exp, opts, |_| produce())
}

/// The full harness: options-aware `produce`, drop accounting, v2
/// section folding. Returns the snapshot for tests.
pub fn run_with_opts(
    exp: &str,
    opts: ExpOptions,
    produce: impl FnOnce(&ExpOptions) -> Vec<Table>,
) -> Snapshot {
    let tracer = hpop_obs::tracer();
    tracer.enable();
    if let Some(path) = &opts.trace_path {
        match JsonlSink::create(path) {
            Ok(sink) => tracer.add_sink(Box::new(sink)),
            Err(e) => eprintln!("exp_{exp}: cannot open trace file {path}: {e}"),
        }
    }
    event!(tracer, 0, "bench", "exp.start", experiment = exp);

    let started = Instant::now();
    let tables = produce(&opts);
    let wall_ms = if opts.stable {
        0.0
    } else {
        started.elapsed().as_secs_f64() * 1e3
    };

    let metrics = hpop_obs::metrics();
    metrics.gauge("exp.wall_ms").set(wall_ms);
    metrics.counter("exp.tables").add(tables.len() as u64);
    // Ring-overflow accounting: every snapshot says how much telemetry
    // was *lost*, so a suspiciously clean run can be told apart from a
    // run that silently dropped its evidence.
    let trace_dropped = metrics.counter("obs.trace.dropped");
    trace_dropped.add(tracer.dropped().saturating_sub(trace_dropped.get()));
    let span_dropped = metrics.counter("obs.span.dropped");
    span_dropped.add(
        hpop_obs::spans()
            .dropped()
            .saturating_sub(span_dropped.get()),
    );
    let rows_hist = metrics.histogram("exp.table.rows");
    for table in &tables {
        metrics.counter("exp.rows").add(table.len() as u64);
        rows_hist.record(table.len() as u64);
        event!(
            tracer,
            0,
            "bench",
            "exp.table",
            id = table.id,
            title = table.title.as_str(),
            rows = table.len() as u64
        );
    }

    let mut snap = metrics.snapshot(exp);
    snap.set_series(hpop_obs::series_registry());
    if let Some(report) = PENDING_ATTRIBUTION.lock().unwrap().take() {
        snap.latency_attribution = Some(report);
    }
    snap.slo_breaches
        .append(&mut PENDING_BREACHES.lock().unwrap());
    snap.set_extra(
        "tables",
        Value::Arr(tables.iter().map(table_to_value).collect()),
    );

    let out = opts
        .out_path
        .clone()
        .unwrap_or_else(|| format!("BENCH_{exp}.json"));
    if let Err(e) = snap.write_to(&out) {
        eprintln!("exp_{exp}: cannot write {out}: {e}");
        std::process::exit(1);
    }
    event!(tracer, 0, "bench", "exp.complete", path = out.as_str());
    tracer.flush();

    if opts.verbose {
        for table in &tables {
            if opts.markdown {
                println!("{}", table.to_markdown());
            } else {
                println!("{table}");
            }
        }
        eprintln!("wrote {out}");
    }
    snap
}

/// A table as a JSON value: `{"id", "title", "headers", "rows"}`.
fn table_to_value(t: &Table) -> Value {
    Value::Obj(vec![
        ("id".into(), Value::Str(t.id.into())),
        ("title".into(), Value::Str(t.title.clone())),
        (
            "headers".into(),
            Value::Arr(t.headers.iter().cloned().map(Value::Str).collect()),
        ),
        (
            "rows".into(),
            Value::Arr(
                t.rows
                    .iter()
                    .map(|r| Value::Arr(r.iter().cloned().map(Value::Str).collect()))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn tiny_table() -> Table {
        let mut t = Table::new("T1", "tiny", &["k", "v"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["b".into(), "2".into()]);
        t
    }

    #[test]
    fn snapshot_written_and_parses_back() {
        let dir = std::env::temp_dir().join(format!("hpop_harness_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_harness_unit.json");
        let opts = ExpOptions {
            out_path: Some(out.to_string_lossy().into_owned()),
            ..ExpOptions::default()
        };
        let snap = run_with("harness_unit", opts, || vec![tiny_table()]);
        assert!(snap.counters["exp.tables"] >= 1);
        assert!(snap.histograms.contains_key("exp.table.rows"));

        let loaded = Snapshot::load(&out).unwrap();
        assert_eq!(loaded.experiment, "harness_unit");
        assert!(loaded.counters.contains_key("exp.tables"));
        let h = &loaded.histograms["exp.table.rows"];
        assert!(h.count >= 1 && h.p50 >= 1 && h.p99 >= h.p50);
        let tables = loaded
            .extra
            .iter()
            .find(|(k, _)| k == "tables")
            .map(|(_, v)| v.clone())
            .unwrap();
        match tables {
            Value::Arr(ts) => assert!(!ts.is_empty()),
            other => panic!("tables should be an array, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn options_parse_known_flags_and_ignore_unknown() {
        // from_env reads real process args; exercise default here and
        // the struct directly (binaries pass through run()).
        let opts = ExpOptions::default();
        assert!(!opts.verbose && opts.trace_path.is_none());
    }
}
