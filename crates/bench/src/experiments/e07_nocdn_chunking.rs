//! E7 — chunked multi-peer downloads (§IV-B "Leveraging Redundancy").
//!
//! "Clients could download objects in chunks … from disparate peers
//! instead of as entire objects. These options both spread the load and
//! lower the chance that one problematic peer … will have a large
//! overall impact on the client." Two views: (a) the integrity/load
//! containment of the chunk protocol, and (b) download-time impact of a
//! degraded peer with and without chunking, on a simulated star network.

use crate::table::{f2, pct, Table};
use hpop_crypto::sha256::Sha256;
use hpop_netsim::netsim::NetSim;
use hpop_netsim::time::SimDuration;
use hpop_netsim::topology::TopologyBuilder;
use hpop_netsim::units::{Bandwidth, MB};
use hpop_nocdn::chunked::fetch_chunked;
use hpop_nocdn::origin::ContentProvider;
use hpop_nocdn::peer::{NoCdnPeer, PeerBehavior, PeerId};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// (a) Protocol containment: how much work a bad peer can waste.
pub fn containment_table() -> Table {
    let mut t = Table::new(
        "E7a",
        "chunked fetch: containment of one bad peer (4 peers, 8 chunks, 400 KB object)",
        &[
            "bad peer behavior",
            "object verified",
            "chunks re-fetched",
            "wasted share",
        ],
    );
    for (name, behavior) in [
        ("none (all honest)", PeerBehavior::Honest),
        ("corrupts content", PeerBehavior::CorruptsContent),
        ("unresponsive", PeerBehavior::Unresponsive),
    ] {
        let mut origin = ContentProvider::new("cdn.example");
        let body: Vec<u8> = (0..400_000u32).map(|i| (i % 251) as u8).collect();
        let digest = Sha256::digest(&body);
        origin.put_object("/big.bin", body);
        let mut peers: BTreeMap<PeerId, NoCdnPeer> = (0..4)
            .map(|i| {
                let b = if i == 1 {
                    behavior
                } else {
                    PeerBehavior::Honest
                };
                (PeerId(i), NoCdnPeer::with_behavior(PeerId(i), b))
            })
            .collect();
        let order: Vec<PeerId> = (0..4).map(PeerId).collect();
        let (report, _) = fetch_chunked("/big.bin", 8, &digest, &order, &mut peers, &mut origin);
        t.push(vec![
            name.into(),
            if report.verified { "yes" } else { "NO" }.into(),
            format!("{}/8", report.fallback_chunks),
            pct(report.fallback_chunks as f64 / 8.0),
        ]);
    }
    t
}

/// (b) Download time with a slow peer: whole-object-from-one-peer vs
/// chunked-across-four, on a star topology where one peer's uplink is
/// 10x slower.
pub fn timing_table() -> Table {
    let object_bytes = 80 * MB;
    // Star: client hub with 4 peer nodes; peer 3 is degraded.
    let build = || {
        let mut b = TopologyBuilder::new();
        let client = b.add_node("client");
        let peers: Vec<_> = (0..4)
            .map(|i| {
                let p = b.add_node(format!("peer{i}"));
                let cap = if i == 3 {
                    Bandwidth::mbps(10.0)
                } else {
                    Bandwidth::mbps(100.0)
                };
                b.add_link(p, client, cap, SimDuration::from_millis(10));
                p
            })
            .collect();
        (b.build(), client, peers)
    };

    let mut t = Table::new(
        "E7b",
        "download time, 80 MB object, one peer degraded to 10 Mbps",
        &["strategy", "completion (s)", "slowdown vs best"],
    );

    // Whole object from the degraded peer (worst single-peer pick).
    let (topo, client, peers) = build();
    let mut sim = NetSim::with_topology(topo);
    let done = Rc::new(RefCell::new(0f64));
    let d2 = done.clone();
    sim.start_transfer(peers[3], client, object_bytes, move |_, info| {
        *d2.borrow_mut() = info.completed_at.as_secs_f64();
    });
    sim.run();
    let worst_single = *done.borrow();

    // Whole object from a healthy peer (best single-peer pick).
    let (topo, client, peers) = build();
    let mut sim = NetSim::with_topology(topo);
    let done = Rc::new(RefCell::new(0f64));
    let d2 = done.clone();
    sim.start_transfer(peers[0], client, object_bytes, move |_, info| {
        *d2.borrow_mut() = info.completed_at.as_secs_f64();
    });
    sim.run();
    let best_single = *done.borrow();

    // Chunked across all four peers: completion = last chunk's arrival.
    let (topo, client, peers) = build();
    let mut sim = NetSim::with_topology(topo);
    let finish = Rc::new(RefCell::new(0f64));
    for (i, &p) in peers.iter().enumerate() {
        let f2c = finish.clone();
        sim.start_transfer(p, client, object_bytes / 4, move |_, info| {
            let mut f = f2c.borrow_mut();
            *f = f.max(info.completed_at.as_secs_f64());
        });
        let _ = i;
    }
    sim.run();
    let chunked = *finish.borrow();

    for (name, secs) in [
        ("single peer (healthy pick)", best_single),
        ("single peer (degraded pick)", worst_single),
        ("chunked across 4 peers", chunked),
    ] {
        t.push(vec![name.into(), f2(secs), f2(secs / best_single)]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![containment_table(), timing_table()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_peer_wastes_at_most_its_chunk_share() {
        let t = containment_table();
        for row in &t.rows[1..] {
            assert_eq!(row[1], "yes", "object must verify despite {}", row[0]);
            let wasted: f64 = row[3].trim_end_matches('%').parse().unwrap();
            // One of four peers serves 2 of 8 chunks = 25%.
            assert!(wasted <= 25.0 + 1e-9, "{} wasted {wasted}%", row[0]);
        }
    }

    #[test]
    fn chunking_bounds_the_degraded_peer_impact() {
        let t = timing_table();
        let best: f64 = t.rows[0][1].parse().unwrap();
        let worst: f64 = t.rows[1][1].parse().unwrap();
        let chunked: f64 = t.rows[2][1].parse().unwrap();
        // Picking the degraded peer is ~10x slower; chunking stays
        // within ~4x of best (the slow peer only carries 1/4 the bytes).
        assert!(worst > 8.0 * best, "worst {worst} best {best}");
        assert!(chunked < worst / 2.0, "chunked {chunked} worst {worst}");
    }
}
