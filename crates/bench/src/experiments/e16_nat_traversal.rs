//! E16 — HPoP reachability across NAT types (§III).
//!
//! "For home networks that are behind a local NAT device only, the
//! widely supported UPnP protocol allows simple programmatic
//! configuration … For those behind ISP-operated NAT …, we assume the
//! STUN protocol … not all NAT devices have the behavior required for
//! hole-punching to work. In those cases, HPoPs can still be used, with
//! limited functionality, employing relaying-based traversal mechanisms
//! such as TURN." Three tables: the hole-punch matrix, the planner's
//! decision per deployment, and the TURN relay's performance penalty.

use crate::table::{f2, Table};
use hpop_nat::behavior::NatProfile;
use hpop_nat::traversal::{hole_punch, plan_reachability, HolePunchOutcome, Traversal};
use hpop_netsim::netsim::NetSim;
use hpop_netsim::routing::RoutingTable;
use hpop_netsim::time::SimDuration;
use hpop_netsim::topology::TopologyBuilder;
use hpop_netsim::units::{Bandwidth, MB};
use std::cell::RefCell;
use std::rc::Rc;

fn profile_set() -> Vec<(&'static str, NatProfile)> {
    vec![
        ("full-cone", NatProfile::full_cone()),
        ("restricted", NatProfile::restricted_cone()),
        ("port-restr", NatProfile::port_restricted_cone()),
        ("symmetric", NatProfile::symmetric()),
    ]
}

/// The pairwise hole-punch matrix.
pub fn matrix_table() -> Table {
    let profiles = profile_set();
    let mut headers: Vec<&str> = vec!["A \\ B"];
    for (name, _) in &profiles {
        headers.push(name);
    }
    let mut t = Table::new("E16a", "STUN hole-punch success matrix", &headers);
    for (name_a, a) in &profiles {
        let mut row = vec![name_a.to_string()];
        for (_, b) in &profiles {
            row.push(match hole_punch(&[*a], &[*b]) {
                HolePunchOutcome::Success { rounds } => format!("ok ({rounds}r)"),
                HolePunchOutcome::Failure => "FAIL".into(),
            });
        }
        t.push(row);
    }
    t
}

/// The §III planner decisions per deployment scenario.
pub fn planner_table() -> Table {
    let mut t = Table::new(
        "E16b",
        "reachability plan per home deployment (the paper's §III ladder)",
        &["deployment", "method", "full functionality"],
    );
    let scenarios: Vec<(&str, Vec<NatProfile>)> = vec![
        ("public address (IPv6)", vec![]),
        ("home NAT only", vec![NatProfile::port_restricted_cone()]),
        (
            "home NAT + CGN",
            vec![
                NatProfile::port_restricted_cone(),
                NatProfile::carrier_grade(),
            ],
        ),
        (
            "home NAT + symmetric CGN",
            vec![
                NatProfile::port_restricted_cone(),
                NatProfile::carrier_grade_symmetric(),
            ],
        ),
        ("symmetric home NAT", vec![NatProfile::symmetric()]),
    ];
    for (name, chain) in scenarios {
        let plan = plan_reachability(&chain);
        let method = match plan.method {
            Traversal::Direct => "direct",
            Traversal::UpnpPortMap => "UPnP port map",
            Traversal::StunHolePunch => "STUN hole punch",
            Traversal::TurnRelay => "TURN relay",
        };
        t.push(vec![
            name.into(),
            method.into(),
            if plan.full_functionality {
                "yes"
            } else {
                "limited"
            }
            .into(),
        ]);
    }
    t
}

/// TURN's cost: a 20 MB transfer device→HPoP, direct vs relayed through
/// a TURN server 30 ms away with a 200 Mbps relay allotment.
pub fn turn_penalty_table() -> Table {
    let mut b = TopologyBuilder::new();
    let device = b.add_node("roaming-device");
    let hpop = b.add_node("hpop");
    let relay = b.add_node("turn-relay");
    // Direct (hole-punched) path.
    b.add_link(
        device,
        hpop,
        Bandwidth::gbps(1.0),
        SimDuration::from_millis(15),
    );
    // Relay legs: longer and capacity-limited at the relay.
    b.add_link(
        device,
        relay,
        Bandwidth::mbps(200.0),
        SimDuration::from_millis(30),
    );
    b.add_link(
        relay,
        hpop,
        Bandwidth::mbps(200.0),
        SimDuration::from_millis(30),
    );
    let topo = b.build();

    let mut t = Table::new(
        "E16c",
        "TURN relay penalty: 20 MB device->HPoP transfer",
        &["path", "rtt (ms)", "completion (s)", "slowdown"],
    );
    let mut rt = RoutingTable::new(&topo);
    let direct = rt.route(device, hpop).expect("direct path");
    let relayed = rt.route_via(device, relay, hpop).expect("relay path");
    let mut results = Vec::new();
    for path in [direct, relayed] {
        let rtt = path.rtt(&topo).as_millis_f64();
        let mut sim = NetSim::with_topology(topo.clone());
        let done = Rc::new(RefCell::new(0f64));
        let d2 = done.clone();
        sim.start_transfer_on_path(path, 20 * MB, None, move |_, info| {
            *d2.borrow_mut() = info.completed_at.as_secs_f64();
        });
        sim.run();
        results.push((rtt, *done.borrow()));
    }
    let base = results[0].1;
    for ((rtt, secs), name) in results
        .iter()
        .zip(["direct (hole-punched)", "via TURN relay"])
    {
        t.push(vec![
            name.into(),
            f2(*rtt),
            f2(*secs),
            format!("{:.2}x", secs / base),
        ]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![matrix_table(), planner_table(), turn_penalty_table()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_matches_folklore() {
        let t = matrix_table();
        // Cone↔cone all succeed; symmetric↔symmetric fails;
        // symmetric↔port-restricted fails; symmetric↔full-cone works.
        let cell = |r: usize, c: usize| t.rows[r][c + 1].clone();
        for r in 0..3 {
            for c in 0..3 {
                assert!(cell(r, c).starts_with("ok"), "({r},{c}) = {}", cell(r, c));
            }
        }
        assert_eq!(cell(3, 3), "FAIL");
        assert_eq!(cell(3, 2), "FAIL");
        assert!(cell(3, 0).starts_with("ok"));
    }

    #[test]
    fn planner_ladder() {
        let t = planner_table();
        assert_eq!(t.rows[0][1], "direct");
        assert_eq!(t.rows[1][1], "UPnP port map");
        assert_eq!(t.rows[2][1], "STUN hole punch");
        assert_eq!(t.rows[3][1], "TURN relay");
        assert_eq!(t.rows[3][2], "limited");
    }

    #[test]
    fn turn_is_measurably_slower() {
        let t = turn_penalty_table();
        let slowdown: f64 = t.rows[1][3].trim_end_matches('x').parse().unwrap();
        assert!(slowdown > 2.0, "TURN slowdown {slowdown}");
    }
}
