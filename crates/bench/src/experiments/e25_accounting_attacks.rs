//! E25 — adversarial accounting: attack campaigns vs the
//! accountability-puzzle defense (§IV-B threat model, CAPnet bound).
//!
//! E6 showed the three *protocol-level* defenses (HMAC, nonces, work
//! cross-check) stopping lone dishonest peers. This experiment runs the
//! attacks those layers *cannot* stop — Sybil swarms and peer+client
//! collusion, where every record is cryptographically valid — and
//! measures the economics with the CAPnet-style accountability puzzle
//! off and on:
//!
//! - **E25a** Sybil-swarm sweep over population and swarm size: with
//!   the defense off, payable bytes grow linearly in minted identities
//!   at zero data work; with it on, the lazy swarm earns nothing and
//!   the diligent swarm's payable-per-work is pinned ≈ constant.
//! - **E25b** campaign × defense matrix (Sybil, collusion-at-scale,
//!   record laundering, adaptive throttling): what the anomaly
//!   detector catches, what only the puzzle catches, and what lands on
//!   the reputation ledger as confirmed misbehavior.
//! - **E25c** the honest-path bill: false rejections (must be zero)
//!   and the provider's verification overhead per payable byte.

use crate::table::{f2, Table};
use hpop_netsim::attacks::{AttackConfig, CampaignKind};
use hpop_nocdn::attack::{run_campaign, CampaignConfig, CampaignOutcome};

fn cfg(
    peers: usize,
    clients: usize,
    campaign: CampaignKind,
    fraction: f64,
    defense_on: bool,
    lazy: bool,
) -> CampaignConfig {
    CampaignConfig {
        peers,
        honest_clients: clients,
        attack: AttackConfig {
            campaign,
            attacker_fraction: fraction,
            seed: 25,
        },
        defense_on,
        lazy_attacker: lazy,
        seed: 25,
    }
}

fn fmt_profit(out: &CampaignOutcome) -> String {
    if out.attacker_data_work == 0 && out.fabricated_accepted_bytes > 0 {
        "unbounded (zero work)".into()
    } else {
        f2(out.profit_per_work())
    }
}

/// E25a: Sybil-swarm economics across population and swarm size.
pub fn sybil_sweep_table(populations: &[usize], sybil_counts: &[u32]) -> Table {
    let mut t = Table::new(
        "E25a",
        "Sybil swarm: attacker payable bytes vs real work (10% colluding peers)",
        &[
            "peers",
            "sybils/peer",
            "defense",
            "attacker mode",
            "fabricated accepted",
            "accepted bytes",
            "attacker work bytes",
            "payable/work",
        ],
    );
    let m = hpop_obs::metrics();
    let mut growth_min: u64 = 0;
    let mut growth_max: u64 = 0;
    let mut diligent_profit_x1000: u64 = 0;
    for &peers in populations {
        let clients = peers * 2;
        for &sybils in sybil_counts {
            let campaign = CampaignKind::SybilSwarm {
                sybils_per_peer: sybils,
            };
            let arms: [(&str, &str, bool, bool); 3] = [
                ("off", "lazy", false, true),
                ("on", "lazy", true, true),
                ("on", "diligent", true, false),
            ];
            for (defense, mode, on, lazy) in arms {
                let out = run_campaign(&cfg(peers, clients, campaign, 0.10, on, lazy));
                t.push(vec![
                    peers.to_string(),
                    sybils.to_string(),
                    defense.into(),
                    mode.into(),
                    out.fabricated_accepted.to_string(),
                    out.fabricated_accepted_bytes.to_string(),
                    out.attacker_data_work.to_string(),
                    fmt_profit(&out),
                ]);
                // Largest population drives the budgeted counters.
                if peers == *populations.last().expect("non-empty") {
                    if !on {
                        if sybils == sybil_counts[0] {
                            growth_min = out.fabricated_accepted_bytes;
                        }
                        if sybils == *sybil_counts.last().expect("non-empty") {
                            growth_max = out.fabricated_accepted_bytes;
                        }
                    } else if !lazy && sybils == *sybil_counts.last().expect("non-empty") {
                        diligent_profit_x1000 = (out.profit_per_work() * 1000.0) as u64;
                    }
                }
            }
        }
    }
    // Defense off: profit scales with minted identities (the floor
    // asserts at least the swarm-size ratio, demonstrating linear
    // growth). Defense on: the diligent attacker's payable-per-work is
    // pinned (ceiling well under 1.5).
    m.counter("acct.sybil.off.growth_x1000")
        .add(growth_max * 1000 / growth_min.max(1));
    m.counter("acct.sybil.on.profit_per_work_x1000")
        .add(diligent_profit_x1000);
    t
}

/// E25b: campaign × defense matrix at one population.
pub fn campaign_matrix_table(peers: usize) -> Table {
    let campaigns: [(&str, CampaignKind, f64); 4] = [
        (
            "sybil swarm",
            CampaignKind::SybilSwarm { sybils_per_peer: 8 },
            0.10,
        ),
        (
            "collusion at scale",
            CampaignKind::CollusionAtScale {
                fabricated_per_real: 4,
            },
            0.10,
        ),
        (
            "record laundering",
            CampaignKind::RecordLaundering {
                fabricated_fraction_bp: 2_000,
            },
            0.25,
        ),
        (
            "adaptive throttling",
            CampaignKind::Adaptive { headroom_bp: 2_000 },
            0.10,
        ),
    ];
    let mut t = Table::new(
        "E25b",
        format!("campaign x defense matrix ({peers} peers, lazy attacker)"),
        &[
            "campaign",
            "defense",
            "fabricated attempted",
            "accepted",
            "rejected",
            "colluders flagged",
            "honest flagged",
            "confirmed violations",
        ],
    );
    let mut unbacked_accepted_on = 0u64;
    for (name, campaign, fraction) in campaigns {
        for on in [false, true] {
            let out = run_campaign(&cfg(peers, peers * 2, campaign, fraction, on, true));
            t.push(vec![
                name.into(),
                if on { "on" } else { "off" }.into(),
                out.fabricated_attempted.to_string(),
                out.fabricated_accepted.to_string(),
                out.fabricated_rejected.to_string(),
                out.colluders_flagged.to_string(),
                out.honest_flagged.to_string(),
                out.confirmed_violations.to_string(),
            ]);
            if on {
                unbacked_accepted_on += out.fabricated_accepted;
            }
        }
    }
    // Across every campaign, no unbacked record may settle with the
    // defense on.
    hpop_obs::metrics()
        .counter("acct.defense.unbacked_accepted")
        .add(unbacked_accepted_on);
    t
}

/// E25c: what the defense costs honest participants.
pub fn honest_overhead_table(peers: usize, clients: usize) -> Table {
    let mut t = Table::new(
        "E25c",
        format!("honest-path cost of the defense ({peers} peers, {clients} clients, no attacker)"),
        &[
            "defense",
            "honest payable bytes",
            "false rejects",
            "provider verify bytes",
            "verify bytes / payable byte",
        ],
    );
    let no_attack = CampaignKind::SybilSwarm { sybils_per_peer: 0 };
    let mut payable = [0u64; 2];
    let mut false_rejects = 0u64;
    let mut overhead_x1000 = 0u64;
    for (i, on) in [false, true].into_iter().enumerate() {
        let out = run_campaign(&cfg(peers, clients, no_attack, 0.0, on, true));
        payable[i] = out.honest_payable;
        false_rejects += out.honest_false_rejects;
        let ratio = out.provider_verify_bytes as f64 / out.honest_payable.max(1) as f64;
        if on {
            overhead_x1000 = (ratio * 1000.0) as u64;
        }
        t.push(vec![
            if on { "on" } else { "off" }.into(),
            out.honest_payable.to_string(),
            out.honest_false_rejects.to_string(),
            out.provider_verify_bytes.to_string(),
            f2(ratio),
        ]);
    }
    let m = hpop_obs::metrics();
    m.counter("acct.honest.false_rejects").add(false_rejects);
    m.counter("acct.honest.overhead_x1000").add(overhead_x1000);
    // The defense must not change what honest peers are paid.
    m.counter("acct.honest.payable_delta")
        .add(payable[0].abs_diff(payable[1]));
    t
}

/// Full-scale run (the committed `BENCH_accounting.json`).
pub fn run_default() -> Vec<Table> {
    vec![
        sybil_sweep_table(&[20, 50, 100], &[2, 8, 32]),
        campaign_matrix_table(50),
        honest_overhead_table(50, 100),
    ]
}

/// CI smoke preset: same counters and bounds, smaller populations.
pub fn run_smoke() -> Vec<Table> {
    vec![
        sybil_sweep_table(&[20], &[2, 8]),
        campaign_matrix_table(20),
        honest_overhead_table(20, 40),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sybil_growth_is_linear_without_defense() {
        let t = sybil_sweep_table(&[20], &[2, 8]);
        // Defense-off rows: accepted bytes at 8 sybils ≈ 4x at 2.
        let off: Vec<u64> = t
            .rows
            .iter()
            .filter(|r| r[2] == "off")
            .map(|r| r[5].parse().unwrap())
            .collect();
        assert_eq!(off.len(), 2);
        assert_eq!(off[1], off[0] * 4, "linear in minted identities");
        // Defense-on lazy rows earn nothing.
        assert!(t
            .rows
            .iter()
            .filter(|r| r[2] == "on" && r[3] == "lazy")
            .all(|r| r[5] == "0"));
    }

    #[test]
    fn no_campaign_beats_the_puzzle() {
        let t = campaign_matrix_table(20);
        for row in t.rows.iter().filter(|r| r[1] == "on") {
            assert_eq!(row[3], "0", "{} settled unbacked records", row[0]);
            assert_eq!(row[2], row[4], "{}: attempted != rejected", row[0]);
        }
        // Defense off: every campaign extracts something.
        for row in t.rows.iter().filter(|r| r[1] == "off") {
            assert_ne!(row[3], "0", "{} extracted nothing?", row[0]);
        }
    }

    #[test]
    fn honest_path_pays_identically_with_zero_false_rejects() {
        let t = honest_overhead_table(10, 20);
        assert_eq!(t.rows[0][1], t.rows[1][1], "defense changed honest pay");
        assert_eq!(t.rows[0][2], "0");
        assert_eq!(t.rows[1][2], "0");
        // Overhead exists but is bounded (< 2.5 verify bytes/payable).
        let ratio: f64 = t.rows[1][4].parse().unwrap();
        assert!(ratio > 0.0 && ratio < 2.5, "overhead ratio {ratio}");
    }
}
