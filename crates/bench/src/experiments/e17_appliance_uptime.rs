//! E17 (extension) — attic *service* availability under home outages.
//!
//! §IV-A ("Data Availability"): "users could either decide that
//! occasional unavailability is an inherent reality of home utilities —
//! similar to electric power — or add replication mechanisms. For
//! instance, this latter may involve replicating the entire HPoP to
//! attics belonging to friends and relatives."
//!
//! E11 covered *durability* (is the data recoverable); this extension
//! covers *availability* (is the service reachable right now). Each
//! appliance alternates up/down as a renewal process (exponential MTBF /
//! MTTR); a household's attic is available when any of its replicas is
//! up. The simulation is validated against the closed form
//! `1 - (1 - a)^r` with `a = MTBF / (MTBF + MTTR)`.

use crate::table::{f4, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Steady-state availability of one appliance.
fn single_availability(mtbf_h: f64, mttr_h: f64) -> f64 {
    mtbf_h / (mtbf_h + mttr_h)
}

/// Simulates `replicas` independent appliances over `years` and returns
/// the fraction of time at least one was up.
fn simulate(replicas: usize, mtbf_h: f64, mttr_h: f64, years: f64, seed: u64) -> f64 {
    let horizon = years * 365.0 * 24.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut exp = |mean: f64| -> f64 {
        let u: f64 = rng.gen_range(1e-12..1.0);
        -mean * u.ln()
    };
    // Per-replica alternating up/down interval lists, merged by sweep.
    let mut events: Vec<(f64, i32)> = Vec::new(); // (time, +1 up / -1 down)
    for _ in 0..replicas {
        let mut t = 0.0;
        let mut up = true;
        events.push((0.0, 1));
        while t < horizon {
            let dur = if up { exp(mtbf_h) } else { exp(mttr_h) };
            t += dur;
            if t >= horizon {
                break;
            }
            events.push((t, if up { -1 } else { 1 }));
            up = !up;
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut up_count = 0i32;
    let mut last = 0.0;
    let mut available = 0.0;
    for (t, delta) in events {
        if up_count > 0 {
            available += t - last;
        }
        last = t;
        up_count += delta;
    }
    if up_count > 0 {
        available += horizon - last;
    }
    available / horizon
}

/// Runs the MTTR × replication sweep.
pub fn run(years: f64) -> Table {
    let mtbf_h = 30.0 * 24.0; // a home outage (power/ISP/reboot) every ~30 days
    let mut t = Table::new(
        "E17",
        format!("attic service availability: home outages every ~30 days, {years} simulated years"),
        &[
            "repair time",
            "replicas",
            "availability (exact)",
            "availability (simulated)",
            "downtime / year",
        ],
    );
    for mttr_h in [1.0f64, 12.0, 48.0] {
        let a = single_availability(mtbf_h, mttr_h);
        for replicas in [1usize, 2, 3] {
            let exact = 1.0 - (1.0 - a).powi(replicas as i32);
            let sim = simulate(replicas, mtbf_h, mttr_h, years, 7 + replicas as u64);
            let downtime_h = (1.0 - exact) * 365.0 * 24.0;
            let downtime = if downtime_h >= 1.0 {
                format!("{downtime_h:.1}h")
            } else {
                format!("{:.1}min", downtime_h * 60.0)
            };
            t.push(vec![
                format!("{mttr_h:.0}h"),
                replicas.to_string(),
                f4(exact),
                f4(sim),
                downtime,
            ]);
        }
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![run(60.0)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_closed_form() {
        for replicas in [1usize, 2] {
            let exact = 1.0 - (1.0 - single_availability(720.0, 12.0)).powi(replicas as i32);
            let sim = simulate(replicas, 720.0, 12.0, 200.0, 3);
            assert!(
                (sim - exact).abs() < 0.005,
                "r={replicas}: sim {sim} vs exact {exact}"
            );
        }
    }

    #[test]
    fn replication_to_friends_buys_nines() {
        let t = run(20.0);
        // 12h repairs: one appliance ~98.4%; three replicas >99.999%.
        let exact = |row: usize| -> f64 { t.rows[row][2].parse().unwrap() };
        assert!(exact(3) < 0.99); // 12h MTTR, 1 replica
        assert!(exact(5) > 0.9999); // 12h MTTR, 3 replicas
                                    // Availability is monotone in replicas within each MTTR block
                                    // (>= because the table rounds to 4 decimals and the 1h block
                                    // saturates at 1.0000).
        for block in 0..3 {
            for i in 0..2 {
                assert!(exact(block * 3 + i + 1) >= exact(block * 3 + i));
            }
        }
    }

    #[test]
    fn electric_power_analogy_holds_for_fast_repairs() {
        // 1h repairs on a single appliance ≈ 99.86% — the paper's "an
        // inherent reality of home utilities" level.
        let a = single_availability(720.0, 1.0);
        assert!((0.995..0.9999).contains(&a), "{a}");
    }
}
