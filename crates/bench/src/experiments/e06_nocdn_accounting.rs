//! E6 — accurate accounting and collusion detection (§IV-B).
//!
//! "An unscrupulous peer has an incentive to inflate the contribution
//! they report … NoCDN must be able to protect content providers from
//! such behavior" and "a NoCDN peer and a client collude to download
//! content — or claim to download content — for the sole purpose of
//! coaxing payment." Three attacker profiles against the accounting
//! pipeline: record inflation (defeated by HMAC), replayed records
//! (defeated by nonces), and peer/client collusion (surfaced by anomaly
//! scoring).

use crate::table::{f2, Table};
use hpop_crypto::nonce::Nonce;
use hpop_nocdn::accounting::{Accounting, RejectReason, UsageRecord};
use hpop_nocdn::loader::PageLoader;
use hpop_nocdn::origin::{ContentProvider, PageSpec};
use hpop_nocdn::peer::{NoCdnPeer, PeerBehavior, PeerId};
use hpop_nocdn::select::{PeerDirectory, PeerInfo, SelectionPolicy};
use hpop_nocdn::wrapper::WrapperPage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const MASTER: [u8; 32] = [42u8; 32];

/// Scenario A: honest + inflating peers through the full pipeline.
pub fn inflation_table(views: usize) -> Table {
    let mut origin = ContentProvider::new("news.example");
    origin.put_object("/index.html", vec![b'h'; 10_000]);
    origin.put_object("/a.bin", vec![b'x'; 90_000]);
    origin.put_page(PageSpec {
        container: "/index.html".into(),
        embedded: vec!["/a.bin".into()],
    });
    let objects = vec!["/index.html".to_owned(), "/a.bin".to_owned()];
    let mut peer_map: BTreeMap<PeerId, NoCdnPeer> = BTreeMap::new();
    peer_map.insert(PeerId(0), NoCdnPeer::new(PeerId(0)));
    peer_map.insert(
        PeerId(1),
        NoCdnPeer::with_behavior(PeerId(1), PeerBehavior::InflatesUsage(10)),
    );
    let mut dir = PeerDirectory::new();
    dir.recruit(PeerId(0), PeerInfo::default());
    dir.recruit(PeerId(1), PeerInfo::default());
    let mut rng = StdRng::seed_from_u64(2);
    let mut acct = Accounting::new();
    let mut ground_truth: BTreeMap<PeerId, u64> = BTreeMap::new();
    for client in 0..views {
        let assignments = dir.assign(&objects, SelectionPolicy::RoundRobin, &mut rng);
        let wrapper = WrapperPage::generate(
            &mut origin,
            "/index.html",
            client as u64,
            &assignments,
            &mut acct,
            &MASTER,
            false,
        );
        let mut loader = PageLoader::new(client as u64);
        let (report, _) = loader.load(&wrapper, &mut peer_map, &mut origin);
        for (&p, &b) in &report.bytes_from_peers {
            *ground_truth.entry(PeerId(p)).or_default() += b;
        }
    }
    let mut claimed: BTreeMap<PeerId, u64> = BTreeMap::new();
    for (_, peer) in peer_map.iter_mut() {
        for record in peer.upload_records() {
            *claimed.entry(record.peer).or_default() += record.bytes;
            let _ = acct.settle(&record);
        }
    }
    let mut t = Table::new(
        "E6a",
        format!("usage-record inflation ({views} page views, peer 1 inflates 10x)"),
        &["peer", "actually served", "claimed", "paid", "rejections"],
    );
    for p in [PeerId(0), PeerId(1)] {
        t.push(vec![
            format!("peer {}{}", p.0, if p.0 == 1 { " (inflating)" } else { "" }),
            ground_truth.get(&p).copied().unwrap_or(0).to_string(),
            claimed.get(&p).copied().unwrap_or(0).to_string(),
            acct.payable_bytes(p).to_string(),
            acct.rejection_count(p).to_string(),
        ]);
    }
    t
}

/// Scenario B: replay and forgery attempts, by defense layer.
pub fn replay_table() -> Table {
    let mut acct = Accounting::new();
    let key = acct.issue(1, PeerId(0), 100_000, &MASTER);
    let record = UsageRecord::sign(&key, PeerId(0), 1, 90_000, 3, Nonce(1));
    let first = acct.settle(&record);
    let replay = acct.settle(&record);
    let mut forged = record.clone();
    forged.bytes = 99_999;
    let forge = acct.settle(&forged);
    let overclaim = UsageRecord::sign(&key, PeerId(0), 1, 200_000, 3, Nonce(2));
    let over = acct.settle(&overclaim);
    let unknown = UsageRecord::sign(&key, PeerId(9), 5, 10, 1, Nonce(3));
    let unk = acct.settle(&unknown);

    let fmt = |r: Result<(), RejectReason>| match r {
        Ok(()) => "accepted".to_owned(),
        Err(e) => format!("rejected ({e:?})"),
    };
    let mut t = Table::new("E6b", "accounting defense layers", &["attack", "outcome"]);
    t.push(vec!["honest record".into(), fmt(first)]);
    t.push(vec!["replayed record".into(), fmt(replay)]);
    t.push(vec!["bytes altered after signing".into(), fmt(forge)]);
    t.push(vec!["claim above issued work".into(), fmt(over)]);
    t.push(vec!["record without issuance".into(), fmt(unk)]);
    t
}

/// Scenario C: collusion anomaly scores.
pub fn collusion_table(honest_peers: u32) -> Table {
    let mut acct = Accounting::new();
    // Honest population: realistic mixed workloads, ~40% of issued work.
    let mut rng = StdRng::seed_from_u64(4);
    use rand::Rng;
    let mut nonce = 0u64;
    for p in 0..honest_peers {
        for c in 0..20u64 {
            nonce += 1;
            let client = c * 1000 + p as u64;
            let max = 100_000;
            let used = rng.gen_range(20_000..60_000);
            let key = acct.issue(client, PeerId(p), max, &MASTER);
            let r = UsageRecord::sign(&key, PeerId(p), client, used, 3, Nonce(nonce as u128));
            acct.settle(&r).expect("honest records settle");
        }
    }
    // The colluding clique: claims the full issued work every time.
    let colluder = PeerId(honest_peers);
    for c in 0..60u64 {
        nonce += 1;
        let client = 900_000 + c;
        let key = acct.issue(client, colluder, 100_000, &MASTER);
        let r = UsageRecord::sign(&key, colluder, client, 100_000, 3, Nonce(nonce as u128));
        acct.settle(&r)
            .expect("collusion is cryptographically valid");
    }
    let scores = acct.anomaly_scores();
    let flagged = acct.flag_anomalies(2.0);
    let mut t = Table::new(
        "E6c",
        format!("collusion anomaly scores ({honest_peers} honest peers + 1 colluding clique)"),
        &["peer", "score (vs trimmed baseline)", "flagged (>2.0)"],
    );
    for (p, s) in scores {
        let is_colluder = p == colluder;
        let label = if is_colluder {
            format!("peer {} (colluding)", p.0)
        } else {
            format!("peer {}", p.0)
        };
        t.push(vec![
            label,
            f2(s),
            if flagged.contains(&p) { "YES" } else { "no" }.into(),
        ]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![inflation_table(200), replay_table(), collusion_table(8)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflating_peer_earns_nothing() {
        let t = inflation_table(50);
        // peer 1 row: claimed 10x served, paid 0.
        let served: u64 = t.rows[1][1].parse().unwrap();
        let claimed: u64 = t.rows[1][2].parse().unwrap();
        let paid: u64 = t.rows[1][3].parse().unwrap();
        assert_eq!(claimed, served * 10);
        assert_eq!(paid, 0);
        // honest peer is paid exactly what it served.
        let h_served: u64 = t.rows[0][1].parse().unwrap();
        let h_paid: u64 = t.rows[0][3].parse().unwrap();
        assert_eq!(h_served, h_paid);
    }

    #[test]
    fn all_defense_layers_fire() {
        let t = replay_table();
        assert!(t.rows[0][1].contains("accepted"));
        assert!(t.rows[1][1].contains("Replay"));
        assert!(t.rows[2][1].contains("BadSignature"));
        assert!(t.rows[3][1].contains("ExceedsIssuedWork"));
        assert!(t.rows[4][1].contains("UnknownIssuance"));
    }

    #[test]
    fn only_the_colluder_is_flagged() {
        let t = collusion_table(8);
        let flagged: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[2] == "YES").collect();
        assert_eq!(flagged.len(), 1);
        assert!(flagged[0][0].contains("colluding"));
    }
}
