//! E13 — Internet@home prefetch aggressiveness (§IV-D).
//!
//! "We can decrease the number of requests going to the Internet by
//! either reducing the scope of the content gathered … or by decreasing
//! the frequency of content pre-validation." Train a household profile
//! on 30 days of synthetic browsing, sweep scope × freshness, and
//! report the planner's predicted hit rate against an empirical replay
//! of the next day's visits, plus the upstream load each plan costs.

use crate::table::{f2, pct, Table};
use hpop_http::url::Url;
use hpop_internet_home::history::HistoryProfile;
use hpop_internet_home::prefetch::{ObjectMeta, PrefetchConfig, PrefetchPlanner};
use hpop_netsim::time::SimDuration;
use hpop_workloads::diurnal::DiurnalCurve;
use hpop_workloads::zipf::WebUniverse;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn object_url(universe_path: &str) -> Url {
    Url::https("web.example", universe_path)
}

/// Builds (profile, planner, universe) from `days` of training visits.
fn train(
    days: u64,
    visits_per_day: usize,
    seed: u64,
) -> (HistoryProfile, PrefetchPlanner, WebUniverse, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let universe = WebUniverse::generate(2000, 1.0, 80_000, &mut rng);
    let curve = DiurnalCurve::residential();
    let mut profile = HistoryProfile::new();
    let mut planner = PrefetchPlanner::new();
    for o in universe.objects() {
        planner.register(
            object_url(&o.path),
            ObjectMeta {
                bytes: o.bytes,
                ttl: SimDuration::from_secs(o.ttl_secs),
            },
        );
    }
    for day in 0..days {
        for _ in 0..visits_per_day {
            let obj = universe.sample(&mut rng);
            let at = curve.sample_time(day, &mut rng);
            profile.record_visit(&object_url(&obj.path), at);
        }
    }
    (profile, planner, universe, rng)
}

/// Runs the scope × freshness sweep.
pub fn run(training_days: u64, visits_per_day: usize) -> Table {
    let (profile, planner, universe, mut rng) = train(training_days, visits_per_day, 21);
    let mut t = Table::new(
        "E13",
        format!(
            "prefetch scope vs freshness ({training_days} days training, {visits_per_day} visits/day)"
        ),
        &[
            "scope (objects)",
            "freshness",
            "predicted hit rate",
            "empirical hit rate",
            "upstream req/h",
            "upstream MB/h",
            "storage MB",
        ],
    );
    // One shared next-day visit sample for the empirical column.
    let tomorrow: Vec<usize> = (0..visits_per_day)
        .map(|_| universe.sample_rank(&mut rng))
        .collect();
    for scope in [10usize, 50, 200, 1000] {
        for freshness in [1.0f64, 2.0, 4.0] {
            let plan = planner.plan(
                &profile,
                PrefetchConfig {
                    scope,
                    freshness_factor: freshness,
                },
            );
            let covered: BTreeSet<&Url> = plan.entries.iter().map(|(u, _)| u).collect();
            let fresh_fraction = 1.0 / freshness;
            let hits: f64 = tomorrow
                .iter()
                .filter(|&&rank| covered.contains(&object_url(&universe.object(rank).path)))
                .count() as f64
                * fresh_fraction;
            let empirical = hits / tomorrow.len() as f64;
            t.push(vec![
                scope.to_string(),
                format!("{freshness:.0}x ttl"),
                pct(plan.expected_hit_rate),
                pct(empirical),
                f2(plan.upstream_requests_per_hour),
                f2(plan.upstream_bytes_per_hour / 1e6),
                f2(plan.storage_bytes as f64 / 1e6),
            ]);
        }
    }
    t
}

/// The perceived-latency view: a fresh local hit is served at LAN speed
/// (~1 ms) instead of a WAN fetch (~100 ms at CCZ scale for a small
/// object), so mean page latency falls with the hit rate.
pub fn latency_table(training_days: u64, visits_per_day: usize) -> Table {
    let (profile, planner, _, _) = train(training_days, visits_per_day, 22);
    let lan_ms = 1.0;
    let wan_ms = 120.0;
    let mut t = Table::new(
        "E13b",
        "mean perceived object latency vs prefetch scope (fresh hits at LAN speed)",
        &[
            "scope",
            "hit rate",
            "mean latency (ms)",
            "speedup vs no prefetch",
        ],
    );
    for scope in [1usize, 10, 50, 200, 1000] {
        let plan = planner.plan(
            &profile,
            PrefetchConfig {
                scope,
                freshness_factor: 1.0,
            },
        );
        let h = plan.expected_hit_rate;
        let mean = h * lan_ms + (1.0 - h) * wan_ms;
        t.push(vec![
            scope.to_string(),
            pct(h),
            f2(mean),
            format!("{:.2}x", wan_ms / mean),
        ]);
    }
    t
}

/// Event-driven validation: actually run the plan in a
/// [`hpop_internet_home::executor::PrefetchExecutor`] over `days` of
/// simulated operation against a churning origin, and measure the hit
/// rate and the upstream split between cheap `304`s and full `200`s.
pub fn executor_table(training_days: u64, visits_per_day: usize, days: u64) -> Table {
    use hpop_internet_home::executor::{PrefetchExecutor, SimulatedOrigin};
    use hpop_workloads::diurnal::DiurnalCurve;

    let (profile, planner, universe, mut rng) = train(training_days, visits_per_day, 23);
    let curve = DiurnalCurve::residential();
    let mut t = Table::new(
        "E13c",
        format!("event-driven execution over {days} days (origin content churns)"),
        &[
            "scope",
            "fresh hit rate",
            "refreshes",
            "  of which 304",
            "origin bytes (MB)",
        ],
    );
    for scope in [10usize, 200, 1000] {
        let mut origin = SimulatedOrigin::new();
        for o in universe.objects() {
            origin.publish(
                object_url(&o.path),
                o.bytes,
                SimDuration::from_secs(o.ttl_secs),
                // Content changes at ~3x its TTL: most refreshes 304.
                SimDuration::from_secs(o.ttl_secs * 3),
            );
        }
        let plan = planner.plan(
            &profile,
            PrefetchConfig {
                scope,
                freshness_factor: 1.0,
            },
        );
        let mut exec = PrefetchExecutor::new(1 << 30);
        exec.install(&plan, hpop_netsim::time::SimTime::ZERO);
        for day in 0..days {
            // Refresh loop every 10 minutes.
            for tick in 0..(24 * 6) {
                let now = hpop_netsim::time::SimTime::from_secs(day * 86_400 + tick * 600);
                exec.run_due_refreshes(&mut origin, now);
            }
            // The household browses.
            for _ in 0..visits_per_day {
                let rank = universe.sample_rank(&mut rng);
                let at = curve.sample_time(day, &mut rng);
                exec.user_request(&object_url(&universe.object(rank).path), &mut origin, at);
            }
        }
        let s = exec.stats();
        t.push(vec![
            scope.to_string(),
            pct(s.fresh_hit_rate()),
            s.refreshes.to_string(),
            s.refresh_304.to_string(),
            f2(origin.bytes_served as f64 / 1e6),
        ]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![
        run(30, 300),
        latency_table(30, 300),
        executor_table(30, 300, 5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_and_empirical_hit_rates_agree() {
        let t = run(20, 200);
        for row in &t.rows {
            let predicted: f64 = row[2].trim_end_matches('%').parse().unwrap();
            let empirical: f64 = row[3].trim_end_matches('%').parse().unwrap();
            // Prediction conditions on revisiting *known* sites, so it
            // is optimistic by the never-seen-object mass of tomorrow's
            // sample; it must stay within 25 points and never be worse.
            assert!(
                predicted >= empirical - 5.0 && predicted - empirical < 25.0,
                "scope {} freshness {}: predicted {predicted}% vs empirical {empirical}%",
                row[0],
                row[1]
            );
        }
    }

    #[test]
    fn scope_freshness_tradeoff_shape() {
        let t = run(20, 200);
        // Same freshness, growing scope ⇒ hit rate and load both rise.
        let row = |scope: &str, fresh: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == scope && r[1] == fresh)
                .unwrap()
        };
        let hr = |r: &Vec<String>| -> f64 { r[2].trim_end_matches('%').parse().unwrap() };
        let load = |r: &Vec<String>| -> f64 { r[4].parse().unwrap() };
        assert!(hr(row("1000", "1x ttl")) > hr(row("10", "1x ttl")));
        assert!(load(row("1000", "1x ttl")) > load(row("10", "1x ttl")));
        // Same scope, relaxed freshness ⇒ load halves, hit rate halves.
        let tight = row("200", "1x ttl");
        let loose = row("200", "2x ttl");
        assert!((load(loose) - load(tight) / 2.0).abs() < 0.5);
        assert!(hr(loose) < hr(tight));
    }

    #[test]
    fn executor_hit_rate_tracks_planner_prediction() {
        let planned = run(15, 150);
        let executed = executor_table(15, 150, 3);
        // Scope 200 @ 1x ttl: event-driven fresh-hit rate within 15
        // points of the planner's prediction. (User requests outside
        // freshness windows revalidate rather than hit.)
        let predicted: f64 = planned
            .rows
            .iter()
            .find(|r| r[0] == "200" && r[1] == "1x ttl")
            .unwrap()[2]
            .trim_end_matches('%')
            .parse()
            .unwrap();
        let measured: f64 = executed.rows.iter().find(|r| r[0] == "200").unwrap()[1]
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(
            (predicted - measured).abs() < 15.0,
            "planner {predicted}% vs executor {measured}%"
        );
    }

    #[test]
    fn executor_refreshes_are_mostly_304s() {
        let t = executor_table(10, 100, 3);
        for row in &t.rows {
            let refreshes: f64 = row[2].parse().unwrap();
            let r304: f64 = row[3].parse().unwrap();
            assert!(
                r304 / refreshes > 0.5,
                "scope {}: only {}/{} refreshes were 304",
                row[0],
                r304,
                refreshes
            );
        }
    }

    #[test]
    fn latency_improves_with_scope() {
        let t = latency_table(20, 200);
        let first: f64 = t.rows[0][2].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert!(last < first, "{first} -> {last}");
    }
}
