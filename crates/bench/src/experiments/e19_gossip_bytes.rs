//! E19 — gossip dissemination cost: delta piggybacking vs full sync.
//!
//! The fabric's legacy anti-entropy shipped both full membership tables
//! on every contact, so gossip cost grew as O(n²·rounds) bytes. The
//! delta path piggybacks only *changed* records on ping/ack (bounded to
//! λ·⌈log₂ n⌉ retransmits each) and falls back to compact digests on a
//! slow timer. This experiment quantifies the difference under the
//! paper churn preset:
//!
//! - **E19a** — total gossip bytes at n ∈ {32, 64, 100, 128, 256},
//!   split into delta and digest traffic, with the reduction factor
//!   over full sync.
//! - **E19b** — failure-detection quality at n = 100 in both modes:
//!   the byte savings must not cost accuracy (target: zero false
//!   positives, no scoring exemptions). The p99 columns are not
//!   apples-to-apples: latency is scored per *local* declaration from
//!   the subject's original down time, so delta's tail is dominated by
//!   rejoining observers catching up on old deaths via the bootstrap
//!   digest, while full-sync rejoiners merge those deaths as
//!   already-`Dead` and score nothing (see EXPERIMENTS.md E19b).
//! - **E19c** — `gf256::mul_slice` throughput against the scalar
//!   per-byte loop it replaced in Reed–Solomon encode/reconstruct.

use crate::table::{f2, Table};
use hpop_erasure::gf256;
use hpop_fabric::{Advertisement, Fabric, FabricConfig, GossipMode, PeerId};
use hpop_netsim::churn::{ChurnConfig, ChurnSchedule};
use hpop_netsim::time::SimTime;
use std::hint::black_box;
use std::time::Instant;

/// Byte and latency outcome of one mode under one churn schedule.
pub struct GossipCost {
    /// Total gossip bytes shipped (all message kinds).
    pub total_bytes: u64,
    /// Bytes of piggybacked delta records (delta mode only).
    pub delta_bytes: u64,
    /// Bytes of digest anti-entropy traffic (delta mode only).
    pub digest_bytes: u64,
    /// Digest sync exchanges performed.
    pub digest_syncs: u64,
    /// True dead declarations.
    pub detections: u64,
    /// Declarations against genuinely-up peers.
    pub false_positives: u64,
    /// 99th-percentile detection latency, milliseconds.
    pub p99_ms: f64,
}

/// Drives an `n`-node fabric in `mode` against the paper churn preset
/// for `horizon_secs` sim-seconds and returns its gossip cost.
pub fn run_mode(n: usize, mode: GossipMode, horizon_secs: u64, seed: u64) -> GossipCost {
    let horizon = SimTime::from_secs(horizon_secs);
    let churn = ChurnSchedule::generate(n, ChurnConfig::paper_preset(seed), horizon);
    let mut fabric = Fabric::new(FabricConfig {
        mode,
        seed: seed ^ 0xe19,
        ..FabricConfig::default()
    });
    for i in 0..n {
        fabric.join(Advertisement {
            rtt_ms: 2.0 + (i % 11) as f64 * 4.0,
            ..Advertisement::default()
        });
    }
    let mut events = Vec::new();
    for s in 0..horizon_secs {
        churn.transitions_into(
            SimTime::from_secs(s),
            SimTime::from_secs(s + 1),
            &mut events,
        );
        for ev in &events {
            fabric.set_up(PeerId(ev.node as u64), ev.up);
        }
        fabric.tick();
    }
    let stats = fabric.stats();
    let mut lat = stats.detection_latency_ms.clone();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99 = if lat.is_empty() {
        0.0
    } else {
        let idx = ((lat.len() as f64 - 1.0) * 0.99).round() as usize;
        lat[idx.min(lat.len() - 1)]
    };
    GossipCost {
        total_bytes: stats.gossip_bytes,
        delta_bytes: stats.delta_bytes,
        digest_bytes: stats.digest_bytes,
        digest_syncs: stats.digest_syncs,
        detections: stats.true_detections,
        false_positives: stats.false_positives,
        p99_ms: p99,
    }
}

/// E19a: bytes shipped per mode across neighborhood sizes.
pub fn bytes_table(sizes: &[usize], horizon_secs: u64) -> Table {
    let mut t = Table::new(
        "E19a",
        format!("gossip bytes, full sync vs delta piggyback ({horizon_secs} sim-s, paper churn)"),
        &[
            "nodes",
            "full-sync MB",
            "delta MB",
            "of which digest MB",
            "digest syncs",
            "reduction",
        ],
    );
    for &n in sizes {
        let full = run_mode(n, GossipMode::FullSync, horizon_secs, 0xe19);
        let delta = run_mode(n, GossipMode::Delta, horizon_secs, 0xe19);
        let reduction = full.total_bytes as f64 / (delta.total_bytes.max(1)) as f64;
        t.push(vec![
            n.to_string(),
            f2(full.total_bytes as f64 / 1e6),
            f2(delta.total_bytes as f64 / 1e6),
            f2(delta.digest_bytes as f64 / 1e6),
            delta.digest_syncs.to_string(),
            format!("{reduction:.0}x"),
        ]);
    }
    t
}

/// E19b: detection quality must survive the byte diet.
pub fn detection_table(n: usize, horizon_secs: u64) -> Table {
    let mut t = Table::new(
        "E19b",
        format!("failure detection, full sync vs delta ({n} peers, {horizon_secs} sim-s)"),
        &[
            "mode",
            "detections",
            "false positives",
            "p99 detect latency (s)",
            "p99 vs full sync",
        ],
    );
    let full = run_mode(n, GossipMode::FullSync, horizon_secs, 0xe19);
    let delta = run_mode(n, GossipMode::Delta, horizon_secs, 0xe19);
    for (label, r) in [("full-sync", &full), ("delta", &delta)] {
        t.push(vec![
            label.to_string(),
            r.detections.to_string(),
            r.false_positives.to_string(),
            f2(r.p99_ms / 1e3),
            format!("{:.2}x", r.p99_ms / full.p99_ms.max(1e-9)),
        ]);
    }
    t
}

/// E19c: `gf256::mul_slice` throughput vs the scalar loop it replaced.
pub fn gf256_table() -> Table {
    let mut t = Table::new(
        "E19c",
        "GF(256) multiply-accumulate throughput (1 MiB slice)",
        &["kernel", "MB/s"],
    );
    const LEN: usize = 1 << 20;
    let src: Vec<u8> = (0..LEN).map(|i| (i * 31 + 7) as u8).collect();
    let mut dst = vec![0u8; LEN];
    let coefs = [0x53u8, 0x80, 0xb6, 0x1d];

    let reps = 16u32;
    let start = Instant::now();
    for r in 0..reps {
        let coef = coefs[r as usize % coefs.len()];
        for (o, &b) in dst.iter_mut().zip(src.iter()) {
            *o = gf256::add(*o, gf256::mul(coef, b));
        }
    }
    black_box(&dst);
    let scalar_s = start.elapsed().as_secs_f64();

    dst.fill(0);
    let start = Instant::now();
    for r in 0..reps {
        gf256::mul_slice(coefs[r as usize % coefs.len()], &src, &mut dst);
    }
    black_box(&dst);
    let slice_s = start.elapsed().as_secs_f64();

    let mb = (LEN as f64 * reps as f64) / 1e6;
    t.push(vec!["scalar mul+add".into(), f2(mb / scalar_s)]);
    t.push(vec!["mul_slice".into(), f2(mb / slice_s)]);
    t
}

/// Default-scale run (the `exp_gossip_bytes` binary). The byte sweep
/// uses a short horizon so the O(n²) full-sync baseline at n = 256
/// stays tractable; the detection comparison runs longer at the paper's
/// n = 100 so the latency percentiles have enough kills behind them.
pub fn run_default() -> Vec<Table> {
    vec![
        bytes_table(&[32, 64, 100, 128, 256], 600),
        detection_table(100, 1800),
        gf256_table(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_cuts_bytes_by_an_order_of_magnitude_even_small() {
        let full = run_mode(24, GossipMode::FullSync, 300, 7);
        let delta = run_mode(24, GossipMode::Delta, 300, 7);
        assert!(
            delta.total_bytes * 10 < full.total_bytes,
            "delta {} vs full {}",
            delta.total_bytes,
            full.total_bytes
        );
        // The split accounting adds up inside the total.
        assert!(delta.delta_bytes + delta.digest_bytes <= delta.total_bytes);
        assert!(delta.digest_syncs > 0, "digest fallback must run");
    }

    #[test]
    fn both_modes_detect_without_false_positives() {
        for mode in [GossipMode::FullSync, GossipMode::Delta] {
            let r = run_mode(24, mode, 600, 7);
            assert!(r.detections > 0, "{mode:?} made no detections");
            assert_eq!(r.false_positives, 0, "{mode:?} false positives");
        }
    }

    #[test]
    fn mul_slice_table_reports_both_kernels() {
        let t = gf256_table();
        assert_eq!(t.len(), 2);
    }
}
