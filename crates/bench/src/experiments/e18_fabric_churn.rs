//! E18 — fabric gossip membership under churn.
//!
//! The shared fabric layer (SWIM-style gossip + phi-accrual failure
//! detection) is what lets every service survive peer churn: dead peers
//! are evicted from `PeerView`s and in-flight work retries against
//! survivors. This experiment drives a neighborhood fabric with the
//! paper-preset churn schedule (25% of peers cycling, mean session 10
//! sim-minutes, mean downtime 2 sim-minutes) and measures:
//!
//! - failure-detection latency (down-transition → first `Dead`
//!   declaration) and false positives;
//! - gossip anti-entropy cost in bytes;
//! - NoCDN delivery success when each request selects its serving peer
//!   through the observer's `PeerView` and retries failed attempts
//!   against the next-ranked survivor.

use crate::table::{f2, pct, Table};
use hpop_fabric::{Advertisement, Fabric, FabricConfig, PeerId, RankBy};
use hpop_netsim::churn::{ChurnConfig, ChurnSchedule};
use hpop_netsim::time::SimTime;
use std::collections::BTreeSet;

/// Outcome of one fabric-under-churn run.
pub struct ChurnRunResult {
    /// Peers in the neighborhood.
    pub nodes: usize,
    /// Peers the schedule cycles on/off.
    pub churners: usize,
    /// Delivery attempts made through the observer's view.
    pub deliveries: u64,
    /// Deliveries that succeeded on the first selected peer.
    pub first_try: u64,
    /// Deliveries that succeeded only after >= 1 retry.
    pub after_retry: u64,
    /// Deliveries that exhausted the retry budget.
    pub failed: u64,
    /// Retry attempts performed in total.
    pub retries: u64,
    /// True `Dead` declarations across all observers.
    pub detections: u64,
    /// Declarations against peers that were actually up. Scored with
    /// no rejoin-window exemption: a declaration landing after its
    /// subject rejoined counts here.
    pub false_positives: u64,
    /// Median detection latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile detection latency, milliseconds.
    pub p99_ms: f64,
    /// Anti-entropy bytes shipped.
    pub gossip_bytes: u64,
}

impl ChurnRunResult {
    /// Fraction of deliveries that reached an up peer.
    pub fn success_rate(&self) -> f64 {
        if self.deliveries == 0 {
            return 0.0;
        }
        (self.first_try + self.after_retry) as f64 / self.deliveries as f64
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Sim-time window for the detect-latency SLO series (one minute).
const DETECT_WINDOW_US: u64 = 60_000_000;

/// Ceiling on any single failure-detection latency: the committed run's
/// p99 sits at 6 s, so 10 s flags a real detector regression without
/// tripping on the preset's normal tail.
pub const DETECT_CEILING_MS: u64 = 10_000;

/// Drives `n` fabric nodes against the paper churn preset for
/// `horizon_secs` sim-seconds. Every `delivery_every` seconds a
/// never-churning observer serves one NoCDN request: it picks the
/// closest peer from its `PeerView` and, on failure (ground truth says
/// that peer is down), retries against the next-ranked survivor up to
/// `retry_budget` times.
///
/// With `observed` set, each detection latency is also recorded into
/// the global `fabric.detect.latency_ms` time series (keyed to the sim
/// second it was declared) and a [`hpop_obs::SloMonitor`] evaluates the
/// [`DETECT_CEILING_MS`] ceiling continuously; breach windows land in
/// the snapshot and in `slo.breach.windows`. Only one run per process
/// should observe — the series is global and the mixes share sim time.
pub fn run_churn(
    n: usize,
    horizon_secs: u64,
    delivery_every: u64,
    retry_budget: u32,
    seed: u64,
    observed: bool,
) -> ChurnRunResult {
    let horizon = SimTime::from_secs(horizon_secs);
    let churn = ChurnSchedule::generate(n, ChurnConfig::paper_preset(seed), horizon);
    let mut fabric = Fabric::new(FabricConfig {
        seed: seed ^ 0xfab,
        ..FabricConfig::default()
    });
    for i in 0..n {
        fabric.join(Advertisement {
            rtt_ms: 2.0 + (i % 11) as f64 * 4.0,
            ..Advertisement::default()
        });
    }
    // The provider-side observer: a peer the schedule never cycles.
    let observer = (0..n)
        .find(|&i| churn.uptime_fraction(i, horizon) >= 1.0)
        .map(|i| PeerId(i as u64))
        .expect("paper preset leaves 75% of peers stable");

    let metrics = hpop_obs::metrics();
    let detect_series = observed
        .then(|| hpop_obs::series_registry().series("fabric.detect.latency_ms", DETECT_WINDOW_US));
    let mut slo = observed.then(|| {
        let mut m = hpop_obs::SloMonitor::new(hpop_obs::series_registry().clone());
        m.add(hpop_obs::SloSpec {
            name: "fabric.detect-latency".into(),
            kind: hpop_obs::SloKind::MaxCeiling {
                series: "fabric.detect.latency_ms".into(),
                ceiling: DETECT_CEILING_MS,
            },
        });
        m
    });
    let mut seen_detections = 0usize;
    let mut deliveries = 0u64;
    let mut first_try = 0u64;
    let mut after_retry = 0u64;
    let mut failed = 0u64;
    let mut retries = 0u64;

    let mut events = Vec::new();
    for s in 0..horizon_secs {
        let from = SimTime::from_secs(s);
        let to = SimTime::from_secs(s + 1);
        churn.transitions_into(from, to, &mut events);
        for ev in &events {
            fabric.set_up(PeerId(ev.node as u64), ev.up);
        }
        fabric.tick();

        if let Some(series) = &detect_series {
            let lats = &fabric.stats().detection_latency_ms;
            for l in &lats[seen_detections..] {
                series.record(to.as_nanos() / 1_000, *l as u64);
            }
            seen_detections = lats.len();
            if let Some(m) = &mut slo {
                m.poll(to.as_nanos() / 1_000);
            }
        }

        if s % delivery_every != 0 {
            continue;
        }
        // One NoCDN page view routed through the observer's view: 8
        // objects spread over the 8 closest believed-alive peers (the
        // proximity window), each failed object retried against the
        // next-ranked survivor.
        let view = fabric.view(observer);
        let mut not_me = BTreeSet::new();
        not_me.insert(observer);
        let ranked = view.select(usize::MAX, RankBy::Locality, &not_me);
        let window = ranked.len().min(8);
        for obj in 0..8usize {
            deliveries += 1;
            if window == 0 {
                failed += 1;
                metrics.counter("nocdn.delivery.failure").incr();
                continue;
            }
            let mut tried: BTreeSet<PeerId> = BTreeSet::new();
            let mut peer = ranked[obj % window];
            let mut attempt = 0u32;
            loop {
                if fabric.is_up(peer) {
                    if attempt == 0 {
                        first_try += 1;
                    } else {
                        after_retry += 1;
                    }
                    metrics.counter("nocdn.delivery.success").incr();
                    break;
                }
                tried.insert(peer);
                if attempt >= retry_budget {
                    failed += 1;
                    metrics.counter("nocdn.delivery.failure").incr();
                    break;
                }
                // Next-ranked survivor the view still believes alive.
                let Some(&next) = ranked.iter().find(|p| !tried.contains(p)) else {
                    failed += 1;
                    metrics.counter("nocdn.delivery.failure").incr();
                    break;
                };
                peer = next;
                attempt += 1;
                retries += 1;
                metrics.counter("nocdn.delivery.retry").incr();
            }
        }
    }

    if let Some(mut m) = slo {
        m.finish(horizon.as_nanos() / 1_000);
        metrics
            .counter("slo.breach.windows")
            .add(m.breaches().len() as u64);
        metrics
            .counter("slo.windows.evaluated")
            .add(m.windows_evaluated());
        crate::harness::stash_slo_breaches(m.breaches().to_vec());
    }

    let stats = fabric.stats();
    let mut lat = stats.detection_latency_ms.clone();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ChurnRunResult {
        nodes: n,
        churners: churn.churner_count(),
        deliveries,
        first_try,
        after_retry,
        failed,
        retries,
        detections: stats.true_detections,
        false_positives: stats.false_positives,
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        gossip_bytes: stats.gossip_bytes,
    }
}

/// Failure-detection quality under the paper churn preset.
pub fn detection_table(n: usize, horizon_secs: u64) -> Table {
    let mut t = Table::new(
        "E18a",
        format!("fabric failure detection under churn ({n} peers, {horizon_secs} sim-s)"),
        &[
            "churners",
            "dead declarations",
            "false positives",
            "p50 detect latency (ms)",
            "p99 detect latency (ms)",
            "gossip MB",
        ],
    );
    let r = run_churn(n, horizon_secs, 5, 3, 0xc2a, true);
    t.push(vec![
        format!("{}/{}", r.churners, r.nodes),
        r.detections.to_string(),
        r.false_positives.to_string(),
        f2(r.p50_ms),
        f2(r.p99_ms),
        f2(r.gossip_bytes as f64 / 1e6),
    ]);
    t
}

/// NoCDN delivery success vs retry budget: retries routed through the
/// observer's `PeerView` turn churn-induced failures into survivals.
pub fn delivery_table(n: usize, horizon_secs: u64) -> Table {
    let mut t = Table::new(
        "E18b",
        format!("NoCDN delivery under churn vs PeerView retry budget ({n} peers)"),
        &[
            "retry budget",
            "deliveries",
            "first-try",
            "after retry",
            "failed",
            "success rate",
        ],
    );
    for budget in [0u32, 1, 3] {
        let r = run_churn(n, horizon_secs, 5, budget, 0xc2a, false);
        t.push(vec![
            budget.to_string(),
            r.deliveries.to_string(),
            r.first_try.to_string(),
            r.after_retry.to_string(),
            r.failed.to_string(),
            pct(r.success_rate()),
        ]);
    }
    t
}

/// Default-scale run (the `exp_fabric_churn` binary).
pub fn run_default() -> Vec<Table> {
    vec![detection_table(40, 3600), delivery_table(40, 3600)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_success_exceeds_99_percent_with_retries() {
        let r = run_churn(24, 1200, 5, 3, 0xc2a, false);
        assert!(r.deliveries >= 200);
        assert!(
            r.success_rate() >= 0.99,
            "success {:.4} (first {}, retry {}, failed {})",
            r.success_rate(),
            r.first_try,
            r.after_retry,
            r.failed
        );
    }

    #[test]
    fn retries_recover_what_first_tries_lose() {
        let none = run_churn(24, 1200, 5, 0, 0xc2a, false);
        let some = run_churn(24, 1200, 5, 3, 0xc2a, false);
        assert!(some.success_rate() >= none.success_rate());
        // The schedule does churn, so the detector has work to do.
        assert!(some.detections > 0);
        assert!(some.p99_ms >= some.p50_ms);
        assert!(some.p50_ms > 0.0);
    }

    /// Regression: the detector used to need a "rejoin window"
    /// exemption for declarations landing just after their subject
    /// rejoined. The rejoin broadcast plus incarnation persistence
    /// removed the window at its source, so false positives must now
    /// be zero with *no* exemption in the scoring.
    #[test]
    fn false_positives_are_zero_without_rejoin_exemption() {
        let r = run_churn(40, 1800, 60, 0, 0xc2a, false);
        assert_eq!(r.false_positives, 0);
        assert!(r.detections > 0, "churn must exercise the detector");
    }

    #[test]
    fn gossip_cost_is_accounted() {
        let r = run_churn(12, 300, 10, 1, 7, false);
        assert!(r.gossip_bytes > 0);
        assert_eq!(r.churners, 3, "25% of 12 peers cycle");
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[5.0], 0.99), 5.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!(percentile(&v, 0.0) <= percentile(&v, 1.0));
    }
}
