//! E1 — CCZ link-utilization replication (§II, citing the CCZ study).
//!
//! Paper claim: "CCZ users only exceed a download rate of 10 Mbps 0.1%
//! of the time and a 0.5 Mbps upload rate 1% of the time" — i.e.
//! gigabit homes almost never use their capacity. We replay synthetic
//! residential sessions through the CCZ topology with event-driven TCP
//! and build the per-home-per-second rate CDF the study reports.

use crate::table::{f4, pct, Table};
use hpop_netsim::metrics::Cdf;
use hpop_netsim::netsim::NetSim;
use hpop_netsim::presets::{ccz, CczParams};
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_transport::conn::{TcpStats, TcpTransfer};
use hpop_transport::tcp::TcpConfig;
use hpop_workloads::traffic::{Direction, SessionTraffic, TrafficParams};
use hpop_workloads::zipf::WebUniverse;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Homes in the neighborhood.
    pub homes: usize,
    /// Observation window.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            homes: 60,
            duration: SimDuration::from_secs(1800),
            seed: 1,
        }
    }
}

/// Completed-transfer log entry.
struct Done {
    home: usize,
    dir: Direction,
    stats: TcpStats,
}

/// Runs the experiment.
pub fn run(p: Params) -> Table {
    let net = ccz(&CczParams {
        homes: p.homes,
        ..CczParams::default()
    });
    let mut sim = NetSim::with_topology(net.topology.clone());
    let mut rng = StdRng::seed_from_u64(p.seed);
    let universe = WebUniverse::generate(2000, 1.0, 60_000, &mut rng);
    let flows = SessionTraffic::new(TrafficParams::default())
        .generate(p.homes, p.duration, &universe, &mut rng);
    let done: Rc<RefCell<Vec<Done>>> = Rc::new(RefCell::new(Vec::new()));
    for (i, f) in flows.iter().enumerate() {
        let (src, dst) = match f.direction {
            Direction::Down => (net.server, net.homes[f.home]),
            Direction::Up => (net.homes[f.home], net.server),
        };
        let home = f.home;
        let dir = f.direction;
        let d2 = done.clone();
        let bytes = f.bytes;
        let seed = p.seed.wrapping_add(i as u64);
        sim.schedule_at(f.at, move |sim| {
            TcpTransfer::launch(
                sim,
                src,
                dst,
                bytes,
                TcpConfig::default(),
                seed,
                move |_, stats| {
                    d2.borrow_mut().push(Done { home, dir, stats });
                },
            );
        });
    }
    sim.run_until(SimTime::ZERO + p.duration);

    // Per-home-per-second achieved rates: spread each transfer's bytes
    // over its active seconds (the study's per-second rate samples).
    let secs = (p.duration.as_secs_f64()) as usize;
    let mut down = vec![vec![0f64; secs]; p.homes];
    let mut up = vec![vec![0f64; secs]; p.homes];
    for d in done.borrow().iter() {
        let s0 = d.stats.started_at.as_secs_f64() as usize;
        let s1 = (d.stats.completed_at.as_secs_f64().ceil() as usize).max(s0 + 1);
        let span = (s1 - s0) as f64;
        let per_sec = d.stats.bytes as f64 / span;
        let lane = match d.dir {
            Direction::Down => &mut down[d.home],
            Direction::Up => &mut up[d.home],
        };
        for slot in lane.iter_mut().take(s1.min(secs)).skip(s0) {
            *slot += per_sec;
        }
    }
    let mut down_cdf = Cdf::new();
    let mut up_cdf = Cdf::new();
    for h in 0..p.homes {
        for s in 0..secs {
            down_cdf.push(down[h][s] * 8.0); // bits per second
            up_cdf.push(up[h][s] * 8.0);
        }
    }

    let mut t = Table::new(
        "E1",
        format!(
            "CCZ per-second utilization ({} homes x {}, gigabit FTTH)",
            p.homes, p.duration
        ),
        &["metric", "paper", "measured", "median (Mbps)", "p99 (Mbps)"],
    );
    t.push(vec![
        "download secs > 10 Mbps".into(),
        "0.10%".into(),
        pct(down_cdf.fraction_above(10e6)),
        f4(down_cdf.median().unwrap_or(0.0) / 1e6),
        f4(down_cdf.quantile(0.99).unwrap_or(0.0) / 1e6),
    ]);
    t.push(vec![
        "upload secs > 0.5 Mbps".into(),
        "1.00%".into(),
        pct(up_cdf.fraction_above(0.5e6)),
        f4(up_cdf.median().unwrap_or(0.0) / 1e6),
        f4(up_cdf.quantile(0.99).unwrap_or(0.0) / 1e6),
    ]);
    t.push(vec![
        "download secs > 100 Mbps".into(),
        "~0%".into(),
        pct(down_cdf.fraction_above(100e6)),
        String::new(),
        String::new(),
    ]);
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![run(Params::default())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_rare_like_the_paper_says() {
        let t = run(Params {
            homes: 10,
            duration: SimDuration::from_secs(600),
            seed: 3,
        });
        assert_eq!(t.len(), 3);
        // "measured" column of row 0: fraction of >10Mbps download secs.
        let measured: f64 = t.rows[0][2].trim_end_matches('%').parse().unwrap();
        assert!(measured < 5.0, "busy fraction {measured}% is not rare");
        let measured_up: f64 = t.rows[1][2].trim_end_matches('%').parse().unwrap();
        assert!(measured_up < 10.0, "upload busy {measured_up}%");
    }

    #[test]
    fn deterministic() {
        let p = Params {
            homes: 5,
            duration: SimDuration::from_secs(300),
            seed: 9,
        };
        assert_eq!(run(p).rows, run(p).rows);
    }
}
