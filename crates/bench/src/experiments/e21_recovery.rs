//! E21 — recovery: crash-consistent durability across the stack.
//!
//! Three legs, all on deterministic counters (no wall clock), so the
//! committed `BENCH_recovery.json` is byte-identical across `--stable`
//! runs:
//!
//! - **E21a** — recovery cost vs snapshot cadence: how many WAL ops a
//!   restart replays, and how many bytes it reads off the device, as a
//!   function of `snapshot_every_ops` over a fixed workload.
//! - **E21b** — settlement durability under the E20 chaos preset: the
//!   same crash schedule that drives the chaos experiment power-cuts
//!   NoCDN providers mid-I/O. After every recovery each acked
//!   settlement is re-uploaded and must bounce as a replay.
//! - **E21c** — fabric rejoin without the detector exemption: graceful
//!   leaves, amnesiac crashes, and crashes with a persisted
//!   [`IncarnationStore`] all reconverge with zero false positives —
//!   there is no "rejoin window" to excuse anymore.
//!
//! Headline counters (enforced by `check_snapshot --budget`):
//!
//! - `recovery.committed.survived_bp >= 10000` — every acked settlement
//!   survives every crash (basis points; 10000 = 100%).
//! - `recovery.replayed_nonce.accepted <= 0` — a recovered provider
//!   never double-credits a replayed record.
//! - `recovery.fabric.false_positives <= 0` — rejoins across all three
//!   modes score no detector false positives.
//! - `recovery.replay.ops` / `recovery.replay.bytes` — ceilings on the
//!   replay work of the snapshot-cadence-256 recovery leg.

use crate::experiments::e20_chaos::standard_mixes;
use crate::table::Table;
use hpop_crypto::nonce::Nonce;
use hpop_durability::codec::{ByteReader, ByteWriter};
use hpop_durability::{DurabilityConfig, Durable, Persistent};
use hpop_fabric::{Advertisement, Fabric, FabricConfig, IncarnationStore};
use hpop_netsim::faults::{FaultPlan, PeerMode};
use hpop_netsim::storage::SimDisk;
use hpop_netsim::time::SimTime;
use hpop_nocdn::accounting::RejectReason;
use hpop_nocdn::durable::DurableAccounting;
use hpop_nocdn::peer::PeerId as NoCdnPeerId;
use hpop_nocdn::UsageRecord;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------- E21a

/// Minimal keyed-counter service: just enough state for the recovery
/// machine to have something to snapshot and replay, with op and
/// snapshot sizes that are easy to reason about.
#[derive(Clone, Debug, Default)]
struct KvState {
    map: BTreeMap<u64, u64>,
}

impl Durable for KvState {
    fn fresh() -> KvState {
        KvState::default()
    }

    fn encode_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.map.len() as u64);
        for (k, v) in &self.map {
            w.u64(*k).u64(*v);
        }
        w.into_bytes()
    }

    fn decode_state(bytes: &[u8]) -> Option<KvState> {
        let mut r = ByteReader::new(bytes);
        let n = r.u64()?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let k = r.u64()?;
            map.insert(k, r.u64()?);
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(KvState { map })
    }

    fn apply(&mut self, op: &[u8]) {
        let mut r = ByteReader::new(op);
        if let (Some(k), Some(v)) = (r.u64(), r.u64()) {
            self.map.insert(k, v);
        }
    }
}

/// What one clean-shutdown-free restart cost at a given cadence.
pub struct ReplayCost {
    /// `snapshot_every_ops` used for the run (0 = never snapshot).
    pub snapshot_every: u64,
    /// Ops committed before the power cut.
    pub ops: u64,
    /// `through_seq` of the snapshot recovery started from.
    pub snapshot_through: u64,
    /// Committed WAL ops replayed on top of it.
    pub ops_replayed: u64,
    /// Bytes read off the device during recovery.
    pub bytes_read: u64,
}

/// Commits `ops` keyed-counter writes at the given snapshot cadence,
/// cuts power, restarts, and reports what recovery had to do.
pub fn replay_cost(ops: u64, snapshot_every: u64, seed: u64) -> ReplayCost {
    let cfg = DurabilityConfig {
        snapshot_every_ops: snapshot_every,
        ..DurabilityConfig::default()
    };
    let mut store: Persistent<KvState> =
        Persistent::open(SimDisk::new(seed), "kv", cfg).expect("fresh open");
    for i in 0..ops {
        let mut w = ByteWriter::new();
        w.u64(i % 97).u64(i);
        store.execute(&w.into_bytes()).expect("no faults armed");
    }
    let mut disk = store.into_disk();
    disk.restart();
    let store: Persistent<KvState> = Persistent::open(disk, "kv", cfg).expect("recovery");
    let rec = store.last_recovery();
    ReplayCost {
        snapshot_every,
        ops,
        snapshot_through: rec.snapshot_through,
        ops_replayed: rec.ops_replayed,
        bytes_read: rec.bytes_read,
    }
}

/// E21a — replay work after a restart, per snapshot cadence. The
/// cadence-256 row publishes the budget-enforced `recovery.replay.*`
/// ceilings.
pub fn replay_cost_table(ops: u64, seed: u64) -> Table {
    let mut t = Table::new(
        "E21a",
        format!("recovery replay cost vs snapshot cadence ({ops} committed ops)"),
        &[
            "snapshot every",
            "ops",
            "snapshot seq",
            "ops replayed",
            "recovery bytes read",
        ],
    );
    let metrics = hpop_obs::metrics();
    for every in [0u64, 64, 256, 1024] {
        let r = replay_cost(ops, every, seed);
        if every == 256 {
            metrics.counter("recovery.replay.ops").add(r.ops_replayed);
            metrics.counter("recovery.replay.bytes").add(r.bytes_read);
        }
        t.push(vec![
            if every == 0 {
                "never".into()
            } else {
                every.to_string()
            },
            r.ops.to_string(),
            r.snapshot_through.to_string(),
            r.ops_replayed.to_string(),
            r.bytes_read.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------- E21b

/// One provider appliance: a live accounting process, or powered-off
/// platters waiting for the crash window to end.
enum Slot {
    Up(Box<DurableAccounting>),
    Down(SimDisk),
}

/// Outcome of one settlement-durability run (one fault mix).
#[derive(Clone, Debug, Default)]
pub struct SettleChaosResult {
    /// Settlements acked (`execute` returned `Ok`) before any crash.
    pub acked: u64,
    /// Power cuts taken mid-I/O.
    pub crashes: u64,
    /// Recoveries (crash windows that ended inside the horizon).
    pub recoveries: u64,
    /// Replay probes: acked records re-uploaded after a recovery.
    pub probes: u64,
    /// Probes correctly bounced as [`RejectReason::Replay`].
    pub replays_rejected: u64,
    /// Probes *accepted* — a double credit. Must stay zero.
    pub replays_accepted: u64,
    /// Probes bounced for any other reason (lost issuance state).
    pub other_rejects: u64,
    /// Recoveries whose payable-bytes totals disagreed with the acked
    /// history. Must stay zero.
    pub payable_mismatches: u64,
    /// WAL ops replayed across all recoveries.
    pub replay_ops: u64,
    /// Bytes read off devices across all recoveries.
    pub replay_bytes: u64,
}

impl SettleChaosResult {
    /// Acked-settlement survival in basis points (10000 = 100%): the
    /// fraction of replay probes that were correctly rejected. Vacuously
    /// 10000 when the mix produced no recoveries to probe.
    pub fn survived_bp(&self) -> u64 {
        if self.probes == 0 {
            return 10_000;
        }
        self.replays_rejected * 10_000 / self.probes
    }
}

/// Drives `n` durable accounting providers for `secs` sim-seconds under
/// `plan`'s crash schedule. Every second each up provider issues a
/// short-term key and settles one signed usage record (acked = durable).
/// When the plan crashes a node, power is cut *mid-append* — the armed
/// [`SimDisk`] tears whatever I/O step is in flight. When the window
/// ends the provider recovers and every previously acked record is
/// re-uploaded: each must bounce as a replay, and per-peer payable
/// bytes must match the acked history exactly.
///
/// When `headline` is set the run publishes the budget-enforced
/// `recovery.committed.survived_bp` and `recovery.replayed_nonce.accepted`
/// counters — only one mix per process may claim them.
pub fn run_settlement_chaos(
    n: usize,
    secs: u64,
    plan: &FaultPlan,
    seed: u64,
    headline: bool,
) -> SettleChaosResult {
    const MASTER: [u8; 32] = [0x5e; 32];
    let cfg = DurabilityConfig {
        max_segment_bytes: 16 * 1024,
        snapshot_every_ops: 128,
        keep_snapshots: 2,
    };
    let mut slots: Vec<Slot> = (0..n)
        .map(|i| {
            let disk = SimDisk::new(seed.wrapping_add(i as u64).wrapping_mul(0x9e37));
            Slot::Up(Box::new(
                DurableAccounting::open(disk, "acct", cfg).expect("fresh open"),
            ))
        })
        .collect();
    let mut acked: Vec<Vec<UsageRecord>> = vec![Vec::new(); n];
    let mut expected: Vec<BTreeMap<NoCdnPeerId, u64>> = vec![BTreeMap::new(); n];
    let mut res = SettleChaosResult::default();
    // Continuous SLO: payable-bytes mismatches found during recoveries
    // must sum to zero in every closed window, evaluated as sim time
    // advances — not just once at the end. Only the headline mix feeds
    // the (global) series so the three mixes' overlapping sim clocks
    // don't pollute each other.
    const SLO_WINDOW_US: u64 = 60_000_000;
    let mismatch_series = headline
        .then(|| hpop_obs::series_registry().series("recovery.payable.mismatch", SLO_WINDOW_US));
    let mut slo = headline.then(|| {
        let mut m = hpop_obs::SloMonitor::new(hpop_obs::series_registry().clone());
        m.add(hpop_obs::SloSpec {
            name: "recovery.payable-mismatch".into(),
            kind: hpop_obs::SloKind::ZeroSum {
                series: "recovery.payable.mismatch".into(),
            },
        });
        m
    });
    // Clients used for the ops a power cut tears away, kept disjoint
    // from the workload's so a committed-but-unacked issuance (legal:
    // at most one per crash) can never skew the payable accounting.
    let mut torn_client = u64::MAX;

    for t in 0..secs {
        let now = SimTime::from_secs(t);
        for node in 0..n {
            let crashed = plan.peer_mode(node, now) == PeerMode::Crashed;
            match (&mut slots[node], crashed) {
                (Slot::Up(acct), true) => {
                    // Power cut: arm the device a few steps ahead (the
                    // offset walks the crash point across the WAL
                    // append / commit / snapshot I/O sequence) and keep
                    // issuing into it until an op tears.
                    let at = acct.disk().steps() + 1 + t % 5;
                    acct.disk_mut().arm_crash(at);
                    let peer = NoCdnPeerId((t % 3) as u32 + 1);
                    while acct.issue(torn_client, peer, 1, &MASTER).is_ok() {
                        torn_client -= 1;
                    }
                    res.crashes += 1;
                    let slot = std::mem::replace(&mut slots[node], Slot::Down(SimDisk::new(0)));
                    let Slot::Up(acct) = slot else { unreachable!() };
                    slots[node] = Slot::Down(acct.into_disk());
                }
                (Slot::Down(_), false) => {
                    let slot = std::mem::replace(&mut slots[node], Slot::Down(SimDisk::new(0)));
                    let Slot::Down(mut disk) = slot else {
                        unreachable!()
                    };
                    disk.restart();
                    let mut acct =
                        Box::new(DurableAccounting::open(disk, "acct", cfg).expect("recovery"));
                    res.recoveries += 1;
                    res.replay_ops += acct.last_recovery().ops_replayed;
                    res.replay_bytes += acct.last_recovery().bytes_read;
                    // Every record this provider ever acked is
                    // re-uploaded — the at-most-once contract says each
                    // must bounce as a replay, never double-credit.
                    for rec in &acked[node] {
                        res.probes += 1;
                        match acct.settle(rec).expect("no fault armed during probe") {
                            Err(RejectReason::Replay) => res.replays_rejected += 1,
                            Ok(()) => res.replays_accepted += 1,
                            Err(_) => res.other_rejects += 1,
                        }
                    }
                    let intact = expected[node]
                        .iter()
                        .all(|(peer, want)| acct.accounting().payable_bytes(*peer) == *want);
                    if !intact {
                        res.payable_mismatches += 1;
                    }
                    if let Some(s) = &mismatch_series {
                        s.record(now.as_nanos() / 1_000, u64::from(!intact));
                    }
                    slots[node] = Slot::Up(acct);
                }
                (Slot::Up(acct), false) => {
                    // Normal service: one issuance + one settlement.
                    let client = ((node as u64) << 32) | t;
                    let peer = NoCdnPeerId((t % 3) as u32 + 1);
                    let bytes = 600 + (t % 5) * 100;
                    let key = acct.issue(client, peer, bytes, &MASTER).expect("up disk");
                    let rec =
                        UsageRecord::sign(&key, peer, client, bytes, 1, Nonce(client as u128));
                    let verdict = acct.settle(&rec).expect("up disk");
                    assert_eq!(verdict, Ok(()), "fresh nonce within issued work");
                    res.acked += 1;
                    acked[node].push(rec);
                    *expected[node].entry(peer).or_insert(0) += bytes;
                }
                (Slot::Down(_), true) => {}
            }
        }
        if let Some(m) = &mut slo {
            m.poll(SimTime::from_secs(t + 1).as_nanos() / 1_000);
        }
    }

    if headline {
        let metrics = hpop_obs::metrics();
        metrics
            .counter("recovery.committed.survived_bp")
            .add(res.survived_bp());
        metrics
            .counter("recovery.replayed_nonce.accepted")
            .add(res.replays_accepted);
        metrics.counter("recovery.settle.probes").add(res.probes);
        if let Some(mut m) = slo {
            m.finish(SimTime::from_secs(secs).as_nanos() / 1_000);
            metrics
                .counter("slo.breach.windows")
                .add(m.breaches().len() as u64);
            metrics
                .counter("slo.windows.evaluated")
                .add(m.windows_evaluated());
            crate::harness::stash_slo_breaches(m.breaches().to_vec());
        }
    }
    res
}

/// E21b — settlement durability per fault mix (the E20 mixes: quiet
/// baseline, crash/restart schedule, full chaos preset). The chaos row
/// claims the budget-enforced headline counters.
pub fn settlement_table(n: usize, secs: u64, seed: u64) -> Table {
    let mut t = Table::new(
        "E21b",
        format!("settlement durability under power cuts ({n} providers, {secs} s)"),
        &[
            "fault mix",
            "acked",
            "crashes",
            "recoveries",
            "replay probes",
            "replays accepted",
            "survived (bp)",
            "payable mismatches",
            "replayed ops",
            "recovery bytes",
        ],
    );
    let horizon = SimTime::from_secs(secs);
    for m in standard_mixes(n, horizon, seed) {
        let r = run_settlement_chaos(n, secs, &m.plan, seed, m.name == "chaos");
        t.push(vec![
            m.name.to_string(),
            r.acked.to_string(),
            r.crashes.to_string(),
            r.recoveries.to_string(),
            r.probes.to_string(),
            r.replays_accepted.to_string(),
            r.survived_bp().to_string(),
            r.payable_mismatches.to_string(),
            r.replay_ops.to_string(),
            r.replay_bytes.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------- E21c

/// How the victim node leaves and returns in the fabric leg.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejoinMode {
    /// Clean down/up: the node keeps its in-memory incarnation.
    Graceful,
    /// [`Fabric::crash`] with no store: full amnesia, recovery rides on
    /// the rejoin bootstrap digest + self-defense bump alone.
    CrashAmnesia,
    /// [`Fabric::crash`] with an attached [`IncarnationStore`]: the
    /// persisted incarnation lets the node rejoin above every stale
    /// death certificate immediately. The store itself is power-cycled
    /// mid-run to prove the NVRAM survives too.
    CrashPersisted,
}

impl RejoinMode {
    fn label(self) -> &'static str {
        match self {
            RejoinMode::Graceful => "graceful leave",
            RejoinMode::CrashAmnesia => "crash (amnesia)",
            RejoinMode::CrashPersisted => "crash (persisted inc)",
        }
    }
}

/// Outcome of one fabric-rejoin run.
pub struct FabricRecoveryResult {
    /// Down/up cycles driven.
    pub cycles: u32,
    /// Death declarations matching real downtime.
    pub true_detections: u64,
    /// Declarations against an up peer — must stay zero, with no
    /// rejoin-window exemption to hide behind.
    pub false_positives: u64,
    /// Every up node ends agreeing on the full membership.
    pub converged: bool,
    /// The victim's incarnation as the rest of the fabric sees it.
    pub victim_incarnation: u64,
}

/// Cycles one victim node down and back `cycles` times in an
/// `n`-appliance fabric, using `mode`'s leave/return semantics, and
/// reports detector accuracy.
pub fn run_fabric_recovery(
    n: usize,
    cycles: u32,
    mode: RejoinMode,
    seed: u64,
) -> FabricRecoveryResult {
    let mut f = Fabric::new(FabricConfig {
        seed,
        ..FabricConfig::default()
    });
    for i in 0..n {
        f.join(Advertisement {
            rtt_ms: 2.0 + (i % 5) as f64 * 3.0,
            ..Advertisement::default()
        });
    }
    if mode == RejoinMode::CrashPersisted {
        let store = IncarnationStore::open(
            SimDisk::new(seed ^ 0x1c),
            "inc",
            DurabilityConfig::default(),
        )
        .expect("fresh store");
        f.attach_incarnation_store(store);
    }
    f.run_rounds(20);
    let victim = hpop_fabric::PeerId((n / 2) as u64);
    for c in 0..cycles {
        match mode {
            RejoinMode::Graceful => f.set_up(victim, false),
            _ => f.crash(victim),
        }
        f.run_rounds(30);
        if mode == RejoinMode::CrashPersisted && c == cycles / 2 {
            // Power-cycle the NVRAM itself: the persisted incarnations
            // must come back off the platters.
            let store = f.take_incarnation_store().expect("attached above");
            let mut disk = store.into_disk();
            disk.restart();
            let store = IncarnationStore::open(disk, "inc", DurabilityConfig::default())
                .expect("store recovery");
            f.attach_incarnation_store(store);
        }
        f.set_up(victim, true);
        f.run_rounds(10);
    }
    f.run_rounds(20);

    let truth: BTreeSet<hpop_fabric::PeerId> =
        (0..n).map(|i| hpop_fabric::PeerId(i as u64)).collect();
    let converged = f
        .alive_sets_of_up_nodes()
        .iter()
        .all(|(_, alive)| alive == &truth);
    let victim_incarnation = f
        .alive_incarnations(hpop_fabric::PeerId(0))
        .get(&victim)
        .copied()
        .unwrap_or(0);
    FabricRecoveryResult {
        cycles,
        true_detections: f.stats().true_detections,
        false_positives: f.stats().false_positives,
        converged,
        victim_incarnation,
    }
}

/// E21c — detector accuracy across rejoin modes. All three rows feed
/// the budget-enforced `recovery.fabric.false_positives` counter.
pub fn fabric_table(n: usize, cycles: u32, seed: u64) -> Table {
    let mut t = Table::new(
        "E21c",
        format!("fabric rejoin accuracy without the rejoin-window exemption ({n} nodes, {cycles} cycles)"),
        &[
            "rejoin mode",
            "cycles",
            "true detections",
            "false positives",
            "converged",
            "victim incarnation",
        ],
    );
    let metrics = hpop_obs::metrics();
    for mode in [
        RejoinMode::Graceful,
        RejoinMode::CrashAmnesia,
        RejoinMode::CrashPersisted,
    ] {
        let r = run_fabric_recovery(n, cycles, mode, seed);
        metrics
            .counter("recovery.fabric.false_positives")
            .add(r.false_positives);
        metrics
            .counter("recovery.fabric.true_detections")
            .add(r.true_detections);
        t.push(vec![
            mode.label().to_string(),
            r.cycles.to_string(),
            r.true_detections.to_string(),
            r.false_positives.to_string(),
            if r.converged { "yes" } else { "NO" }.to_string(),
            r.victim_incarnation.to_string(),
        ]);
    }
    t
}

/// Default-scale run (the `exp_recovery` binary, committed artifact).
pub fn run_default() -> Vec<Table> {
    vec![
        replay_cost_table(2000, 0xe21d),
        settlement_table(10, 600, 0xe21d),
        fabric_table(16, 12, 0xe21d),
    ]
}

/// Reduced scale for CI smoke runs.
pub fn run_smoke() -> Vec<Table> {
    vec![
        replay_cost_table(200, 0xe21d),
        settlement_table(6, 150, 0xe21d),
        fabric_table(8, 4, 0xe21d),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_netsim::faults::FaultConfig;

    #[test]
    fn replay_cost_shrinks_with_snapshot_cadence() {
        let never = replay_cost(500, 0, 3);
        assert_eq!(never.ops_replayed, 500, "no snapshot: replay everything");
        assert_eq!(never.snapshot_through, 0);
        let often = replay_cost(500, 64, 3);
        assert!(often.snapshot_through > 0);
        assert!(often.ops_replayed < 64);
        assert!(often.bytes_read < never.bytes_read);
    }

    /// The committed-artifact scale: the chaos preset actually crashes
    /// providers, every acked settlement survives, and no replayed
    /// nonce is ever double-credited.
    #[test]
    fn settlement_survives_the_chaos_preset() {
        let plan = FaultPlan::generate(
            10,
            FaultConfig::chaos_preset(0xe21d),
            SimTime::from_secs(600),
        );
        let r = run_settlement_chaos(10, 600, &plan, 0xe21d, false);
        assert!(r.crashes > 0, "chaos preset must power-cut providers");
        assert!(r.recoveries > 0, "crash windows must end inside horizon");
        assert!(r.probes > 0, "recoveries must probe acked records");
        assert_eq!(r.replays_accepted, 0, "double credit");
        assert_eq!(r.other_rejects, 0, "lost issuance state");
        assert_eq!(r.payable_mismatches, 0);
        assert_eq!(r.survived_bp(), 10_000);
    }

    #[test]
    fn settlement_chaos_is_deterministic() {
        let plan = FaultPlan::generate(
            6,
            FaultConfig::chaos_preset(0x5eed),
            SimTime::from_secs(150),
        );
        let a = run_settlement_chaos(6, 150, &plan, 0x5eed, false);
        let b = run_settlement_chaos(6, 150, &plan, 0x5eed, false);
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.replay_bytes, b.replay_bytes);
    }

    /// Replay at scale: thousands of settled records survive a power
    /// cut, and the recovered NonceRegistry bounces the *entire* acked
    /// history — replayed three full passes — without double-crediting
    /// a byte. Settle is idempotent across repeated recovery, not just
    /// for the single probe pass the chaos run performs.
    #[test]
    fn nonce_registry_replay_at_scale_is_idempotent() {
        const MASTER: [u8; 32] = [0x1d; 32];
        const RECORDS: u64 = 2_000;
        let cfg = DurabilityConfig {
            max_segment_bytes: 64 * 1024,
            snapshot_every_ops: 256,
            keep_snapshots: 2,
        };
        let disk = SimDisk::new(0x5ca1e);
        let mut acct = DurableAccounting::open(disk, "acct", cfg).expect("fresh open");
        let mut acked = Vec::new();
        for i in 0..RECORDS {
            let peer = NoCdnPeerId((i % 7) as u32);
            let bytes = 500 + i % 900;
            let key = acct.issue(i, peer, bytes, &MASTER).expect("issue");
            let rec = UsageRecord::sign(&key, peer, i, bytes, 1, Nonce(i as u128));
            assert_eq!(acct.settle(&rec).expect("settle"), Ok(()));
            acked.push(rec);
        }
        let payable: Vec<u64> = (0..7)
            .map(|p| acct.accounting().payable_bytes(NoCdnPeerId(p)))
            .collect();

        // Two crash/recover cycles; after each, the full history is
        // replayed multiple times.
        for cycle in 0..2 {
            let mut disk = acct.into_disk();
            disk.restart();
            acct = DurableAccounting::open(disk, "acct", cfg).expect("recovery");
            for pass in 0..3 {
                for rec in &acked {
                    assert_eq!(
                        acct.settle(rec).expect("probe"),
                        Err(RejectReason::Replay),
                        "cycle {cycle} pass {pass} double-credited"
                    );
                }
            }
            for (p, want) in payable.iter().enumerate() {
                assert_eq!(
                    acct.accounting().payable_bytes(NoCdnPeerId(p as u32)),
                    *want,
                    "cycle {cycle}: payable drifted for peer {p}"
                );
            }
        }
    }

    #[test]
    fn all_rejoin_modes_are_false_positive_free() {
        for mode in [
            RejoinMode::Graceful,
            RejoinMode::CrashAmnesia,
            RejoinMode::CrashPersisted,
        ] {
            let r = run_fabric_recovery(10, 4, mode, 0xfab);
            assert_eq!(r.false_positives, 0, "{mode:?} scored a false positive");
            assert!(r.true_detections > 0, "{mode:?} downtime went undetected");
            assert!(r.converged, "{mode:?} failed to reconverge");
            assert!(r.victim_incarnation >= 4, "{mode:?} incarnation too low");
        }
    }
}
