//! The per-experiment implementations (DESIGN.md index E1–E26).

pub mod e01_ccz_utilization;
pub mod e02_tcp_rampup;
pub mod e03_bottleneck_shift;
pub mod e04_nocdn_offload;
pub mod e05_nocdn_integrity;
pub mod e06_nocdn_accounting;
pub mod e07_nocdn_chunking;
pub mod e08_dcol_detour;
pub mod e09_dcol_steering;
pub mod e10_tunnel_tradeoff;
pub mod e11_attic_availability;
pub mod e12_attic_consistency;
pub mod e13_ihome_prefetch;
pub mod e14_ihome_smoothing;
pub mod e15_coop_cache;
pub mod e16_nat_traversal;
pub mod e17_appliance_uptime;
pub mod e18_fabric_churn;
pub mod e19_gossip_bytes;
pub mod e20_chaos;
pub mod e21_recovery;
pub mod e22_trace_attribution;
pub mod e23_attic_webdav;
pub mod e24_scale;
pub mod e25_accounting_attacks;
pub mod e26_overload;

use crate::table::Table;

/// Runs every experiment at its default scale, in index order.
pub fn run_all() -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(e01_ccz_utilization::run_default());
    out.extend(e02_tcp_rampup::run_default());
    out.extend(e03_bottleneck_shift::run_default());
    out.extend(e04_nocdn_offload::run_default());
    out.extend(e05_nocdn_integrity::run_default());
    out.extend(e06_nocdn_accounting::run_default());
    out.extend(e07_nocdn_chunking::run_default());
    out.extend(e08_dcol_detour::run_default());
    out.extend(e09_dcol_steering::run_default());
    out.extend(e10_tunnel_tradeoff::run_default());
    out.extend(e11_attic_availability::run_default());
    out.extend(e12_attic_consistency::run_default());
    out.extend(e13_ihome_prefetch::run_default());
    out.extend(e14_ihome_smoothing::run_default());
    out.extend(e15_coop_cache::run_default());
    out.extend(e16_nat_traversal::run_default());
    out.extend(e17_appliance_uptime::run_default());
    out.extend(e18_fabric_churn::run_default());
    out.extend(e19_gossip_bytes::run_default());
    out.extend(e20_chaos::run_default());
    out.extend(e21_recovery::run_default());
    // E22's overhead leg wall-clocks the chaos workload; inside the
    // aggregate run it stays pinned (stable) so `exp_all` output is
    // deterministic and the run doesn't triple the chaos leg's cost.
    out.extend(e22_trace_attribution::run_default(
        &crate::harness::ExpOptions {
            stable: true,
            ..crate::harness::ExpOptions::default()
        },
    ));
    // E23's throughput columns wall-clock the daemon; inside the
    // aggregate run they stay pinned (stable) for determinism.
    out.extend(e23_attic_webdav::run_default(&crate::harness::ExpOptions {
        stable: true,
        ..crate::harness::ExpOptions::default()
    }));
    // E24 is deliberately absent: its columns are wall-clock throughput
    // measurements with no meaningful pinned form, and the full sweep
    // simulates a million-home city. It runs only via `exp_scale`
    // (`--smoke` for the CI preset).
    out.extend(e25_accounting_attacks::run_default());
    // E26 is deliberately absent: its full form drives two 100k-home
    // cities through a 150-second tick loop, which would dominate the
    // aggregate run. It runs only via `exp_overload` (`--smoke` for
    // the CI preset; both forms are deterministic).
    out
}
