//! E11 — attic backup availability (§IV-A "Data Availability").
//!
//! "This latter may involve replicating the entire HPoP to attics
//! belonging to friends and relatives, or redundantly encoding the
//! contents — e.g., using erasure codes — and storing pieces with a
//! variety of peers." Closed-form availability across peer-failure
//! probabilities and schemes, cross-checked by Monte-Carlo restores of
//! actual encrypted [`hpop_attic::backup::BackupSet`]s.

use crate::table::{f4, Table};
use hpop_attic::backup::{BackupPlan, BackupSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEY: [u8; 32] = [5u8; 32];

/// Monte-Carlo availability: `trials` random loss patterns at peer
/// failure probability `p`.
fn monte_carlo(plan: BackupPlan, p: f64, trials: u32, seed: u64) -> f64 {
    let blob: Vec<u8> = (0..4096u32).map(|i| (i % 256) as u8).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ok = 0u32;
    for _ in 0..trials {
        let mut set = BackupSet::create(&blob, &KEY, "mc", plan).expect("valid plan");
        for peer in 0..plan.peers() {
            if rng.gen::<f64>() < p {
                set.lose_peer(peer);
            }
        }
        if set.restore(&KEY, "mc").map(|b| b == blob).unwrap_or(false) {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

/// The scheme-comparison sweep.
pub fn run(trials: u32) -> Table {
    let plans: [(&str, BackupPlan); 5] = [
        ("replicate x2", BackupPlan::Replication { copies: 2 }),
        ("replicate x3", BackupPlan::Replication { copies: 3 }),
        ("RS(6,4)", BackupPlan::Erasure { data: 4, parity: 2 }),
        ("RS(10,8)", BackupPlan::Erasure { data: 8, parity: 2 }),
        ("RS(12,8)", BackupPlan::Erasure { data: 8, parity: 4 }),
    ];
    let mut t = Table::new(
        "E11",
        format!("backup availability vs peer failure probability ({trials} Monte-Carlo trials)"),
        &[
            "scheme",
            "overhead",
            "p=0.01 (exact)",
            "p=0.05 (exact)",
            "p=0.20 (exact)",
            "p=0.20 (MC)",
            "p=0.50 (exact)",
        ],
    );
    for (i, (name, plan)) in plans.iter().enumerate() {
        t.push(vec![
            name.to_string(),
            format!("{:.2}x", plan.overhead()),
            f4(plan.availability(0.01)),
            f4(plan.availability(0.05)),
            f4(plan.availability(0.20)),
            f4(monte_carlo(*plan, 0.20, trials, 100 + i as u64)),
            f4(plan.availability(0.50)),
        ]);
    }
    t
}

/// The efficiency view: storage needed per scheme to reach three nines
/// at a given failure probability.
pub fn efficiency_table() -> Table {
    let mut t = Table::new(
        "E11b",
        "cheapest scheme reaching 99.9% availability",
        &[
            "peer failure prob",
            "replication (overhead)",
            "erasure (overhead)",
        ],
    );
    for p in [0.05, 0.10, 0.20] {
        // Smallest replication factor reaching 99.9%.
        let rep = (1..=12u32)
            .map(|r| BackupPlan::Replication { copies: r })
            .find(|pl| pl.availability(p) >= 0.999)
            .expect("some replication factor suffices");
        // Cheapest RS with k = 8 reaching 99.9%.
        let rs = (1..=12u32)
            .map(|m| BackupPlan::Erasure { data: 8, parity: m })
            .find(|pl| pl.availability(p) >= 0.999)
            .expect("some parity count suffices");
        t.push(vec![
            format!("{p:.2}"),
            format!("x{} ({:.2}x)", rep.peers(), rep.overhead()),
            format!("RS({},8) ({:.2}x)", rs.peers(), rs.overhead()),
        ]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![run(2000), efficiency_table()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monte_carlo_matches_closed_form() {
        let plan = BackupPlan::Erasure { data: 4, parity: 2 };
        let exact = plan.availability(0.2);
        let mc = monte_carlo(plan, 0.2, 3000, 7);
        assert!((mc - exact).abs() < 0.03, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn erasure_cheaper_than_replication_for_same_nines() {
        let t = efficiency_table();
        for row in &t.rows {
            let rep_overhead: f64 = row[1]
                .split('(')
                .nth(1)
                .unwrap()
                .trim_end_matches("x)")
                .parse()
                .unwrap();
            let rs_overhead: f64 = row[2]
                .split('(')
                .nth(2)
                .unwrap()
                .trim_end_matches("x)")
                .parse()
                .unwrap();
            assert!(
                rs_overhead < rep_overhead,
                "p={}: rs {rs_overhead} !< rep {rep_overhead}",
                row[0]
            );
        }
    }

    #[test]
    fn availability_table_shape() {
        let t = run(200);
        assert_eq!(t.len(), 5);
        // Everything is highly available at p=0.01.
        for row in &t.rows {
            let a: f64 = row[2].parse().unwrap();
            assert!(a > 0.99, "{}: {a}", row[0]);
        }
    }
}
