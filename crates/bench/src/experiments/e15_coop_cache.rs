//! E15 — the cooperative neighborhood cache (§IV-D "A Cooperative
//! Cache").
//!
//! "Neighboring HPoPs can link together to coordinate their content
//! gathering activities and avoid duplicate retrievals and storage of
//! content in an effort to save aggregate capacity to the
//! neighborhood." Sweep the neighborhood size with a shared Zipf
//! workload and compare cooperative vs independent caches on uplink
//! bytes, origin fetches and duplicate storage.

use crate::table::{f2, pct, Table};
use hpop_http::url::Url;
use hpop_internet_home::coop::CoopCache;
use hpop_workloads::zipf::WebUniverse;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct RunOut {
    coop_uplink: u64,
    indep_uplink: u64,
    coop_origin: u64,
    indep_origin: u64,
    coop_storage: usize,
    indep_storage: usize,
    containment: f64,
}

fn run_once(homes: u32, requests_per_home: usize, seed: u64) -> RunOut {
    let mut rng = StdRng::seed_from_u64(seed);
    let universe = WebUniverse::generate(1000, 1.0, 100_000, &mut rng);
    let mut coop = CoopCache::new(homes);
    let mut indep = CoopCache::new(homes).independent();
    // Interleave requests across homes (neighbors share interests — the
    // same Zipf distribution).
    for round in 0..requests_per_home {
        for home in 0..homes {
            let _ = round;
            let obj = universe.sample(&mut rng);
            let url = Url::https("web.example", &obj.path);
            coop.request(home, &url, obj.bytes);
            indep.request(home, &url, obj.bytes);
        }
    }
    RunOut {
        coop_uplink: coop.stats().uplink_bytes,
        indep_uplink: indep.stats().uplink_bytes,
        coop_origin: coop.stats().origin_fetches,
        indep_origin: indep.stats().origin_fetches,
        coop_storage: coop.stored_objects(),
        indep_storage: indep.stored_objects(),
        containment: coop.stats().containment(),
    }
}

/// Runs the neighborhood-size sweep.
pub fn run(sizes: &[u32], requests_per_home: usize) -> Table {
    let mut t = Table::new(
        "E15",
        format!("cooperative neighborhood cache ({requests_per_home} requests/home, Zipf(1.0) x 1000 objects)"),
        &[
            "HPoPs",
            "uplink MB (indep)",
            "uplink MB (coop)",
            "uplink saving",
            "origin fetches (indep/coop)",
            "stored objects (indep/coop)",
            "containment",
        ],
    );
    for &n in sizes {
        let r = run_once(n, requests_per_home, 13);
        t.push(vec![
            n.to_string(),
            f2(r.indep_uplink as f64 / 1e6),
            f2(r.coop_uplink as f64 / 1e6),
            pct(1.0 - r.coop_uplink as f64 / r.indep_uplink.max(1) as f64),
            format!("{}/{}", r.indep_origin, r.coop_origin),
            format!("{}/{}", r.indep_storage, r.coop_storage),
            pct(r.containment),
        ]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![run(&[1, 2, 5, 10, 20, 50], 200)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_with_neighborhood_size() {
        let t = run(&[2, 10, 50], 100);
        let saving = |i: usize| -> f64 { t.rows[i][3].trim_end_matches('%').parse().unwrap() };
        assert!(saving(1) > saving(0), "{} !> {}", saving(1), saving(0));
        assert!(saving(2) > saving(1), "{} !> {}", saving(2), saving(1));
        // A 50-home neighborhood sharing Zipf interests saves most
        // uplink traffic.
        assert!(saving(2) > 50.0, "saving {}%", saving(2));
    }

    #[test]
    fn no_duplicate_storage_under_cooperation() {
        let r = run_once(10, 100, 3);
        assert!(r.coop_storage < r.indep_storage);
        // Cooperative stores at most one copy per distinct object.
        assert!(r.coop_storage <= 1000);
    }

    #[test]
    fn single_home_gains_nothing() {
        let r = run_once(1, 100, 3);
        assert_eq!(r.coop_uplink, r.indep_uplink);
        assert_eq!(r.coop_origin, r.indep_origin);
    }
}
