//! E8 — detour benefit (Fig. 3, §IV-C).
//!
//! "The overlay detour paths produced by the relay hosts often have less
//! packet loss, lower latency, and higher bandwidth … most performance
//! benefits can be obtained by using a single waypoint." Sweep the
//! direct path's quality and compare direct-only, +1 waypoint and
//! +2 waypoints, plus the scheduler ablation.

use crate::table::{f2, Table};
use hpop_dcol::collective::MemberId;
use hpop_dcol::session::{DcolSession, SessionConfig};
use hpop_netsim::netsim::NetSim;
use hpop_netsim::time::SimDuration;
use hpop_netsim::topology::{NodeId, Topology, TopologyBuilder};
use hpop_netsim::units::{Bandwidth, MB};
use hpop_transport::mptcp::{MptcpStats, Scheduler};
use std::cell::RefCell;
use std::rc::Rc;

/// A triangle with two independent waypoints.
fn two_waypoint_topology(direct_loss: f64) -> (Topology, NodeId, NodeId, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let client = b.add_node("client");
    let server = b.add_node("server");
    b.add_link_weighted(
        client,
        server,
        Bandwidth::mbps(200.0),
        Bandwidth::mbps(200.0),
        SimDuration::from_millis(80),
        direct_loss,
        1,
    );
    let mut wps = Vec::new();
    for i in 0..2 {
        let w = b.add_node(format!("wp{i}"));
        b.add_link(
            client,
            w,
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(25),
        );
        b.add_link(
            w,
            server,
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(25),
        );
        wps.push(w);
    }
    (b.build(), client, server, wps)
}

fn run_session(direct_loss: f64, waypoints: usize, scheduler: Scheduler, bytes: u64) -> MptcpStats {
    let (topo, client, server, wps) = two_waypoint_topology(direct_loss);
    let mut sim = NetSim::with_topology(topo);
    let wps: Vec<(MemberId, NodeId)> = wps
        .into_iter()
        .take(waypoints)
        .enumerate()
        .map(|(i, n)| (MemberId(i as u32), n))
        .collect();
    let out: Rc<RefCell<Option<MptcpStats>>> = Rc::new(RefCell::new(None));
    let o2 = out.clone();
    let cfg = SessionConfig {
        scheduler,
        seed: 5,
        ..SessionConfig::default()
    };
    DcolSession::launch(&mut sim, client, server, &wps, bytes, cfg, move |_, s| {
        *o2.borrow_mut() = Some(s);
    });
    sim.run();
    let s = out.borrow_mut().take().expect("session completes");
    s
}

/// Main sweep: direct-path loss × waypoint count.
pub fn run(bytes: u64) -> Table {
    let mut t = Table::new(
        "E8a",
        format!(
            "detour benefit: {} MB download, direct 200 Mbps/80 ms vs gigabit waypoints",
            bytes / MB
        ),
        &[
            "direct loss",
            "direct-only (s)",
            "+1 waypoint (s)",
            "+2 waypoints (s)",
            "1-wp speedup",
            "2nd wp extra",
        ],
    );
    for loss in [0.0, 0.005, 0.02, 0.05] {
        let d0 = run_session(loss, 0, Scheduler::MinRtt, bytes)
            .duration()
            .as_secs_f64();
        let d1 = run_session(loss, 1, Scheduler::MinRtt, bytes)
            .duration()
            .as_secs_f64();
        let d2 = run_session(loss, 2, Scheduler::MinRtt, bytes)
            .duration()
            .as_secs_f64();
        t.push(vec![
            format!("{:.1}%", loss * 100.0),
            f2(d0),
            f2(d1),
            f2(d2),
            format!("{:.2}x", d0 / d1),
            format!("{:.2}x", d1 / d2),
        ]);
    }
    t
}

/// Scheduler ablation at fixed path quality.
pub fn scheduler_table(bytes: u64) -> Table {
    let mut t = Table::new(
        "E8b",
        "scheduler ablation (2% direct loss, 1 waypoint)",
        &["scheduler", "duration (s)", "waypoint byte share"],
    );
    for (name, sched) in [
        ("minRTT", Scheduler::MinRtt),
        ("round-robin", Scheduler::RoundRobin),
    ] {
        let s = run_session(0.02, 1, sched, bytes);
        t.push(vec![
            name.into(),
            f2(s.duration().as_secs_f64()),
            f2(s.share(1)),
        ]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![run(100 * MB), scheduler_table(100 * MB)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_waypoint_captures_most_benefit() {
        let t = run(50 * MB);
        // At 2% loss: one waypoint speeds things up a lot…
        let row = &t.rows[2];
        let speedup1: f64 = row[4].trim_end_matches('x').parse().unwrap();
        assert!(speedup1 > 2.0, "1-wp speedup {speedup1}");
        // …and the second adds much less (the paper's single-waypoint
        // claim).
        let extra2: f64 = row[5].trim_end_matches('x').parse().unwrap();
        assert!(extra2 < speedup1 / 2.0, "2nd wp extra {extra2}");
    }

    #[test]
    fn benefit_grows_with_direct_path_degradation() {
        let t = run(50 * MB);
        let speedups: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[4].trim_end_matches('x').parse().unwrap())
            .collect();
        assert!(
            speedups.last().unwrap() > speedups.first().unwrap(),
            "{speedups:?}"
        );
    }
}
