//! E9 — ACK-delay steering of the server's scheduler (§IV-C).
//!
//! "Since the default MPTCP schedulers use RTT as a key factor …, a
//! custom client's scheduler can reduce server's use of a detour by
//! delaying subflow-level acknowledgments of the corresponding subflow
//! and thus increasing the RTT values seen by the server." Sweep the
//! client-imposed ACK delay on one of two equal subflows and measure
//! how the server's byte allocation shifts.

use crate::table::{f2, Table};
use hpop_netsim::netsim::NetSim;
use hpop_netsim::time::SimDuration;
use hpop_netsim::topology::TopologyBuilder;
use hpop_netsim::units::{Bandwidth, MB};
use hpop_transport::mptcp::{MptcpStats, MptcpTransfer, Scheduler, SubflowSpec};
use hpop_transport::tcp::TcpConfig;
use std::cell::RefCell;
use std::rc::Rc;

/// Two symmetric 300 Mbps / 30 ms paths server→client; the steered
/// subflow gets `ack_delay`.
fn run_once(ack_delay: SimDuration, bytes: u64) -> MptcpStats {
    let mut b = TopologyBuilder::new();
    let client = b.add_node("client");
    let server = b.add_node("server");
    let wp1 = b.add_node("wp1");
    let wp2 = b.add_node("wp2");
    for wp in [wp1, wp2] {
        b.add_link(
            server,
            wp,
            Bandwidth::mbps(300.0),
            SimDuration::from_millis(15),
        );
        b.add_link(
            wp,
            client,
            Bandwidth::mbps(300.0),
            SimDuration::from_millis(15),
        );
    }
    let topo = b.build();
    let mut sim = NetSim::with_topology(topo.clone());
    let p1 = sim
        .state
        .net
        .routing()
        .route_via(server, wp1, client)
        .expect("path 1");
    let p2 = sim
        .state
        .net
        .routing()
        .route_via(server, wp2, client)
        .expect("path 2");
    let mut s2 = SubflowSpec::new("steered", p2);
    s2.ack_delay = ack_delay;
    let subflows = vec![SubflowSpec::new("plain", p1), s2];
    let out: Rc<RefCell<Option<MptcpStats>>> = Rc::new(RefCell::new(None));
    let o2 = out.clone();
    MptcpTransfer::launch(
        &mut sim,
        subflows,
        bytes,
        TcpConfig::default(),
        Scheduler::MinRtt,
        3,
        move |_, s| *o2.borrow_mut() = Some(s),
    );
    sim.run();
    let s = out.borrow_mut().take().expect("transfer completes");
    s
}

/// Runs the ACK-delay sweep.
pub fn run(bytes: u64) -> Table {
    let mut t = Table::new(
        "E9",
        format!(
            "ACK-delay steering: {} MB over two equal 300 Mbps subflows (minRTT scheduler)",
            bytes / MB
        ),
        &[
            "ack delay on subflow 2",
            "subflow 2 byte share",
            "subflow 2 srtt (ms)",
            "duration (s)",
        ],
    );
    for delay_ms in [0u64, 50, 100, 200, 400] {
        let s = run_once(SimDuration::from_millis(delay_ms), bytes);
        t.push(vec![
            format!("{delay_ms}ms"),
            f2(s.share(1)),
            f2(s.subflows[1].srtt.map(|d| d.as_millis_f64()).unwrap_or(0.0)),
            f2(s.duration().as_secs_f64()),
        ]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![run(60 * MB)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_falls_monotonically_with_ack_delay() {
        let t = run(30 * MB);
        let shares: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // Equal paths split ~50/50 with no delay…
        assert!((shares[0] - 0.5).abs() < 0.15, "baseline {}", shares[0]);
        // …and the steered subflow's share decays as delay grows.
        assert!(shares.last().unwrap() < &(shares[0] - 0.15), "{shares:?}");
        for w in shares.windows(2) {
            assert!(w[1] <= w[0] + 0.05, "non-monotonic: {shares:?}");
        }
    }

    #[test]
    fn server_sees_the_inflated_rtt() {
        let t = run(30 * MB);
        let srtt0: f64 = t.rows[0][2].parse().unwrap();
        let srtt400: f64 = t.rows[4][2].parse().unwrap();
        assert!(srtt400 > srtt0 + 200.0, "srtt {srtt0} -> {srtt400}");
    }
}
