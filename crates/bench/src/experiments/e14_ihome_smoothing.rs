//! E14 — demand smoothing (§IV-D "Demand Smoothing").
//!
//! "Obtaining content ahead of actual use also brings flexibility to
//! schedule content acquisition at an opportune time. This can smooth
//! the demand on Internet servers and core networks." Refresh tasks
//! derived from a realistic prefetch plan, scheduled at-deadline vs
//! smoothed, against the household's diurnal demand curve.

use crate::table::{f2, Table};
use hpop_internet_home::smoothing::{DemandSmoother, HourlyLoad, RefreshTask};
use hpop_netsim::time::SimTime;
use hpop_workloads::diurnal::DiurnalCurve;
use hpop_workloads::zipf::WebUniverse;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the day's refresh tasks from a universe sample: objects whose
/// TTLs expire through the day, each refetchable from one TTL earlier.
fn day_tasks(objects: usize, seed: u64) -> Vec<RefreshTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    let universe = WebUniverse::generate(objects, 1.0, 100_000, &mut rng);
    let curve = DiurnalCurve::residential();
    universe
        .objects()
        .iter()
        .map(|o| {
            // Copies tend to expire when they were last refreshed by
            // use — biased toward busy hours.
            let deadline = curve.sample_time(1, &mut rng);
            let earliest = SimTime::from_nanos(
                deadline
                    .as_nanos()
                    .saturating_sub(o.ttl_secs * 1_000_000_000),
            );
            RefreshTask {
                bytes: o.bytes,
                deadline,
                earliest,
            }
        })
        .collect()
}

/// Converts the user demand curve to absolute bytes/hour.
fn user_demand(scale_mb: f64) -> HourlyLoad {
    let curve = DiurnalCurve::residential();
    let mut l = HourlyLoad::default();
    for h in 0..24 {
        l.bytes[h] = curve.weight(h) * scale_mb * 1e6;
    }
    l
}

/// Runs the comparison at several prefetch scales.
pub fn run(object_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "E14",
        "upstream demand smoothing: refresh-at-deadline vs scheduled (bytes/hour)",
        &[
            "refresh objects",
            "baseline peak (MB/h)",
            "smoothed peak (MB/h)",
            "baseline peak/mean",
            "smoothed peak/mean",
            "peak reduction",
        ],
    );
    let demand = user_demand(20.0);
    for &n in object_counts {
        let tasks = day_tasks(n, 31);
        let base = DemandSmoother::at_deadline(&tasks, &demand);
        let smooth = DemandSmoother::smoothed(&tasks, &demand);
        t.push(vec![
            n.to_string(),
            f2(base.peak() / 1e6),
            f2(smooth.peak() / 1e6),
            f2(base.peak_to_mean()),
            f2(smooth.peak_to_mean()),
            format!("{:.1}%", (1.0 - smooth.peak() / base.peak()) * 100.0),
        ]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![run(&[100, 500, 2000])]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_reduces_peak_without_losing_bytes() {
        let demand = user_demand(20.0);
        let tasks = day_tasks(500, 1);
        let base = DemandSmoother::at_deadline(&tasks, &demand);
        let smooth = DemandSmoother::smoothed(&tasks, &demand);
        assert!((base.total() - smooth.total()).abs() < 1.0);
        assert!(smooth.peak() < base.peak());
        assert!(smooth.peak_to_mean() < base.peak_to_mean());
    }

    #[test]
    fn bigger_refresh_sets_benefit_more_in_absolute_terms() {
        let t = run(&[100, 2000]);
        let saved = |i: usize| -> f64 {
            let b: f64 = t.rows[i][1].parse().unwrap();
            let s: f64 = t.rows[i][2].parse().unwrap();
            b - s
        };
        assert!(saved(1) > saved(0), "{} vs {}", saved(1), saved(0));
    }
}
