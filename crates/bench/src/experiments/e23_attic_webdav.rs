//! E23 — the attic's WebDAV surface: adapter parity, daemon
//! throughput, and lifecycle reclamation.
//!
//! The ports-and-adapters refactor claims the netsim attic and the
//! real-socket `attic-daemon` are the same server. This experiment
//! holds that to account three ways:
//!
//! - **E23a** runs the WebDAV conformance suite (every verb, PROPFIND
//!   at all depths, version listing, preconditions) through both
//!   adapters and compares the canonical transcripts byte-for-byte,
//!   then measures requests/sec on each (wall-clock; pinned to 0 under
//!   `--stable`).
//! - **E23b** runs the lifecycle engine over a journaled attic with a
//!   mixed expiry/retention policy and reports what it reclaimed.
//! - **E23c** replays the lifecycle workload under a full crash matrix
//!   — a crash armed at every disk I/O step — and counts acked current
//!   versions lost (the budget pins this to zero).
//!
//! Budget-enforced counters: `attic.conformance.passed >= 54` with
//! `attic.conformance.failed = 0` and
//! `attic.conformance.transcript_mismatch = 0`;
//! `attic.lifecycle.reclaimed_bytes >= 10240`;
//! `attic.crash.acked_current_lost = 0` over
//! `attic.crash.scenarios >= 30` with
//! `attic.crash.compactions_survived >= 1`.

use crate::harness::ExpOptions;
use crate::table::Table;
use hpop_attic::{
    run_suite, AtticDaemon, AtticServer, ConformanceOutcome, DaemonConfig, DavCore, DurableAttic,
    LifecycleEngine, LifecyclePolicy, LifecycleReport, LifecycleRule, SimTransport, TcpTransport,
    VolatileBackend,
};
use hpop_core::auth::TokenVerifier;
use hpop_durability::DurabilityConfig;
use hpop_netsim::storage::SimDisk;
use hpop_netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::time::Instant;

fn verifier() -> TokenVerifier {
    TokenVerifier::new([7u8; 32])
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// One parity + throughput run.
pub struct ConformanceLeg {
    /// Suite outcome through the in-process netsim adapter.
    pub sim: ConformanceOutcome,
    /// Suite outcome through the daemon over loopback TCP.
    pub daemon: ConformanceOutcome,
    /// Whether the two canonical transcripts were byte-identical.
    pub identical: bool,
    /// Netsim adapter requests/sec (0 under `--stable`).
    pub sim_rps: u64,
    /// Daemon requests/sec over loopback (0 under `--stable`).
    pub daemon_rps: u64,
}

/// Runs the conformance suite through both adapters and, unless
/// `stable`, times `iters` fresh-state suite repetitions on each to get
/// a requests/sec figure.
pub fn run_conformance(iters: u32, stable: bool) -> ConformanceLeg {
    let mut server = AtticServer::new(verifier());
    let sim = run_suite(&mut SimTransport::new(server.core_mut()));

    let core = DavCore::new(VolatileBackend::new(), verifier());
    let handle = AtticDaemon::spawn(DaemonConfig::default(), core).expect("bind loopback");
    let mut tcp = TcpTransport::connect(handle.addr()).expect("connect loopback");
    let daemon = run_suite(&mut tcp);
    drop(tcp);
    handle.stop();

    let identical = sim.transcript == daemon.transcript;
    let (sim_rps, daemon_rps) = if stable {
        (0, 0)
    } else {
        (time_sim_suite(iters), time_daemon_suite(iters))
    };
    ConformanceLeg {
        sim,
        daemon,
        identical,
        sim_rps,
        daemon_rps,
    }
}

/// Requests/sec of the in-process adapter: `iters` suite runs, each
/// against a fresh attic.
fn time_sim_suite(iters: u32) -> u64 {
    let started = Instant::now();
    let mut requests = 0u64;
    for _ in 0..iters {
        let mut server = AtticServer::new(verifier());
        let out = run_suite(&mut SimTransport::new(server.core_mut()));
        requests += u64::from(out.steps);
    }
    rps(requests, started)
}

/// Requests/sec over loopback TCP: one daemon, a fresh connection and
/// backend per suite run (the daemon serves a single shared core, so
/// state is reset by respawning).
fn time_daemon_suite(iters: u32) -> u64 {
    let started = Instant::now();
    let mut requests = 0u64;
    for _ in 0..iters {
        let core = DavCore::new(VolatileBackend::new(), verifier());
        let handle = AtticDaemon::spawn(DaemonConfig::default(), core).expect("bind loopback");
        let mut tcp = TcpTransport::connect(handle.addr()).expect("connect loopback");
        let out = run_suite(&mut tcp);
        drop(tcp);
        handle.stop();
        requests += u64::from(out.steps);
    }
    rps(requests, started)
}

fn rps(requests: u64, started: Instant) -> u64 {
    let us = (started.elapsed().as_micros() as u64).max(1);
    requests * 1_000_000 / us
}

/// E23a — adapter parity and throughput.
pub fn conformance_table(iters: u32, stable: bool) -> Table {
    let leg = run_conformance(iters, stable);
    let metrics = hpop_obs::metrics();
    metrics
        .counter("attic.conformance.steps")
        .add(u64::from(leg.sim.steps) + u64::from(leg.daemon.steps));
    metrics
        .counter("attic.conformance.passed")
        .add(u64::from(leg.sim.passed) + u64::from(leg.daemon.passed));
    metrics
        .counter("attic.conformance.failed")
        .add((leg.sim.failures.len() + leg.daemon.failures.len()) as u64);
    metrics
        .counter("attic.conformance.transcript_mismatch")
        .add(u64::from(!leg.identical));
    metrics.counter("attic.rps.netsim").add(leg.sim_rps);
    metrics.counter("attic.rps.daemon").add(leg.daemon_rps);

    let mut table = Table::new(
        "E23a",
        format!(
            "WebDAV conformance through both adapters ({} steps each; \
             throughput over {iters} suite iterations)",
            leg.sim.steps
        ),
        &["adapter", "passed", "failed", "requests/sec"],
    );
    table.push(vec![
        leg.sim.adapter.into(),
        leg.sim.passed.to_string(),
        leg.sim.failures.len().to_string(),
        leg.sim_rps.to_string(),
    ]);
    table.push(vec![
        leg.daemon.adapter.into(),
        leg.daemon.passed.to_string(),
        leg.daemon.failures.len().to_string(),
        leg.daemon_rps.to_string(),
    ]);
    table.push(vec![
        "transcripts identical".into(),
        leg.identical.to_string(),
        String::new(),
        String::new(),
    ]);
    table
}

/// The mixed retention policy both lifecycle legs use: `/media` keeps
/// one superseded version per object, `/scratch` expires whole objects
/// a minute after their last write.
fn demo_policy() -> LifecyclePolicy {
    LifecyclePolicy::new(vec![
        LifecycleRule::for_prefix("/media").keep_noncurrent(1),
        LifecycleRule::for_prefix("/scratch").expire_after(SimDuration::from_secs(60)),
    ])
}

/// Seeds the deterministic lifecycle workload: 8 media objects with 6
/// versions of 256 B each, 4 scratch objects of 512 B written at t=0.
fn seed_workload(attic: &mut DurableAttic) {
    attic.mkcol("/media").expect("disk").expect("mkcol");
    attic.mkcol("/scratch").expect("disk").expect("mkcol");
    for obj in 0..8u64 {
        for ver in 0..6u64 {
            attic
                .put(
                    &format!("/media/clip{obj}"),
                    &vec![ver as u8; 256],
                    t(obj * 6 + ver),
                )
                .expect("disk")
                .expect("put");
        }
    }
    for obj in 0..4u64 {
        attic
            .put(&format!("/scratch/tmp{obj}"), &vec![0xAB; 512], t(0))
            .expect("disk")
            .expect("put");
    }
}

/// E23b — what the lifecycle engine reclaims on the journaled attic.
///
/// Fully deterministic: 8 × 4 = 32 noncurrent versions of 256 B pruned
/// plus 4 × 512 B scratch objects expired = 10 240 B reclaimed.
pub fn lifecycle_table() -> Table {
    let mut attic = DurableAttic::open(SimDisk::new(0xE23), "attic", DurabilityConfig::default())
        .expect("open journal");
    seed_workload(&mut attic);
    let before = attic.store().total_bytes();
    let mut engine = LifecycleEngine::new(demo_policy());
    engine.tick(&mut attic, t(100)).expect("tick");
    // A second tick at the same instant must be a no-op (idempotence).
    let second = engine.tick(&mut attic, t(100)).expect("tick");
    let report: LifecycleReport = engine.report();

    let metrics = hpop_obs::metrics();
    metrics
        .counter("attic.lifecycle.reclaimed_bytes")
        .add(report.reclaimed_bytes);
    metrics
        .counter("attic.lifecycle.pruned_versions")
        .add(report.pruned_versions);
    metrics
        .counter("attic.lifecycle.expired_objects")
        .add(report.expired_objects);
    metrics
        .counter("attic.lifecycle.second_tick_reclaimed")
        .add(second.reclaimed_bytes);

    let mut table = Table::new(
        "E23b",
        format!(
            "lifecycle reclamation on the journaled attic \
             ({before} B before, {} B after)",
            attic.store().total_bytes()
        ),
        &["measure", "value"],
    );
    table.push(vec![
        "expired objects".into(),
        report.expired_objects.to_string(),
    ]);
    table.push(vec![
        "pruned noncurrent versions".into(),
        report.pruned_versions.to_string(),
    ]);
    table.push(vec![
        "reclaimed bytes".into(),
        report.reclaimed_bytes.to_string(),
    ]);
    table.push(vec![
        "second-tick reclaimed bytes (idempotence)".into(),
        second.reclaimed_bytes.to_string(),
    ]);
    table
}

/// Outcome of the crash sweep.
pub struct CrashLeg {
    /// Crash points exercised (one per disk I/O step of the baseline).
    pub scenarios: u64,
    /// Acked current versions missing or corrupted after recovery.
    pub acked_lost: u64,
    /// Scenarios where a compaction had already landed when the crash
    /// hit and the shrunken history survived recovery.
    pub compactions_survived: u64,
}

/// E23c — the crash matrix: replay the put/tick workload with a crash
/// armed at every disk step, recover, and audit every acked write.
pub fn run_crash_matrix() -> CrashLeg {
    let policy = demo_policy();
    let baseline_steps = {
        let mut attic =
            DurableAttic::open(SimDisk::new(0xC0), "attic", DurabilityConfig::default())
                .expect("open journal");
        let mut engine = LifecycleEngine::new(policy.clone());
        drive_crash_workload(&mut attic, &mut engine, &mut BTreeMap::new());
        attic.disk().steps()
    };

    let mut leg = CrashLeg {
        scenarios: 0,
        acked_lost: 0,
        compactions_survived: 0,
    };
    for crash_at in 1..=baseline_steps {
        let mut attic =
            DurableAttic::open(SimDisk::new(0xC0), "attic", DurabilityConfig::default())
                .expect("open journal");
        let mut engine = LifecycleEngine::new(policy.clone());
        attic.disk_mut().arm_crash(crash_at);
        let mut acked: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        drive_crash_workload(&mut attic, &mut engine, &mut acked);

        let mut disk = attic.into_disk();
        disk.restart();
        let recovered = DurableAttic::open(disk, "attic", DurabilityConfig::default())
            .expect("recovery never fails");
        leg.scenarios += 1;
        for (path, body) in &acked {
            match recovered.store().get(path) {
                Ok(v) if v.body[..] == body[..] => {}
                _ => leg.acked_lost += 1,
            }
        }
        if recovered
            .store()
            .history("/media/clip0")
            .map(|h| h.len() <= 2)
            .unwrap_or(false)
        {
            leg.compactions_survived += 1;
        }
    }
    leg
}

/// Interleaves acked puts with lifecycle ticks, recording only writes
/// whose acknowledgement made it back to the caller.
fn drive_crash_workload(
    attic: &mut DurableAttic,
    engine: &mut LifecycleEngine,
    acked: &mut BTreeMap<String, Vec<u8>>,
) {
    if attic.mkcol("/media").is_err() || attic.mkcol("/scratch").is_err() {
        return;
    }
    for i in 0..5u64 {
        let body = vec![b'a' + i as u8; 128];
        if let Ok(Ok(_)) = attic.put("/media/clip0", &body, t(i)) {
            acked.insert("/media/clip0".into(), body);
        }
        let body = vec![b'A' + i as u8; 96];
        if let Ok(Ok(_)) = attic.put("/media/clip1", &body, t(i)) {
            acked.insert("/media/clip1".into(), body);
        }
        if i % 2 == 1 && engine.tick(attic, t(i)).is_err() {
            return;
        }
    }
    let body = vec![0xCD; 64];
    if let Ok(Ok(_)) = attic.put("/scratch/tmp", &body, t(6)) {
        acked.insert("/scratch/tmp".into(), body);
    }
    // The final tick runs at t=90, where the /scratch expire-after-60s
    // rule dooms tmp (last write t=6). A crash during that tick may
    // land on either side of the journaled delete, so the object's
    // post-recovery state is legitimately unspecified — drop it from
    // the audit. Losing a /media current version is still a failure.
    acked.remove("/scratch/tmp");
    let _ = engine.tick(attic, t(90));
}

/// E23c table + counters.
pub fn crash_table() -> Table {
    let leg = run_crash_matrix();
    let metrics = hpop_obs::metrics();
    metrics.counter("attic.crash.scenarios").add(leg.scenarios);
    metrics
        .counter("attic.crash.acked_current_lost")
        .add(leg.acked_lost);
    metrics
        .counter("attic.crash.compactions_survived")
        .add(leg.compactions_survived);

    let mut table = Table::new(
        "E23c",
        "lifecycle crash matrix: crash at every disk step, recover, audit acked writes".to_string(),
        &["measure", "value"],
    );
    table.push(vec!["crash scenarios".into(), leg.scenarios.to_string()]);
    table.push(vec![
        "acked current versions lost".into(),
        leg.acked_lost.to_string(),
    ]);
    table.push(vec![
        "compactions survived".into(),
        leg.compactions_survived.to_string(),
    ]);
    table
}

/// Default-scale run (the `exp_attic_webdav` binary). The lifecycle and
/// crash legs are exact-deterministic at every scale; only the
/// throughput iteration count varies.
pub fn run_default(opts: &ExpOptions) -> Vec<Table> {
    vec![
        conformance_table(40, opts.stable),
        lifecycle_table(),
        crash_table(),
    ]
}

/// Reduced scale for CI smoke runs (run *without* `--stable` so the
/// requests/sec columns are measured for real; the budget floors are on
/// the deterministic legs, which are identical to the full run).
pub fn run_smoke(opts: &ExpOptions) -> Vec<Table> {
    vec![
        conformance_table(4, opts.stable),
        lifecycle_table(),
        crash_table(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion: both adapters pass every step and the
    /// transcripts match byte-for-byte.
    #[test]
    fn adapters_agree_and_pass() {
        let leg = run_conformance(1, true);
        assert_eq!(leg.sim.failures, Vec::<String>::new());
        assert_eq!(leg.daemon.failures, Vec::<String>::new());
        assert_eq!(leg.sim.passed, leg.sim.steps);
        assert!(leg.identical, "adapter transcripts diverged");
    }

    /// The lifecycle leg's arithmetic is exact: 32 pruned versions of
    /// 256 B plus 4 expired 512 B objects.
    #[test]
    fn lifecycle_reclaims_exactly() {
        let mut attic =
            DurableAttic::open(SimDisk::new(0xE23), "attic", DurabilityConfig::default()).unwrap();
        seed_workload(&mut attic);
        let mut engine = LifecycleEngine::new(demo_policy());
        engine.tick(&mut attic, t(100)).unwrap();
        let report = engine.report();
        assert_eq!(report.pruned_versions, 32);
        assert_eq!(report.expired_objects, 4);
        assert_eq!(report.reclaimed_bytes, 32 * 256 + 4 * 512);
    }

    /// Zero acked losses across the full crash sweep, with at least one
    /// crash landing after a compaction.
    #[test]
    fn crash_matrix_is_lossless() {
        let leg = run_crash_matrix();
        assert!(leg.scenarios >= 30, "matrix too small: {}", leg.scenarios);
        assert_eq!(leg.acked_lost, 0);
        assert!(leg.compactions_survived > 0);
    }
}
