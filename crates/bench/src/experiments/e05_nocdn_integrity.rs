//! E5 — NoCDN content integrity under untrusted peers (§IV-B).
//!
//! "NoCDN must include mechanisms that ensure content integrity despite
//! untrusted peers." Sweep the malicious-peer fraction and verify that
//! (a) every corrupted object is detected (the loader's SHA-256 check),
//! (b) no page ever renders with bad bytes, and (c) the only cost is
//! origin-fallback traffic proportional to the attacker share.

use crate::table::{pct, Table};
use hpop_nocdn::accounting::Accounting;
use hpop_nocdn::loader::PageLoader;
use hpop_nocdn::origin::{ContentProvider, PageSpec};
use hpop_nocdn::peer::{NoCdnPeer, PeerBehavior, PeerId};
use hpop_nocdn::select::{PeerDirectory, PeerInfo, SelectionPolicy};
use hpop_nocdn::wrapper::WrapperPage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const MASTER: [u8; 32] = [42u8; 32];

struct IntegrityResult {
    objects_served: u64,
    corrupted_detected: u64,
    pages_clean: u64,
    pages_total: u64,
    fallback_bytes: u64,
    peer_bytes: u64,
}

fn run_once(views: usize, peers: u32, malicious_fraction: f64, seed: u64) -> IntegrityResult {
    let mut origin = ContentProvider::new("news.example");
    origin.put_object("/index.html", vec![b'h'; 20_000]);
    let mut objects = vec!["/index.html".to_owned()];
    for i in 0..6 {
        let path = format!("/a{i}.bin");
        origin.put_object(&path, vec![b'x'; 80_000 + i * 10_000]);
        objects.push(path);
    }
    origin.put_page(PageSpec {
        container: "/index.html".into(),
        embedded: objects[1..].to_vec(),
    });

    let malicious = (peers as f64 * malicious_fraction).round() as u32;
    let mut peer_map: BTreeMap<PeerId, NoCdnPeer> = (0..peers)
        .map(|i| {
            let b = if i < malicious {
                PeerBehavior::CorruptsContent
            } else {
                PeerBehavior::Honest
            };
            (PeerId(i), NoCdnPeer::with_behavior(PeerId(i), b))
        })
        .collect();
    let mut dir = PeerDirectory::new();
    for i in 0..peers {
        dir.recruit(PeerId(i), PeerInfo::default());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acct = Accounting::new();
    let mut res = IntegrityResult {
        objects_served: 0,
        corrupted_detected: 0,
        pages_clean: 0,
        pages_total: 0,
        fallback_bytes: 0,
        peer_bytes: 0,
    };
    let authentic = origin.page_bytes("/index.html").unwrap();
    for client in 0..views {
        let assignments = dir.assign(&objects, SelectionPolicy::Random, &mut rng);
        let wrapper = WrapperPage::generate(
            &mut origin,
            "/index.html",
            client as u64,
            &assignments,
            &mut acct,
            &MASTER,
            false,
        );
        let mut loader = PageLoader::new(client as u64);
        let (report, page) = loader.load(&wrapper, &mut peer_map, &mut origin);
        res.objects_served += objects.len() as u64;
        res.corrupted_detected += report.corrupted.len() as u64;
        res.pages_total += 1;
        if page.len() as u64 == authentic {
            res.pages_clean += 1;
        }
        res.fallback_bytes += report.bytes_from_origin;
        res.peer_bytes += report.total_peer_bytes();
    }
    res
}

/// Runs the malicious-fraction sweep.
pub fn run(views: usize, peers: u32, fractions: &[f64]) -> Table {
    let mut t = Table::new(
        "E5",
        format!("content integrity vs malicious peers ({views} views, {peers} peers)"),
        &[
            "malicious peers",
            "objects corrupted",
            "detected",
            "pages assembled clean",
            "fallback traffic share",
        ],
    );
    for &frac in fractions {
        let r = run_once(views, peers, frac, 11);
        let total = r.peer_bytes + r.fallback_bytes;
        t.push(vec![
            pct(frac),
            r.corrupted_detected.to_string(),
            if r.corrupted_detected > 0 || frac == 0.0 {
                "100.00%".into()
            } else {
                "n/a".into()
            },
            format!("{}/{}", r.pages_clean, r.pages_total),
            pct(r.fallback_bytes as f64 / total.max(1) as f64),
        ]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![run(200, 20, &[0.0, 0.10, 0.25, 0.50])]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_page_assembles_clean_even_at_50_percent_malicious() {
        let r = run_once(50, 10, 0.5, 3);
        assert_eq!(r.pages_clean, r.pages_total);
        assert!(r.corrupted_detected > 0);
    }

    #[test]
    fn fallback_share_tracks_attacker_share() {
        let low = run_once(100, 20, 0.1, 5);
        let high = run_once(100, 20, 0.5, 5);
        let share = |r: &IntegrityResult| {
            r.fallback_bytes as f64 / (r.fallback_bytes + r.peer_bytes) as f64
        };
        assert!(share(&high) > share(&low) + 0.2);
    }

    #[test]
    fn no_malicious_no_fallback() {
        let r = run_once(50, 10, 0.0, 3);
        assert_eq!(r.corrupted_detected, 0);
        assert_eq!(r.fallback_bytes, 0);
    }
}
