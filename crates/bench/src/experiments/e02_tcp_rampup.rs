//! E2 — TCP slow-start ramp-up (§IV-D intro).
//!
//! Paper claim: "over a 1 Gbps network path with a 50 msec RTT a TCP
//! connection will require 10 RTTs and over 14 MB of data before
//! utilizing the available capacity. Most transfers carry nowhere near
//! enough data to achieve these speeds." Two tables: the analytic
//! ramp-up arithmetic across RTTs and initial windows, and achieved
//! utilization vs transfer size (analytic + event-driven simulation
//! cross-check).

use crate::table::{f2, pct, Table};
use hpop_netsim::netsim::NetSim;
use hpop_netsim::time::SimDuration;
use hpop_netsim::topology::TopologyBuilder;
use hpop_netsim::units::{format_bytes, Bandwidth, KB, MB};
use hpop_transport::conn::TcpTransfer;
use hpop_transport::tcp::{slow_start_rampup, transfer_duration, TcpConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// Table 1: RTTs and bytes needed to fill a 1 Gbps path.
pub fn rampup_table() -> Table {
    let mut t = Table::new(
        "E2a",
        "slow-start ramp-up to fill 1 Gbps (paper: ~10 RTTs / >14 MB at 50 ms)",
        &[
            "rtt",
            "init window",
            "RTTs to full",
            "bytes in ramp",
            "ramp + BDP",
            "time to full",
        ],
    );
    for rtt_ms in [10u64, 25, 50, 100] {
        for (label, cfg) in [
            ("IW10", TcpConfig::default()),
            ("IW4", TcpConfig::conservative()),
        ] {
            let r = slow_start_rampup(&cfg, SimDuration::from_millis(rtt_ms), Bandwidth::gbps(1.0));
            t.push(vec![
                format!("{rtt_ms}ms"),
                label.into(),
                r.rtts.to_string(),
                format_bytes(r.bytes_before_full),
                format_bytes(r.bytes_before_full + r.bdp_bytes),
                format!("{}", r.time_to_full),
            ]);
        }
    }
    t
}

/// Table 2: achieved utilization vs transfer size at 1 Gbps / 50 ms RTT,
/// analytic and event-driven.
pub fn utilization_table() -> Table {
    let mut t = Table::new(
        "E2b",
        "transfer-size vs achieved rate, 1 Gbps path, 50 ms RTT",
        &["size", "analytic rate", "simulated rate", "utilization"],
    );
    let cfg = TcpConfig::default();
    let rtt = SimDuration::from_millis(50);
    let bw = Bandwidth::gbps(1.0);
    for bytes in [100 * KB, MB, 14 * MB, 100 * MB, 1000 * MB] {
        let analytic = transfer_duration(&cfg, bytes, rtt, bw);
        let analytic_rate = bytes as f64 * 8.0 / analytic.as_secs_f64();

        // Event-driven cross-check on a single 1 Gbps / 25 ms-latency link.
        let mut b = TopologyBuilder::new();
        let a = b.add_node("server");
        let c = b.add_node("home");
        b.add_link(a, c, bw, SimDuration::from_millis(25));
        let mut sim = NetSim::with_topology(b.build());
        let out = Rc::new(RefCell::new(0f64));
        let o2 = out.clone();
        TcpTransfer::launch(&mut sim, a, c, bytes, cfg, 1, move |_, s| {
            *o2.borrow_mut() = s.mean_rate().bits_per_sec();
        });
        sim.run();
        let sim_rate = *out.borrow();

        t.push(vec![
            format_bytes(bytes),
            format!("{}", Bandwidth::from_bps(analytic_rate)),
            format!("{}", Bandwidth::from_bps(sim_rate)),
            pct(sim_rate / 1e9),
        ]);
    }
    t
}

/// Table 3: the paper's exact headline numbers.
pub fn headline_table() -> Table {
    let mut t = Table::new(
        "E2c",
        "the paper's 1 Gbps x 50 ms headline",
        &["quantity", "paper", "measured"],
    );
    let r10 = slow_start_rampup(
        &TcpConfig::default(),
        SimDuration::from_millis(50),
        Bandwidth::gbps(1.0),
    );
    let r4 = slow_start_rampup(
        &TcpConfig::conservative(),
        SimDuration::from_millis(50),
        Bandwidth::gbps(1.0),
    );
    t.push(vec![
        "RTTs before full rate".into(),
        "10".into(),
        format!("{} (IW10) / {} (IW4)", r10.rtts, r4.rtts),
    ]);
    t.push(vec![
        "data before full rate".into(),
        ">14 MB".into(),
        format!(
            "{} (IW10) / {} (IW4, ramp+BDP)",
            format_bytes(r10.bytes_before_full + r10.bdp_bytes),
            format_bytes(r4.bytes_before_full + r4.bdp_bytes)
        ),
    ]);
    t.push(vec![
        "BDP at 1 Gbps x 50 ms".into(),
        "~6.25 MB".into(),
        format!(
            "{} ({})",
            format_bytes(r10.bdp_bytes),
            f2(r10.bdp_bytes as f64 / 1e6)
        ),
    ]);
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![rampup_table(), utilization_table(), headline_table()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_matches_paper() {
        let t = headline_table();
        // IW4 RTT count is 11 ≈ the paper's "10 RTTs".
        assert!(t.rows[0][2].contains("9 (IW10) / 11 (IW4)"));
        // IW4 total data exceeds 14 MB.
        assert!(t.rows[1][2].contains("MB"));
    }

    #[test]
    fn small_transfers_waste_the_gigabit() {
        let t = utilization_table();
        // 100 KB row: utilization far below 10%.
        let util: f64 = t.rows[0][3].trim_end_matches('%').parse().unwrap();
        assert!(util < 10.0, "{util}%");
        // 1 GB row: utilization above 90%.
        let util: f64 = t.rows[4][3].trim_end_matches('%').parse().unwrap();
        assert!(util > 90.0, "{util}%");
    }

    #[test]
    fn rampup_monotonic_in_rtt() {
        let t = rampup_table();
        assert_eq!(t.len(), 8);
        // More RTT ⇒ bigger BDP ⇒ at least as many doubling rounds.
        let rtts: Vec<u32> = t
            .rows
            .iter()
            .filter(|r| r[1] == "IW10")
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(rtts.windows(2).all(|w| w[0] <= w[1]), "{rtts:?}");
    }
}
