//! E4 — NoCDN origin offload (Fig. 2, §IV-B).
//!
//! "This mechanism improves scalability of the origin site because it
//! only has to deliver a small wrapper page … the rest of the page
//! content fetched from the peer(s)." Sweep the client population and
//! compare origin bytes with and without NoCDN, plus the peer-selection
//! policy ablation.

use crate::table::{f2, pct, Table};
use hpop_nocdn::accounting::Accounting;
use hpop_nocdn::loader::PageLoader;
use hpop_nocdn::origin::{ContentProvider, PageSpec};
use hpop_nocdn::peer::{NoCdnPeer, PeerId};
use hpop_nocdn::select::{PeerDirectory, PeerInfo, SelectionPolicy};
use hpop_nocdn::wrapper::WrapperPage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const MASTER: [u8; 32] = [42u8; 32];

/// A provider with one typical page: 50 KB of markup plus 8 embedded
/// objects (styles, scripts, images) totalling ~1.2 MB.
fn provider() -> (ContentProvider, Vec<String>) {
    let mut p = ContentProvider::new("news.example");
    p.put_object("/index.html", vec![b'h'; 50_000]);
    let mut objects = vec!["/index.html".to_owned()];
    let sizes = [
        30_000, 60_000, 90_000, 120_000, 150_000, 200_000, 250_000, 300_000,
    ];
    for (i, sz) in sizes.iter().enumerate() {
        let path = format!("/asset{i}.bin");
        p.put_object(&path, vec![b'a' + i as u8; *sz]);
        objects.push(path);
    }
    p.put_page(PageSpec {
        container: "/index.html".into(),
        embedded: objects[1..].to_vec(),
    });
    (p, objects)
}

/// One full NoCDN run: `clients` page views over `peers` peers.
struct RunResult {
    origin_bytes: u64,
    wrapper_bytes: u64,
    peer_bytes: u64,
    baseline_bytes: u64,
}

fn run_once(clients: usize, peer_count: u32, policy: SelectionPolicy, seed: u64) -> RunResult {
    let (mut origin, objects) = provider();
    let baseline_per_view = origin.page_bytes("/index.html").unwrap();
    let mut peers: BTreeMap<PeerId, NoCdnPeer> = (0..peer_count)
        .map(|i| (PeerId(i), NoCdnPeer::new(PeerId(i))))
        .collect();
    let mut dir = PeerDirectory::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..peer_count {
        dir.recruit(
            PeerId(i),
            PeerInfo {
                rtt_ms: 5.0 + (i as f64 * 7.0) % 40.0,
                violations: 0,
            },
        );
    }
    let mut acct = Accounting::new();
    let mut peer_bytes = 0u64;
    for client in 0..clients {
        let assignments = dir.assign(&objects, policy, &mut rng);
        let wrapper = WrapperPage::generate(
            &mut origin,
            "/index.html",
            client as u64,
            &assignments,
            &mut acct,
            &MASTER,
            client == 0, // loader script cached after the first view
        );
        let mut loader = PageLoader::new(client as u64);
        let (report, _page) = loader.load(&wrapper, &mut peers, &mut origin);
        peer_bytes += report.total_peer_bytes();
    }
    RunResult {
        origin_bytes: origin.origin_bytes,
        wrapper_bytes: origin.wrapper_bytes,
        peer_bytes,
        baseline_bytes: baseline_per_view * clients as u64,
    }
}

/// Offload vs client count.
pub fn offload_table(client_counts: &[usize], peers: u32) -> Table {
    let mut t = Table::new(
        "E4a",
        format!("NoCDN origin offload vs page views ({peers} peers, random selection)"),
        &[
            "page views",
            "origin bytes (no CDN)",
            "origin bytes (NoCDN)",
            "  of which wrappers",
            "peer bytes",
            "origin reduction",
        ],
    );
    for &c in client_counts {
        let r = run_once(c, peers, SelectionPolicy::Random, 7);
        let total_origin = r.origin_bytes + r.wrapper_bytes;
        t.push(vec![
            c.to_string(),
            r.baseline_bytes.to_string(),
            total_origin.to_string(),
            r.wrapper_bytes.to_string(),
            r.peer_bytes.to_string(),
            pct(1.0 - total_origin as f64 / r.baseline_bytes as f64),
        ]);
    }
    t
}

/// Peer-selection policy ablation at fixed scale.
pub fn policy_table(clients: usize, peers: u32) -> Table {
    let mut t = Table::new(
        "E4b",
        format!("peer-selection ablation ({clients} views, {peers} peers)"),
        &[
            "policy",
            "origin reduction",
            "distinct serving peers",
            "max peer load share",
        ],
    );
    for (name, policy) in [
        ("random", SelectionPolicy::Random),
        ("round-robin", SelectionPolicy::RoundRobin),
        ("proximity", SelectionPolicy::Proximity),
        ("trust-weighted", SelectionPolicy::TrustWeighted),
    ] {
        let (mut origin, objects) = provider();
        let mut peer_map: BTreeMap<PeerId, NoCdnPeer> = (0..peers)
            .map(|i| (PeerId(i), NoCdnPeer::new(PeerId(i))))
            .collect();
        let mut dir = PeerDirectory::new();
        for i in 0..peers {
            dir.recruit(
                PeerId(i),
                PeerInfo {
                    rtt_ms: 5.0 + (i as f64 * 7.0) % 40.0,
                    violations: 0,
                },
            );
        }
        let mut rng = StdRng::seed_from_u64(7);
        let mut acct = Accounting::new();
        for client in 0..clients {
            let assignments = dir.assign(&objects, policy, &mut rng);
            let wrapper = WrapperPage::generate(
                &mut origin,
                "/index.html",
                client as u64,
                &assignments,
                &mut acct,
                &MASTER,
                client == 0,
            );
            let mut loader = PageLoader::new(client as u64);
            let _ = loader.load(&wrapper, &mut peer_map, &mut origin);
        }
        let baseline = origin.page_bytes("/index.html").unwrap() * clients as u64;
        let total_origin = origin.origin_bytes + origin.wrapper_bytes;
        let served: Vec<u64> = peer_map.values().map(|p| p.bytes_served).collect();
        let total_served: u64 = served.iter().sum();
        let active = served.iter().filter(|&&b| b > 0).count();
        let max_share =
            served.iter().copied().max().unwrap_or(0) as f64 / total_served.max(1) as f64;
        t.push(vec![
            name.into(),
            pct(1.0 - total_origin as f64 / baseline as f64),
            format!("{active}/{peers}"),
            f2(max_share),
        ]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![
        offload_table(&[1, 10, 100, 1000], 20),
        policy_table(200, 20),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_exceeds_95_percent_at_scale() {
        // At small scale the peers' one-time cache fills dominate; at
        // 1000 views they amortize and the reduction passes 95%.
        let t = offload_table(&[100, 1000], 10);
        let small: f64 = t.rows[0][5].trim_end_matches('%').parse().unwrap();
        assert!(small > 85.0, "origin reduction {small}%");
        let large: f64 = t.rows[1][5].trim_end_matches('%').parse().unwrap();
        assert!(large > 95.0, "origin reduction {large}%");
    }

    #[test]
    fn cache_warmup_amortizes_origin_fills() {
        // With one view the peers all miss (origin fills); with many
        // views the fills amortize.
        let one = run_once(1, 5, SelectionPolicy::RoundRobin, 1);
        let many = run_once(100, 5, SelectionPolicy::RoundRobin, 1);
        let one_ratio = (one.origin_bytes + one.wrapper_bytes) as f64 / one.baseline_bytes as f64;
        let many_ratio =
            (many.origin_bytes + many.wrapper_bytes) as f64 / many.baseline_bytes as f64;
        assert!(many_ratio < one_ratio / 5.0, "{one_ratio} -> {many_ratio}");
    }

    #[test]
    fn policies_all_offload_but_differ_in_spread() {
        let t = policy_table(50, 10);
        assert_eq!(t.len(), 4);
        for row in &t.rows {
            let reduction: f64 = row[1].trim_end_matches('%').parse().unwrap();
            assert!(reduction > 70.0, "{} reduction {reduction}%", row[0]);
        }
        // Proximity concentrates on fewer peers than round-robin.
        let rr_active: usize = t.rows[1][2].split('/').next().unwrap().parse().unwrap();
        let prox_active: usize = t.rows[2][2].split('/').next().unwrap().parse().unwrap();
        assert!(prox_active <= rr_active);
    }
}
