//! E24 — metro-scale engine: a 1k→1M-home scale sweep.
//!
//! The ROADMAP's north star is "millions of users"; every earlier
//! experiment topped out around a few hundred peers because the flow
//! engine re-ran global max-min filling on every flow event. This
//! experiment drives the rebuilt engine — incremental bottleneck-set
//! allocation, arena flow storage, calendar-queue scheduler, O(1)
//! hierarchical-city routing — with a churn + transfer workload over
//! [`metro`] cities of 1k, 10k, 100k and 1M homes, and reports:
//!
//! - **sim-seconds per wall-second** (the headline throughput), and
//! - **allocator work per flow event** (flows re-solved and links
//!   touched per start/completion/cancel).
//!
//! The pre-PR engine cost model ([`AllocMode::Global`]: settle every
//! flow on every advance, re-solve every flow on every event, scan all
//! flows for the next completion) runs the *same standing workload* at
//! 1k and 100k homes, so the speedup is measured, not extrapolated.
//! `BENCH_BUDGETS.txt` enforces a ≥10× floor at 100k homes plus an
//! allocator-work ceiling.
//!
//! Workload shape, per city: a standing pool of `homes/20` concurrent
//! flows (min 32). Every 10 ms of sim time the driver tops the pool
//! back up — two-thirds home→backbone, one-third home→home cross
//! traffic routed through the tree, sizes log-uniform 100 KB…51 MB,
//! every 4th flow rate-capped — and cancels ~2% of the pool (churn).
//! Flow completions drain through the calendar-queue engine.

use crate::table::{f2, Table};
use hpop_netsim::netsim::NetSim;
use hpop_netsim::presets::{metro, MetroNetwork, MetroParams};
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_netsim::topology::DirLinkId;
use hpop_netsim::units::{Bandwidth, KB};
use hpop_netsim::{AllocMode, AllocStats, FlowId};
use std::time::Instant;

/// Maintain-tick cadence of the workload driver.
const TICK: SimDuration = SimDuration::from_nanos(10_000_000);

/// xorshift64* — deterministic, seedable, no deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed ^ 0x9E3779B97F4A7C15 | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One measured point of the sweep.
pub struct LegResult {
    /// City size (homes).
    pub homes: usize,
    /// Engine under test.
    pub mode: AllocMode,
    /// Simulated seconds covered by the measurement window.
    pub sim_secs: f64,
    /// Wall-clock seconds the window took.
    pub wall_secs: f64,
    /// Flow events (starts + completions + cancels) in the window.
    pub flow_events: u64,
    /// Allocator work counters over the window.
    pub stats: AllocStats,
    /// Engine events executed in the window.
    pub engine_events: u64,
}

impl LegResult {
    /// Simulated seconds per wall-clock second.
    pub fn sims_per_wall(&self) -> f64 {
        self.sim_secs / self.wall_secs.max(1e-9)
    }
    /// Flows re-solved per flow event.
    pub fn flows_resolved_per_event(&self) -> f64 {
        self.stats.flows_reallocated as f64 / self.flow_events.max(1) as f64
    }
    /// Links touched by the allocator per flow event.
    pub fn links_per_event(&self) -> f64 {
        self.stats.links_touched as f64 / self.flow_events.max(1) as f64
    }
}

struct Driver<'a> {
    city: &'a MetroNetwork,
    rng: Rng,
    target: usize,
    ring: Vec<FlowId>,
    buf: Vec<DirLinkId>,
}

impl Driver<'_> {
    fn tick(&mut self, sim: &mut NetSim) {
        let homes = self.city.home_count() as u64;
        while sim.state.net.active_count() < self.target {
            let a = self.rng.below(homes) as usize;
            let bytes = (100 * KB) << self.rng.below(10);
            let cap = if self.rng.below(4) == 0 {
                Some(Bandwidth::mbps(200.0))
            } else {
                None
            };
            let id = if self.rng.below(3) == 0 {
                let mut b = self.rng.below(homes) as usize;
                if b == a {
                    b = (b + 1) % homes as usize;
                }
                self.city.path_between(a, b, &mut self.buf);
                sim.start_transfer_on_hops(
                    self.city.homes[a],
                    self.city.homes[b],
                    &self.buf,
                    bytes,
                    cap,
                )
            } else {
                sim.start_transfer_on_hops(
                    self.city.homes[a],
                    self.city.backbone,
                    &self.city.up_hops(a),
                    bytes,
                    cap,
                )
            };
            self.ring.push(id);
        }
        // Churn: cancel ~2% of the pool each tick. Stale ids (already
        // completed) are no-ops thanks to generational FlowIds.
        for _ in 0..(self.target / 50).max(1) {
            if self.ring.is_empty() {
                break;
            }
            let k = self.rng.below(self.ring.len() as u64) as usize;
            let id = self.ring.swap_remove(k);
            sim.cancel_transfer(id);
        }
        if self.ring.len() > 4 * self.target {
            self.ring.drain(..self.target); // drop oldest (mostly done)
        }
    }
}

/// Runs ticks until `until`, topping the pool up at every tick.
fn drive(sim: &mut NetSim, d: &mut Driver<'_>, until: SimTime) {
    loop {
        let now = sim.now();
        d.tick(sim);
        let next = now + TICK;
        if next > until {
            sim.run_until(until);
            return;
        }
        sim.run_until(next);
    }
}

/// Runs one sweep point: warm the city up to its standing pool (always
/// in incremental mode — the warm-up is not measured), optionally
/// switch to the legacy global engine, then measure `run_sim_s`
/// simulated seconds of the churn workload.
pub fn run_leg(
    homes: usize,
    mode: AllocMode,
    warm_sim_s: f64,
    run_sim_s: f64,
    seed: u64,
) -> LegResult {
    let city = metro(&MetroParams {
        homes,
        ..MetroParams::default()
    });
    let mut sim = NetSim::with_topology(city.topology.clone());
    let mut d = Driver {
        city: &city,
        rng: Rng::new(seed),
        target: (homes / 20).max(32),
        ring: Vec::new(),
        buf: Vec::new(),
    };
    let warm_end = SimTime::from_nanos((warm_sim_s * 1e9) as u64);
    drive(&mut sim, &mut d, warm_end);
    sim.set_alloc_mode(mode);

    let m = sim.metrics();
    let events_before = m.counter("netsim.flows.started").get()
        + m.counter("netsim.flows.completed").get()
        + m.counter("netsim.flows.cancelled").get();
    let stats_before = sim.alloc_stats();
    let engine_before = sim.events_run();

    let measure_end = warm_end + SimDuration::from_nanos((run_sim_s * 1e9) as u64);
    let started = Instant::now();
    drive(&mut sim, &mut d, measure_end);
    let wall_secs = started.elapsed().as_secs_f64();

    let m = sim.metrics();
    let events_after = m.counter("netsim.flows.started").get()
        + m.counter("netsim.flows.completed").get()
        + m.counter("netsim.flows.cancelled").get();
    let sa = sim.alloc_stats();
    let sb = stats_before;
    LegResult {
        homes,
        mode,
        sim_secs: run_sim_s,
        wall_secs,
        flow_events: events_after - events_before,
        stats: AllocStats {
            reallocations: sa.reallocations - sb.reallocations,
            flows_reallocated: sa.flows_reallocated - sb.flows_reallocated,
            rate_changes: sa.rate_changes - sb.rate_changes,
            links_touched: sa.links_touched - sb.links_touched,
            fill_rounds: sa.fill_rounds - sb.fill_rounds,
            full_resolves: sa.full_resolves - sb.full_resolves,
            list_scans: sa.list_scans - sb.list_scans,
            heap_pushes: sa.heap_pushes - sb.heap_pushes,
        },
        engine_events: sim.events_run() - engine_before,
    }
}

fn mode_tag(mode: AllocMode) -> &'static str {
    match mode {
        AllocMode::Global => "glob",
        AllocMode::Incremental => "inc",
    }
}

/// Folds legs into the E24 table and the budget-checked counters.
fn report(legs: &[LegResult]) -> Vec<Table> {
    let metrics = hpop_obs::metrics();
    let mut t = Table::new(
        "E24",
        "Metro-scale sweep: sim-s/wall-s and allocator work per flow event",
        &[
            "homes",
            "engine",
            "sim_s",
            "wall_s",
            "sim_s/wall_s",
            "flow_events",
            "flows_resolved/event",
            "links_touched/event",
        ],
    );
    for leg in legs {
        let tag = mode_tag(leg.mode);
        t.push(vec![
            leg.homes.to_string(),
            tag.into(),
            f2(leg.sim_secs),
            f2(leg.wall_secs),
            f2(leg.sims_per_wall()),
            leg.flow_events.to_string(),
            f2(leg.flows_resolved_per_event()),
            f2(leg.links_per_event()),
        ]);
        let p = format!("scale.n{}.{}", leg.homes, tag);
        metrics
            .counter(&format!("{p}.sims_per_wall_x1000"))
            .add((leg.sims_per_wall() * 1e3) as u64);
        metrics
            .counter(&format!("{p}.flow_events"))
            .add(leg.flow_events);
        metrics
            .counter(&format!("{p}.links_per_event_x1000"))
            .add((leg.links_per_event() * 1e3) as u64);
        metrics
            .counter(&format!("{p}.flows_resolved_per_event_x1000"))
            .add((leg.flows_resolved_per_event() * 1e3) as u64);
    }
    // Measured speedup wherever both engines ran the same city.
    for g in legs.iter().filter(|l| l.mode == AllocMode::Global) {
        if let Some(i) = legs
            .iter()
            .find(|l| l.homes == g.homes && l.mode == AllocMode::Incremental)
        {
            let speedup = i.sims_per_wall() / g.sims_per_wall().max(1e-12);
            metrics
                .counter(&format!("scale.n{}.speedup_x10", g.homes))
                .add((speedup * 10.0) as u64);
        }
    }
    vec![t]
}

/// Full sweep: before/after at 1k, the new engine at 10k/100k/1M, and
/// the legacy engine re-measured at 100k on the same standing workload
/// (a short window — it simulates ~3 orders of magnitude slower).
pub fn run_default() -> Vec<Table> {
    let legs = vec![
        run_leg(1_000, AllocMode::Global, 2.0, 5.0, 24),
        run_leg(1_000, AllocMode::Incremental, 2.0, 5.0, 24),
        run_leg(10_000, AllocMode::Incremental, 1.0, 3.0, 24),
        run_leg(100_000, AllocMode::Global, 1.0, 0.02, 24),
        run_leg(100_000, AllocMode::Incremental, 1.0, 2.0, 24),
        run_leg(1_000_000, AllocMode::Incremental, 0.3, 1.0, 24),
    ];
    report(&legs)
}

/// CI smoke preset (≤10k homes, un-pinned): before/after at 1k plus a
/// 10k point, small windows.
pub fn run_smoke() -> Vec<Table> {
    let legs = vec![
        run_leg(1_000, AllocMode::Global, 0.5, 1.0, 24),
        run_leg(1_000, AllocMode::Incremental, 0.5, 1.0, 24),
        run_leg(10_000, AllocMode::Incremental, 0.5, 1.0, 24),
    ];
    report(&legs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_leg_runs_and_counts_work() {
        let leg = run_leg(640, AllocMode::Incremental, 0.1, 0.2, 7);
        assert_eq!(leg.homes, 640);
        assert!(leg.flow_events > 0, "workload produced no flow events");
        assert!(leg.stats.reallocations > 0);
        assert!(leg.sim_secs > 0.0 && leg.wall_secs > 0.0);
    }

    #[test]
    fn global_leg_runs_on_same_workload() {
        let leg = run_leg(640, AllocMode::Global, 0.1, 0.1, 7);
        assert!(leg.flow_events > 0);
        assert!(leg.stats.full_resolves > 0, "global mode re-solves fully");
    }
}
