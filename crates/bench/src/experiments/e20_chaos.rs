//! E20 — chaos: the fault-injection fabric crossed with the unified
//! resilience layer.
//!
//! A NoCDN client fetches chunked pages through
//! [`ResilientFetcher`](hpop_nocdn::chunked::ResilientFetcher) while a
//! seeded [`FaultPlan`] injects crashes, slow peers (1% service rate),
//! corrupt responders, access-link loss, delay spikes, blackholes and
//! named partitions — all on the same deterministic clock as the E18/E19
//! churn schedule. Alongside, a cooperative cache absorbs the same crash
//! schedule through its stale-then-origin ladder.
//!
//! Headline assertions (enforced by `check_snapshot --budget`):
//!
//! - `chaos.delivery.success_bp >= 9990` — at least 99.9% of pages under
//!   the combined chaos preset are delivered *verified* (basis points).
//! - `chaos.corrupt.accepted <= 0` — corruption is always detected and
//!   repaired before a byte reaches the caller, in every fault mix.

use crate::table::{f2, pct, Table};
use hpop_crypto::sha256::Sha256;
use hpop_internet_home::coop::{CoopCache, FetchTier};
use hpop_netsim::faults::{FaultConfig, FaultPlan, PeerMode};
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_nocdn::chunked::ResilientFetcher;
use hpop_nocdn::origin::ContentProvider;
use hpop_nocdn::peer::{NoCdnPeer, PeerBehavior, PeerId};
use hpop_resilience::Deadline;
use std::collections::BTreeMap;

/// One named fault mix driven through the chaos harness.
pub struct FaultMix {
    /// Row label ("baseline", "crashes", "chaos", …).
    pub name: &'static str,
    /// The materialized plan for this mix.
    pub plan: FaultPlan,
}

/// The three standard mixes: fault-free baseline, crash/restart only,
/// and the combined chaos preset (every fault class at once).
pub fn standard_mixes(nodes: usize, horizon: SimTime, seed: u64) -> Vec<FaultMix> {
    let quiet = FaultConfig {
        slow_fraction: 0.0,
        corrupt_fraction: 0.0,
        loss_episodes_per_node: 0.0,
        delay_episodes_per_node: 0.0,
        blackhole_episodes_per_node: 0.0,
        partitions: 0,
        ..FaultConfig::chaos_preset(seed)
    };
    vec![
        FaultMix {
            name: "baseline",
            plan: FaultPlan::empty(horizon),
        },
        FaultMix {
            name: "crashes",
            plan: FaultPlan::generate(nodes, quiet, horizon),
        },
        FaultMix {
            name: "chaos",
            plan: FaultPlan::generate(nodes, FaultConfig::chaos_preset(seed), horizon),
        },
    ]
}

/// Outcome of one chaos run (one fault mix).
pub struct ChaosRunResult {
    /// Pages requested.
    pub attempts: u64,
    /// Pages delivered with the whole-object hash verified.
    pub delivered: u64,
    /// Pages whose final bytes failed verification (must stay zero —
    /// the "corrupted bytes accepted" counter).
    pub corrupt_accepted: u64,
    /// Distinct corrupt-serve detections fed to breakers.
    pub corrupt_detected: u64,
    /// Chunks that fell back to the origin.
    pub fallback_chunks: u64,
    /// Chunks that fired a hedged second fetch.
    pub hedged_chunks: u64,
    /// Median page completion, milliseconds of sim time.
    pub p50_ms: f64,
    /// 99th-percentile page completion, milliseconds of sim time.
    pub p99_ms: f64,
}

impl ChaosRunResult {
    /// Verified-delivery rate in basis points (9990 = 99.9%).
    pub fn success_bp(&self) -> u64 {
        if self.attempts == 0 {
            return 0;
        }
        self.delivered * 10_000 / self.attempts
    }
}

/// SplitMix64 — the deterministic per-request coin for loss draws.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives `pages` chunked page fetches, one per sim-second, through a
/// [`ResilientFetcher`] against `n` nodes under `plan`. Node 0 is the
/// requesting client; nodes `1..n` serve. At each request time the
/// plan's verdicts are projected onto the peer set: crashed or
/// unreachable peers become [`PeerBehavior::Unresponsive`], corrupt
/// responders corrupt, loss windows drop individual attempts (a
/// deterministic per-request coin), slow peers and delay spikes stretch
/// the latency oracle so hedging fires.
///
/// When `headline` is set the run also publishes the budget-enforced
/// counters `chaos.delivery.success_bp` (this mix's verified-delivery
/// rate) — only one mix per process may claim the headline.
pub fn run_chaos(
    n: usize,
    pages: u64,
    plan: &FaultPlan,
    seed: u64,
    headline: bool,
) -> ChaosRunResult {
    run_chaos_with(
        n,
        pages,
        plan,
        seed,
        headline,
        &mut ResilientFetcher::default(),
        |_, _, _| (),
    )
}

/// [`run_chaos`] with a caller-owned fetcher (so E22 can attach a
/// sampled span tracer and drain the trees afterwards) and a per-page
/// observer `(start, end, verified)` for burn-rate series.
pub fn run_chaos_with(
    n: usize,
    pages: u64,
    plan: &FaultPlan,
    seed: u64,
    headline: bool,
    fetcher: &mut ResilientFetcher,
    mut on_page: impl FnMut(SimTime, SimTime, bool),
) -> ChaosRunResult {
    assert!(n >= 2, "need a client and at least one serving peer");
    let mut origin = ContentProvider::new("cdn.example");
    let body: Vec<u8> = (0..65_536u32).map(|i| (i % 251) as u8).collect();
    let digest = Sha256::digest(&body);
    origin.put_object("/page.bin", body);

    let metrics = hpop_obs::metrics();
    let page_ms = metrics.histogram("chaos.page.ms");

    let client = 0usize;
    let order: Vec<PeerId> = (1..n as u32).map(PeerId).collect();
    let n_chunks = 8;
    // Kept strictly under the hedge min_trigger floor so an
    // all-healthy fleet never sits on the >= trigger boundary.
    let base_lat = SimDuration::from_millis(10);

    let mut result = ChaosRunResult {
        attempts: 0,
        delivered: 0,
        corrupt_accepted: 0,
        corrupt_detected: 0,
        fallback_chunks: 0,
        hedged_chunks: 0,
        p50_ms: 0.0,
        p99_ms: 0.0,
    };
    let mut latencies = Vec::with_capacity(pages as usize);

    for page in 0..pages {
        let start = SimTime::from_secs(page);
        // Project the plan onto this instant: behavior per serving peer.
        let mut peers: BTreeMap<PeerId, NoCdnPeer> = BTreeMap::new();
        for node in 1..n {
            let id = PeerId(node as u32);
            let lost = {
                let p = plan.loss(client, node, start);
                p > 0.0 && (mix(seed ^ mix(page) ^ node as u64) as f64 / u64::MAX as f64) < p
            };
            let behavior = if !plan.reachable(client, node, start) || lost {
                PeerBehavior::Unresponsive
            } else {
                match plan.peer_mode(node, start) {
                    PeerMode::Corrupt => PeerBehavior::CorruptsContent,
                    _ => PeerBehavior::Honest,
                }
            };
            peers.insert(id, NoCdnPeer::with_behavior(id, behavior));
        }
        let latency_of = |p: PeerId| {
            let node = p.0 as usize;
            let service = match plan.peer_mode(node, start) {
                // A 1%-rate peer takes 100x as long to serve.
                PeerMode::Slow(rate) => {
                    SimDuration::from_secs_f64(base_lat.as_secs_f64() / rate.max(1e-6))
                }
                _ => base_lat,
            };
            service + plan.extra_delay(client, node, start)
        };

        let mut now = start;
        let deadline = Deadline::after(start, SimDuration::from_secs(30));
        let (report, _body) = fetcher.fetch(
            "/page.bin",
            n_chunks,
            &digest,
            &order,
            &mut peers,
            &mut origin,
            deadline,
            &mut now,
            &latency_of,
        );

        result.attempts += 1;
        if report.verified {
            result.delivered += 1;
        } else {
            result.corrupt_accepted += 1;
        }
        on_page(start, now, report.verified);
        result.corrupt_detected += report.corrupt_peers.len() as u64;
        result.fallback_chunks += report.fallback_chunks as u64;
        result.hedged_chunks += report.hedged_chunks as u64;
        let elapsed_ms = now.saturating_since(start).as_secs_f64() * 1e3;
        latencies.push(elapsed_ms);
        page_ms.record(elapsed_ms as u64);
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    result.p50_ms = percentile(&latencies, 0.50);
    result.p99_ms = percentile(&latencies, 0.99);

    metrics
        .counter("chaos.delivery.attempts")
        .add(result.attempts);
    metrics
        .counter("chaos.delivery.delivered")
        .add(result.delivered);
    metrics
        .counter("chaos.corrupt.accepted")
        .add(result.corrupt_accepted);
    metrics
        .counter("chaos.corrupt.detected")
        .add(result.corrupt_detected);
    metrics
        .counter("chaos.fallback.chunks")
        .add(result.fallback_chunks);
    if headline {
        metrics
            .counter("chaos.delivery.success_bp")
            .add(result.success_bp());
    }
    result
}

/// E20a — verified delivery / latency / waste across fault mixes.
pub fn delivery_table(n: usize, pages: u64, seed: u64) -> Table {
    let mut t = Table::new(
        "E20a",
        format!("NoCDN resilient delivery under fault injection ({n} nodes, {pages} pages)"),
        &[
            "fault mix",
            "pages",
            "delivered",
            "success (bp)",
            "corrupt detected",
            "corrupt accepted",
            "fallback chunks",
            "hedged chunks",
            "p50 ms",
            "p99 ms",
        ],
    );
    let horizon = SimTime::from_secs(pages);
    for m in standard_mixes(n, horizon, seed) {
        // Only the combined preset claims the budget-enforced headline.
        let r = run_chaos(n, pages, &m.plan, seed, m.name == "chaos");
        t.push(vec![
            m.name.to_string(),
            r.attempts.to_string(),
            r.delivered.to_string(),
            r.success_bp().to_string(),
            r.corrupt_detected.to_string(),
            r.corrupt_accepted.to_string(),
            r.fallback_chunks.to_string(),
            r.hedged_chunks.to_string(),
            f2(r.p50_ms),
            f2(r.p99_ms),
        ]);
    }
    t
}

/// Outcome of the coop-cache leg of the chaos run.
pub struct CoopChaosResult {
    /// Requests issued.
    pub requests: u64,
    /// Requests served from a stale lateral copy while degraded.
    pub stale: u64,
    /// Requests that crossed the uplink.
    pub origin: u64,
    /// Fraction of requests kept inside the neighborhood.
    pub containment: f64,
}

/// Drives a cooperative cache through the same crash schedule: members
/// the plan declares crashed go down (and recover on restart), and the
/// stale-then-origin ladder keeps requests off the uplink.
pub fn run_coop_chaos(n: usize, requests: u64, plan: &FaultPlan, seed: u64) -> CoopChaosResult {
    let mut coop = CoopCache::new(n as u32);
    let metrics = hpop_obs::metrics();
    let mut stale = 0u64;
    let mut origin = 0u64;
    for i in 0..requests {
        let now = SimTime::from_secs(i);
        for node in 0..n {
            let crashed = plan.peer_mode(node, now) == PeerMode::Crashed;
            coop.set_member_up(node as u32, !crashed);
        }
        // A sliding working set: new objects keep appearing through the
        // run, so first fills land while members are crashed and their
        // copies become stale-eligible when those members return.
        let member = (mix(seed ^ mix(i)) % n as u64) as u32;
        let obj = i / 8 + mix(seed ^ mix(i) ^ 0xc0) % 16;
        let url = hpop_http::url::Url::https("web.example", &format!("/obj{obj}"));
        if coop.up_count() == 0 {
            continue;
        }
        match coop.request_at(member, &url, 10_000, now) {
            FetchTier::Stale => stale += 1,
            FetchTier::Origin => origin += 1,
            _ => {}
        }
    }
    metrics.counter("chaos.coop.stale").add(stale);
    CoopChaosResult {
        requests,
        stale,
        origin,
        containment: coop.stats().containment(),
    }
}

/// E20b — cooperative-cache continuity under the crash schedule.
pub fn coop_table(n: usize, requests: u64, seed: u64) -> Table {
    let mut t = Table::new(
        "E20b",
        format!("coop cache degraded-mode continuity ({n} members, {requests} requests)"),
        &[
            "fault mix",
            "requests",
            "stale serves",
            "origin fetches",
            "containment",
        ],
    );
    let horizon = SimTime::from_secs(requests);
    for m in standard_mixes(n, horizon, seed ^ 0xc00b) {
        let r = run_coop_chaos(n, requests, &m.plan, seed);
        t.push(vec![
            m.name.to_string(),
            r.requests.to_string(),
            r.stale.to_string(),
            r.origin.to_string(),
            pct(r.containment),
        ]);
    }
    t
}

/// Default-scale run (the `exp_chaos` binary).
pub fn run_default() -> Vec<Table> {
    vec![delivery_table(24, 900, 0xe21), coop_table(12, 900, 0xe21)]
}

/// Reduced scale for CI smoke runs.
pub fn run_smoke() -> Vec<Table> {
    vec![delivery_table(12, 180, 0xe21), coop_table(8, 180, 0xe21)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_plan(n: usize, pages: u64, seed: u64) -> FaultPlan {
        FaultPlan::generate(
            n,
            FaultConfig::chaos_preset(seed),
            SimTime::from_secs(pages),
        )
    }

    #[test]
    fn combined_chaos_meets_delivery_floor_and_accepts_no_corruption() {
        let plan = chaos_plan(16, 300, 0xe20);
        let r = run_chaos(16, 300, &plan, 0xe20, false);
        assert!(
            r.success_bp() >= 9990,
            "delivery {} bp (delivered {}/{})",
            r.success_bp(),
            r.delivered,
            r.attempts
        );
        assert_eq!(r.corrupt_accepted, 0, "corruption must never be accepted");
    }

    #[test]
    fn chaos_actually_exercises_the_resilience_machinery() {
        let plan = chaos_plan(16, 300, 0xe20);
        let r = run_chaos(16, 300, &plan, 0xe20, false);
        // The preset contains corrupt responders and slow peers; the
        // fetcher must have detected corruption and fallen back at
        // least once across 300 pages.
        assert!(r.fallback_chunks > 0, "faults should force origin fallback");
        assert!(r.p99_ms >= r.p50_ms);
    }

    /// The committed-artifact scale: corrupt responders exist in the
    /// plan, every corrupt serve is caught before acceptance, and slow
    /// peers / delay spikes make the hedge fire.
    #[test]
    fn default_scale_detects_corruption_and_hedges() {
        let plan = chaos_plan(24, 900, 0xe21);
        let r = run_chaos(24, 900, &plan, 0xe21, false);
        assert!(r.corrupt_detected > 0, "plan must contain corrupt serves");
        assert_eq!(r.corrupt_accepted, 0);
        assert!(r.hedged_chunks > 0, "slow peers must trigger hedging");
        assert!(r.success_bp() >= 9990, "delivery {} bp", r.success_bp());
    }

    #[test]
    fn baseline_is_fault_free() {
        let plan = FaultPlan::empty(SimTime::from_secs(100));
        let r = run_chaos(8, 100, &plan, 1, false);
        assert_eq!(r.success_bp(), 10_000);
        assert_eq!(r.corrupt_detected, 0);
        assert_eq!(r.fallback_chunks, 0);
    }

    #[test]
    fn two_runs_are_deterministic() {
        let plan = chaos_plan(12, 120, 7);
        let a = run_chaos(12, 120, &plan, 7, false);
        let b = run_chaos(12, 120, &plan, 7, false);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.fallback_chunks, b.fallback_chunks);
        assert_eq!(a.hedged_chunks, b.hedged_chunks);
        assert_eq!(a.p99_ms, b.p99_ms);
    }

    #[test]
    fn coop_serves_stale_under_crash_schedule() {
        // The committed-artifact configuration (coop_table's chaos row).
        let plan = FaultPlan::generate(
            12,
            FaultConfig::chaos_preset(0xe21 ^ 0xc00b),
            SimTime::from_secs(900),
        );
        let r = run_coop_chaos(12, 900, &plan, 0xe21);
        assert_eq!(r.requests, 900);
        assert!(r.stale > 0, "crash windows must force stale serves");
        assert!(r.containment > 0.0);
    }
}
