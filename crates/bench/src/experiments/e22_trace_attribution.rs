//! E22 — causal trace attribution: where does the NoCDN fetch p99
//! actually come from under the E20 chaos preset?
//!
//! The flat chaos metrics say *that* the tail is slow; the span trees
//! say *why*. This experiment re-runs the E20 combined fault preset
//! with sampled causal tracing attached to the
//! [`ResilientFetcher`](hpop_nocdn::chunked::ResilientFetcher), builds
//! the span trees, and runs the critical-path sweep over the slowest
//! (p99) sampled requests. Alongside, a windowed delivery burn-rate
//! series feeds a [`SloMonitor`] continuously, and a second leg prices
//! the tracing machinery itself.
//!
//! Headline counters (enforced by `check_snapshot --budget`):
//!
//! - `trace.attrib.accounted_bp >= 9500` — the per-stage attribution
//!   accounts for at least 95% of the analyzed tail time (the sweep
//!   partitions exactly, so this holds at 10000 unless tree building
//!   regresses).
//! - `trace.overhead.pct_x100 <= 500` — sampled tracing costs at most
//!   5% of E20 sim throughput (percent × 100; pinned to 0 under
//!   `--stable`, enforced for real on the un-pinned CI smoke run).

use crate::experiments::e20_chaos::run_chaos_with;
use crate::harness::{self, ExpOptions};
use crate::table::Table;
use hpop_netsim::faults::{FaultConfig, FaultPlan};
use hpop_netsim::time::SimTime;
use hpop_nocdn::chunked::ResilientFetcher;
use hpop_obs::{attribute_slow, build_traces, AttributionReport, SpanTracer};
use hpop_obs::{SloKind, SloMonitor, SloSpec};
use std::time::Instant;

/// Sim-time window for the delivery burn-rate series (one minute).
const WINDOW_US: u64 = 60_000_000;

/// Default sampling rate: every 4th fetch carries a span tree.
pub const SAMPLE_ONE_IN: u64 = 4;

/// Per-window verified-delivery floor for the burn-rate SLO, basis
/// points. Looser than the run-wide 99.9% budget: a 60-page window
/// tolerates a couple of degraded pages without paging anyone.
pub const DELIVERY_FLOOR_BP: u64 = 9500;

/// Outcome of one traced chaos run.
pub struct TracedChaosOutcome {
    /// Spans drained from the fetcher's tracer.
    pub spans_recorded: usize,
    /// Spans evicted from the tracer ring (should stay 0).
    pub spans_dropped: u64,
    /// Well-formed span trees (sampled fetches).
    pub trees: usize,
    /// Traces rejected by tree validation (must stay 0).
    pub malformed: usize,
    /// Critical-path attribution over the p99 tail of sampled fetches.
    pub report: AttributionReport,
    /// Delivery-SLO breach windows observed during the run.
    pub slo_breaches: Vec<hpop_obs::SloBreach>,
    /// Windows the monitor evaluated.
    pub slo_windows: u64,
}

/// Runs the E20 combined chaos preset with a sampled span tracer on the
/// fetcher and a continuously-polled delivery burn-rate SLO; returns
/// the critical-path attribution of the sampled p99 tail.
pub fn run_traced_chaos(n: usize, pages: u64, seed: u64, sample_one_in: u64) -> TracedChaosOutcome {
    let horizon = SimTime::from_secs(pages);
    let plan = FaultPlan::generate(n, FaultConfig::chaos_preset(seed), horizon);
    let mut fetcher = ResilientFetcher {
        spans: SpanTracer::new(1 << 18),
        ..ResilientFetcher::default()
    };
    fetcher.spans.enable();
    fetcher.spans.set_sampling(sample_one_in);

    let registry = hpop_obs::series_registry();
    let total = registry.series("nocdn.delivery.total", WINDOW_US);
    let good = registry.series("nocdn.delivery.good", WINDOW_US);
    let mut slo = SloMonitor::new(registry.clone());
    slo.add(SloSpec {
        name: "nocdn.delivery-success".into(),
        kind: SloKind::RatioFloorBp {
            good: "nocdn.delivery.good".into(),
            total: "nocdn.delivery.total".into(),
            floor_bp: DELIVERY_FLOOR_BP,
        },
    });

    run_chaos_with(n, pages, &plan, seed, false, &mut fetcher, |_, end, ok| {
        let t_us = end.as_nanos() / 1_000;
        total.incr(t_us);
        if ok {
            good.incr(t_us);
        }
        slo.poll(t_us);
    });
    slo.finish(horizon.as_nanos() / 1_000);

    let records = fetcher.spans.take();
    let (trees, malformed) = build_traces(&records);
    let report = attribute_slow(&trees, 0.99);
    TracedChaosOutcome {
        spans_recorded: records.len(),
        spans_dropped: fetcher.spans.dropped(),
        trees: trees.len(),
        malformed,
        report,
        slo_breaches: slo.breaches().to_vec(),
        slo_windows: slo.windows_evaluated(),
    }
}

/// E22a — per-stage attribution of the sampled p99 tail. Publishes the
/// budget-enforced `trace.attrib.accounted_bp` counter and deposits the
/// full report into the snapshot's `latency_attribution` section.
pub fn attribution_table(n: usize, pages: u64, seed: u64) -> Table {
    let out = run_traced_chaos(n, pages, seed, SAMPLE_ONE_IN);
    let metrics = hpop_obs::metrics();
    metrics
        .counter("trace.attrib.accounted_bp")
        .add(out.report.accounted_bp());
    metrics
        .counter("trace.attrib.traces")
        .add(out.report.traces_analyzed);
    metrics.counter("trace.trees.sampled").add(out.trees as u64);
    metrics
        .counter("trace.trees.malformed")
        .add(out.malformed as u64);
    metrics
        .counter("trace.spans.recorded")
        .add(out.spans_recorded as u64);
    metrics
        .counter("trace.spans.dropped")
        .add(out.spans_dropped);
    metrics
        .counter("slo.breach.windows")
        .add(out.slo_breaches.len() as u64);
    metrics
        .counter("slo.windows.evaluated")
        .add(out.slo_windows);
    harness::stash_attribution(out.report.clone());
    harness::stash_slo_breaches(out.slo_breaches.clone());

    let mut t = Table::new(
        "E22a",
        format!(
            "NoCDN p99 latency attribution under chaos ({n} nodes, {pages} pages, \
             1-in-{SAMPLE_ONE_IN} sampled; {} of {} sampled traces at/above {} us)",
            out.report.traces_analyzed, out.trees, out.report.threshold_us
        ),
        &["stage", "us", "share (bp)"],
    );
    let total = out.report.total_us.max(1);
    // Slowest stage first: the table answers "where does the tail go?"
    let mut stages: Vec<(&String, &u64)> = out.report.stages.iter().collect();
    stages.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (stage, us) in stages {
        t.push(vec![
            stage.clone(),
            us.to_string(),
            (us * 10_000 / total).to_string(),
        ]);
    }
    t.push(vec![
        "(accounted)".into(),
        out.report.accounted_us.to_string(),
        out.report.accounted_bp().to_string(),
    ]);
    t
}

/// E22b — what the tracing machinery costs. Publishes the
/// budget-enforced `trace.overhead.pct_x100` ceiling (sampled tracing
/// vs no tracing on the same chaos workload, percent × 100) and the
/// informational `trace.overhead.disabled_ns` per-call cost of a
/// disabled tracer. Under `--stable` both are pinned to 0 so the
/// committed artifact stays byte-identical; CI smoke-runs this
/// experiment *without* `--stable` to enforce the real ceiling.
pub fn overhead_table(n: usize, pages: u64, seed: u64, stable: bool) -> Table {
    let mut t = Table::new(
        "E22b",
        format!("tracing overhead on the chaos workload ({n} nodes, {pages} pages)"),
        &["measurement", "value"],
    );
    let (disabled_ns, untraced_ms, traced_ms, pct_x100) = if stable {
        (0u64, 0u64, 0u64, 0u64)
    } else {
        measure_overhead(n, pages, seed)
    };
    let metrics = hpop_obs::metrics();
    metrics
        .counter("trace.overhead.disabled_ns")
        .add(disabled_ns);
    metrics.counter("trace.overhead.pct_x100").add(pct_x100);
    t.push(vec![
        "disabled tracer ns/op".into(),
        disabled_ns.to_string(),
    ]);
    t.push(vec![
        "untraced run ms (best of 3)".into(),
        untraced_ms.to_string(),
    ]);
    t.push(vec![
        format!("1-in-{SAMPLE_ONE_IN} sampled run ms (best of 3)"),
        traced_ms.to_string(),
    ]);
    t.push(vec!["overhead (percent x100)".into(), pct_x100.to_string()]);
    t
}

/// `(disabled_ns_per_op, untraced_ms, traced_ms, overhead_pct_x100)` —
/// wall-clock, best-of-3 on each side to squeeze out scheduler noise.
fn measure_overhead(n: usize, pages: u64, seed: u64) -> (u64, u64, u64, u64) {
    // A disabled tracer's root() is the cost every un-traced hot path
    // pays: amortize over enough calls to resolve sub-ns costs.
    let disabled = SpanTracer::new(16);
    const OPS: u64 = 4_000_000;
    let started = Instant::now();
    for _ in 0..OPS {
        std::hint::black_box(disabled.root());
    }
    let disabled_ns = (started.elapsed().as_nanos() as u64).div_ceil(OPS);

    let horizon = SimTime::from_secs(pages);
    let plan = FaultPlan::generate(n, FaultConfig::chaos_preset(seed), horizon);
    let time_run = |sampling: Option<u64>| -> u64 {
        (0..3)
            .map(|_| {
                let mut fetcher = ResilientFetcher::default();
                if let Some(one_in) = sampling {
                    fetcher.spans = SpanTracer::new(1 << 18);
                    fetcher.spans.enable();
                    fetcher.spans.set_sampling(one_in);
                }
                let started = Instant::now();
                run_chaos_with(n, pages, &plan, seed, false, &mut fetcher, |_, _, _| ());
                started.elapsed().as_micros() as u64
            })
            .min()
            .expect("three runs")
    };
    let untraced_us = time_run(None).max(1);
    let traced_us = time_run(Some(SAMPLE_ONE_IN));
    let pct_x100 = traced_us.saturating_sub(untraced_us) * 10_000 / untraced_us;
    (
        disabled_ns,
        untraced_us / 1_000,
        traced_us / 1_000,
        pct_x100,
    )
}

/// Default-scale run (the `exp_trace_attribution` binary; the committed
/// artifact uses `--stable`, which pins the overhead leg to zero).
pub fn run_default(opts: &ExpOptions) -> Vec<Table> {
    vec![
        attribution_table(24, 900, 0xe22),
        overhead_table(12, 300, 0xe22, opts.stable),
    ]
}

/// Reduced scale for CI smoke runs (run *without* `--stable` so the
/// overhead ceiling is measured for real).
pub fn run_smoke(opts: &ExpOptions) -> Vec<Table> {
    vec![
        attribution_table(12, 180, 0xe22),
        overhead_table(8, 120, 0xe22, opts.stable),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion: under the committed chaos preset the
    /// sweep accounts for >= 95% of the sampled p99 tail (in fact all
    /// of it — the sweep partitions), with zero malformed trees.
    #[test]
    fn attribution_accounts_the_tail() {
        let out = run_traced_chaos(12, 180, 0xe22, SAMPLE_ONE_IN);
        assert!(out.trees > 0, "sampling must keep some traces");
        assert_eq!(out.malformed, 0, "every sampled fetch must form a tree");
        assert_eq!(out.spans_dropped, 0, "ring must not overflow at this scale");
        assert!(out.report.traces_analyzed > 0);
        assert!(
            out.report.accounted_bp() >= 9_500,
            "accounted only {} bp",
            out.report.accounted_bp()
        );
        // The chaos preset has slow peers and corrupt responders: the
        // tail must show more than idle transfer time.
        assert!(out.report.stages.contains_key("transfer"));
        let known = [
            "request",
            "queue",
            "transfer",
            "retry",
            "hedge",
            "verify",
            "origin_fallback",
        ];
        for stage in out.report.stages.keys() {
            assert!(known.contains(&stage.as_str()), "unknown stage {stage}");
        }
    }

    #[test]
    fn traced_runs_are_deterministic() {
        let a = run_traced_chaos(8, 120, 7, SAMPLE_ONE_IN);
        let b = run_traced_chaos(8, 120, 7, SAMPLE_ONE_IN);
        assert_eq!(a.spans_recorded, b.spans_recorded);
        assert_eq!(a.trees, b.trees);
        assert_eq!(a.report, b.report);
        assert_eq!(a.slo_breaches, b.slo_breaches);
    }

    #[test]
    fn sampling_thins_the_span_stream() {
        let dense = run_traced_chaos(8, 120, 7, 1);
        let sparse = run_traced_chaos(8, 120, 7, 8);
        assert_eq!(dense.trees, 120, "1-in-1 keeps every fetch");
        assert!(sparse.trees < dense.trees / 2);
        assert!(sparse.spans_recorded < dense.spans_recorded / 2);
    }
}
