//! E12 — attic lock mediation and dual-write consistency (§IV-A).
//!
//! "WebDAV further mediates access from multiple clients through file
//! locking … allowing changes and shared access by multiple actors,
//! through multiple applications, while maintaining a single source for
//! a file." A write-storm of concurrent applications against one file,
//! with three coordination disciplines; plus the health-records
//! dual-write invariant (provider copy == attic copy).

use crate::table::{pct, Table};
use hpop_attic::grant::AccessGrant;
use hpop_attic::health::{aggregate_history, HealthRecord, MedicalProvider};
use hpop_attic::server::AtticServer;
use hpop_core::auth::{Permission, TokenVerifier};
use hpop_http::message::{Method, Request, StatusCode};
use hpop_http::url::Url;
use hpop_netsim::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

fn url(p: &str) -> Url {
    Url::https("attic.home", p)
}

/// One write-storm run. Each of `writers` applications performs `rounds`
/// read-modify-write cycles appending its own marker; interleaving is
/// random. Returns (applied updates, lost updates, rejected attempts).
fn storm(writers: usize, rounds: usize, discipline: &str, seed: u64) -> (u64, u64, u64) {
    let mut attic = AtticServer::new(TokenVerifier::new([1u8; 32]));
    attic.handle_local(&Request::put(url("/doc"), &b""[..]), SimTime::ZERO);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut applied = 0u64;
    let mut rejected = 0u64;
    let mut now_s = 1u64;
    // Each logical update: GET (capture etag), then PUT appending a byte.
    let mut schedule: Vec<usize> = (0..writers)
        .flat_map(|w| std::iter::repeat_n(w, rounds))
        .collect();
    // Random interleaving.
    for i in (1..schedule.len()).rev() {
        let j = rng.gen_range(0..=i);
        schedule.swap(i, j);
    }
    // To model *concurrency*, each writer's read happens `gap` operations
    // before its write: another writer may write in between.
    let mut pending: Vec<(usize, String, Vec<u8>)> = Vec::new(); // (writer, etag, body)
    for (step, &w) in schedule.iter().enumerate() {
        now_s += 1;
        let now = SimTime::from_secs(now_s);
        match discipline {
            "unconditional" | "if-match" => {
                // Read now, write a couple of steps later — another app
                // may write in between (that is the race).
                let get = attic.handle_local(&Request::get(url("/doc")), now);
                let etag = get.headers.get("etag").unwrap_or_default().to_owned();
                let mut body = get.body.to_vec();
                body.push(b'a' + (w % 26) as u8);
                pending.push((w, etag, body));
                let flush = if step == schedule.len() - 1 {
                    pending.len()
                } else {
                    pending.len().saturating_sub(2)
                };
                for _ in 0..flush {
                    let (_, etag, body) = pending.remove(0);
                    let mut req = Request::put(url("/doc"), body);
                    if discipline == "if-match" {
                        req = req.with_header("if-match", etag);
                    }
                    let resp = attic.handle_local(&req, now);
                    if resp.status.is_success() {
                        applied += 1;
                    } else {
                        rejected += 1;
                    }
                }
            }
            "lock" => {
                // LOCK, read, write, UNLOCK: fully serialized.
                let lock = attic.handle_local(
                    &Request::new(Method::Lock, url("/doc"))
                        .with_header("x-lock-owner", format!("app{w}")),
                    now,
                );
                if lock.status != StatusCode::OK {
                    rejected += 1;
                    continue;
                }
                let token = lock.headers.get("lock-token").unwrap().to_owned();
                let get = attic.handle_local(&Request::get(url("/doc")), now);
                let mut body = get.body.to_vec();
                body.push(b'a' + (w % 26) as u8);
                let put = attic.handle_local(
                    &Request::put(url("/doc"), body).with_header("lock-token", token.clone()),
                    now,
                );
                if put.status.is_success() {
                    applied += 1;
                } else {
                    rejected += 1;
                }
                attic.handle_local(
                    &Request::new(Method::Unlock, url("/doc")).with_header("lock-token", token),
                    now,
                );
            }
            other => panic!("unknown discipline {other}"),
        }
    }
    let final_len = attic
        .handle_local(&Request::get(url("/doc")), SimTime::from_secs(now_s + 1))
        .body
        .len() as u64;
    // Updates that "succeeded" but whose append was clobbered.
    let lost = applied.saturating_sub(final_len);
    (applied, lost, rejected)
}

/// The write-storm comparison.
pub fn run(writers: usize, rounds: usize) -> Table {
    let mut t = Table::new(
        "E12a",
        format!("{writers} concurrent apps x {rounds} read-modify-write cycles on one attic file"),
        &[
            "discipline",
            "updates applied",
            "updates lost",
            "attempts rejected",
            "lost rate",
        ],
    );
    for discipline in ["unconditional", "if-match", "lock"] {
        let (applied, lost, rejected) = storm(writers, rounds, discipline, 42);
        t.push(vec![
            discipline.into(),
            applied.to_string(),
            lost.to_string(),
            rejected.to_string(),
            pct(lost as f64 / (applied.max(1)) as f64),
        ]);
    }
    t
}

/// Health-records dual-write invariant across providers.
pub fn health_table(providers: usize, records_each: usize) -> Table {
    let verifier = TokenVerifier::new([11u8; 32]);
    let mut server = AtticServer::new(verifier.clone());
    server.store_mut().mkcol("/health").unwrap();
    let attic = Rc::new(RefCell::new(server));
    let mut locals = 0usize;
    for p in 0..providers {
        let slug = format!("clinic-{p:02}");
        let token = verifier.issue(
            &slug,
            &format!("/health/{slug}"),
            Permission::ReadWrite,
            SimTime::from_secs(1_000_000),
        );
        let grant = AccessGrant::new(Url::https("patient.hpop.example", "/"), token).encode();
        let mut provider = MedicalProvider::new(&slug);
        provider
            .enroll("jane", &grant, attic.clone(), SimTime::from_secs(1))
            .expect("enrollment succeeds");
        for r in 0..records_each {
            provider
                .add_record(
                    "jane",
                    HealthRecord {
                        id: format!("rec-{r:03}"),
                        body: format!("{{\"provider\":\"{slug}\",\"rec\":{r}}}"),
                    },
                    SimTime::from_secs(2 + r as u64),
                )
                .expect("dual write succeeds");
        }
        locals += provider.local_copies("jane").len();
    }
    let aggregated = aggregate_history(&attic.borrow(), "/health");
    let mut t = Table::new(
        "E12b",
        format!("health-records dual write: {providers} providers x {records_each} records"),
        &["where", "records", "complete history available"],
    );
    t.push(vec![
        "provider regulatory copies".into(),
        locals.to_string(),
        "-".into(),
    ]);
    t.push(vec![
        "patient attic (aggregated)".into(),
        aggregated.len().to_string(),
        if aggregated.len() == providers * records_each {
            "yes"
        } else {
            "NO"
        }
        .into(),
    ]);
    t
}

/// The §IV-A alternative-design ablation: attic vs encrypted cloud.
/// Same concurrent multi-application workload; the attic mediates with
/// locks, the encrypted cloud (which only sees ciphertext) cannot — and
/// every cloud access hands the decryption key to another party.
pub fn alternative_table(writers: usize, rounds: usize) -> Table {
    use hpop_attic::cloudenc::EncryptedCloudStore;
    let key = [3u8; 32];
    let mut cloud = EncryptedCloudStore::new();
    cloud.upload("doc", &key, b"");
    let mut rng = StdRng::seed_from_u64(42);
    let mut schedule: Vec<usize> = (0..writers)
        .flat_map(|w| std::iter::repeat_n(w, rounds))
        .collect();
    for i in (1..schedule.len()).rev() {
        let j = rng.gen_range(0..=i);
        schedule.swap(i, j);
    }
    // Same staleness model as `storm`: each checkin happens two steps
    // after its checkout.
    let mut pending = Vec::new();
    let mut lost = 0u64;
    let mut applied = 0u64;
    for (step, &w) in schedule.iter().enumerate() {
        let co = cloud
            .checkout("doc", &key, &format!("app{w}"))
            .expect("object exists");
        let mut edited = co.plaintext.clone();
        edited.push(b'a' + (w % 26) as u8);
        pending.push((co, edited));
        let flush = if step == schedule.len() - 1 {
            pending.len()
        } else {
            pending.len().saturating_sub(2)
        };
        for _ in 0..flush {
            let (co, edited) = pending.remove(0);
            if cloud.checkin(&co, &key, &edited) {
                lost += 1;
            }
            applied += 1;
        }
    }
    // Attic numbers for the same workload shape come from `storm`.
    let (attic_applied, attic_lost, _) = storm(writers, rounds, "lock", 42);

    let mut t = Table::new(
        "E12c",
        format!(
            "attic vs encrypted-cloud alternative ({writers} apps x {rounds} edits on one file)"
        ),
        &[
            "design",
            "updates applied",
            "updates lost",
            "parties holding the key",
        ],
    );
    t.push(vec![
        "data attic (WebDAV locks)".into(),
        attic_applied.to_string(),
        attic_lost.to_string(),
        "0 (data never leaves home control)".into(),
    ]);
    t.push(vec![
        "encrypted cloud (key handout)".into(),
        applied.to_string(),
        lost.to_string(),
        cloud.key_exposures().len().to_string(),
    ]);
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![run(8, 40), health_table(5, 20), alternative_table(8, 40)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconditional_writes_lose_updates_locks_do_not() {
        let t = run(6, 25);
        let lost = |i: usize| -> u64 { t.rows[i][2].parse().unwrap() };
        assert!(lost(0) > 0, "unconditional must lose updates");
        assert_eq!(lost(1), 0, "if-match must not lose updates");
        assert_eq!(lost(2), 0, "locks must not lose updates");
        // if-match pays with rejections instead.
        let rejected_ifmatch: u64 = t.rows[1][3].parse().unwrap();
        assert!(rejected_ifmatch > 0);
        // locks serialize: every update applies.
        let applied_lock: u64 = t.rows[2][1].parse().unwrap();
        assert_eq!(applied_lock, 6 * 25);
    }

    #[test]
    fn encrypted_cloud_loses_updates_and_leaks_keys() {
        let t = alternative_table(6, 25);
        let attic_lost: u64 = t.rows[0][2].parse().unwrap();
        let cloud_lost: u64 = t.rows[1][2].parse().unwrap();
        assert_eq!(attic_lost, 0);
        assert!(cloud_lost > 0, "cloud must exhibit lost updates");
        let exposures: u64 = t.rows[1][3].parse().unwrap();
        assert_eq!(exposures, 6 * 25);
    }

    #[test]
    fn dual_write_keeps_attic_complete() {
        let t = health_table(3, 5);
        assert_eq!(t.rows[1][1], "15");
        assert_eq!(t.rows[1][2], "yes");
        assert_eq!(t.rows[0][1], "15");
    }
}
