//! E3 — bottleneck shift (§II "Bottleneck Shifts").
//!
//! Paper claim: "each home is served by a 1 Gbps link, but the roughly
//! 100 homes are then immediately aggregated onto a shared 10 Gbps link
//! … there will be periods when the aggregate link will become the
//! bottleneck, which is different from the currently common case of the
//! last mile being the bottleneck." Sweep the number of simultaneously
//! active homes and watch the per-flow rate pivot from edge-limited
//! (1 Gbps) to aggregation-limited (10/N Gbps).

use crate::table::{f2, Table};
use hpop_netsim::netsim::NetSim;
use hpop_netsim::presets::{ccz, CczParams};
use hpop_netsim::units::MB;
use std::cell::RefCell;
use std::rc::Rc;

/// Runs one sweep point: `active` homes each pull a bulk transfer.
fn per_flow_rate_mbps(active: usize) -> f64 {
    let net = ccz(&CczParams {
        homes: active.max(1),
        ..CczParams::default()
    });
    let mut sim = NetSim::with_topology(net.topology.clone());
    let rates = Rc::new(RefCell::new(Vec::new()));
    for h in 0..active {
        let r2 = rates.clone();
        sim.start_transfer(net.server, net.homes[h], 500 * MB, move |_, info| {
            r2.borrow_mut().push(info.mean_rate.as_mbps());
        });
    }
    sim.run();
    let rates = rates.borrow();
    rates.iter().sum::<f64>() / rates.len().max(1) as f64
}

/// Runs the sweep.
pub fn run(actives: &[usize]) -> Table {
    let mut t = Table::new(
        "E3",
        "bottleneck shift: 1 Gbps homes on a shared 10 Gbps aggregation link",
        &[
            "active homes",
            "per-flow rate (Mbps)",
            "expected (Mbps)",
            "bottleneck",
        ],
    );
    for &n in actives {
        let measured = per_flow_rate_mbps(n);
        let expected = (10_000.0 / n as f64).min(1_000.0);
        let location = if n <= 10 {
            "last mile (edge)"
        } else {
            "aggregation (shared)"
        };
        t.push(vec![
            n.to_string(),
            f2(measured),
            f2(expected),
            location.into(),
        ]);
    }
    t
}

/// Default sweep.
pub fn run_default() -> Vec<Table> {
    vec![run(&[1, 5, 10, 20, 50, 100])]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pivot_at_ten_homes() {
        let t = run(&[1, 10, 20, 40]);
        let rate = |i: usize| -> f64 { t.rows[i][1].parse().unwrap() };
        // 1 and 10 active homes: edge-limited at ~1000 Mbps each.
        assert!((rate(0) - 1000.0).abs() < 50.0, "{}", rate(0));
        assert!((rate(1) - 1000.0).abs() < 50.0, "{}", rate(1));
        // 20 homes: aggregation-limited at ~500 Mbps.
        assert!((rate(2) - 500.0).abs() < 30.0, "{}", rate(2));
        // 40 homes: ~250 Mbps.
        assert!((rate(3) - 250.0).abs() < 20.0, "{}", rate(3));
    }
}
