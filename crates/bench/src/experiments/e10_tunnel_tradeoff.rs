//! E10 — VPN vs NAT tunneling tradeoff (§IV-C "Client-to-Waypoint
//! Tunneling").
//!
//! "Once a client establishes a VPN tunnel …, this tunnel may be reused
//! … for any TCP connection to any server, without any additional
//! setup. The NAT mechanism requires signaling with the waypoint for
//! every new server address and port … On the other hand, VPN adds 36
//! bytes of per-packet overhead …, while NAT adds no extra bytes."
//!
//! Sweep (distinct destinations × flow size) and total each mechanism's
//! cost: signaling round trips plus encapsulation bytes. The crossover
//! is exactly where the paper's prose predicts: many destinations favor
//! VPN, large flows favor NAT.

use crate::table::Table;
use hpop_dcol::tunnel::{TunnelState, TunnelType};
use hpop_netsim::time::SimDuration;
use hpop_netsim::units::{format_bytes, KB, MB};

/// Cost of `flows` flows of `bytes` each to `destinations` distinct
/// servers through one waypoint (20 ms client↔waypoint RTT).
struct Cost {
    signaling_rtts: u32,
    setup_time: SimDuration,
    overhead_bytes: u64,
}

fn cost(kind: TunnelType, destinations: u32, flows_per_dst: u32, bytes: u64) -> Cost {
    let rtt = SimDuration::from_millis(20);
    let mut tunnel = TunnelState::new(kind);
    let mut setup_time = SimDuration::ZERO;
    let mut overhead = 0u64;
    for dst in 0..destinations {
        for _ in 0..flows_per_dst {
            setup_time += tunnel.prepare(dst as u64, 443, rtt);
            overhead += tunnel.wire_bytes(bytes, 1460) - bytes;
        }
    }
    Cost {
        signaling_rtts: tunnel.signaling_rtts,
        setup_time,
        overhead_bytes: overhead,
    }
}

/// Runs the sweep.
pub fn run() -> Table {
    let mut t = Table::new(
        "E10",
        "VPN (36 B/pkt, one-time join) vs NAT (0 B/pkt, per-destination signaling)",
        &[
            "workload",
            "vpn signaling",
            "vpn overhead",
            "nat signaling",
            "nat overhead",
            "cheaper (time @100Mbps)",
        ],
    );
    for (dsts, flows, bytes, label) in [
        (1u32, 1u32, 100 * KB, "1 dst x 1 flow x 100 KB"),
        (1, 1, 10 * MB, "1 dst x 1 flow x 10 MB"),
        (20, 1, 100 * KB, "20 dsts x 1 flow x 100 KB"),
        (20, 1, 10 * MB, "20 dsts x 1 flow x 10 MB"),
        (100, 3, 50 * KB, "100 dsts x 3 flows x 50 KB"),
    ] {
        let vpn = cost(TunnelType::Vpn, dsts, flows, bytes);
        let nat = cost(TunnelType::Nat, dsts, flows, bytes);
        // The paper's tradeoff is encapsulation bytes vs signaling
        // round trips; compare on total overhead *time* assuming a
        // 100 Mbps effective path.
        let time_of = |c: &Cost| c.setup_time.as_secs_f64() + c.overhead_bytes as f64 * 8.0 / 100e6;
        t.push(vec![
            label.into(),
            format!("{} rtts ({})", vpn.signaling_rtts, vpn.setup_time),
            format_bytes(vpn.overhead_bytes),
            format!("{} rtts ({})", nat.signaling_rtts, nat.setup_time),
            format_bytes(nat.overhead_bytes),
            if time_of(&vpn) <= time_of(&nat) {
                "VPN"
            } else {
                "NAT"
            }
            .into(),
        ]);
    }
    t
}

/// Latency-sensitivity view: time-to-first-byte penalty per new
/// destination.
pub fn ttfb_table() -> Table {
    let rtt = SimDuration::from_millis(20);
    let mut t = Table::new(
        "E10b",
        "setup delay before the Nth distinct destination's first byte",
        &["destination #", "vpn setup", "nat setup"],
    );
    let mut vpn = TunnelState::new(TunnelType::Vpn);
    let mut nat = TunnelState::new(TunnelType::Nat);
    for dst in 0..4u64 {
        let v = vpn.prepare(dst, 443, rtt);
        let n = nat.prepare(dst, 443, rtt);
        t.push(vec![format!("{}", dst + 1), format!("{v}"), format!("{n}")]);
    }
    t
}

/// Default-scale run.
pub fn run_default() -> Vec<Table> {
    vec![run(), ttfb_table()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_matches_paper_prose() {
        let t = run();
        // Bulk single-destination: NAT wins (zero per-packet tax).
        assert_eq!(t.rows[1][5], "NAT");
        // Many small-flow destinations: VPN wins (no per-dst signaling).
        assert_eq!(t.rows[4][5], "VPN");
    }

    #[test]
    fn vpn_pays_setup_once() {
        let t = ttfb_table();
        assert_eq!(t.rows[0][1], "40.000ms"); // 2 RTTs once
        assert_eq!(t.rows[1][1], "0ns");
        // NAT pays every destination.
        assert_eq!(t.rows[0][2], "20.000ms");
        assert_eq!(t.rows[3][2], "20.000ms");
    }

    #[test]
    fn overhead_is_exactly_36_bytes_per_packet() {
        let c = cost(TunnelType::Vpn, 1, 1, 1460 * 100);
        assert_eq!(c.overhead_bytes, 36 * 100);
        let n = cost(TunnelType::Nat, 1, 1, 1460 * 100);
        assert_eq!(n.overhead_bytes, 0);
    }
}
