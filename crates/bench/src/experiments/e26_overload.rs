//! E26 — overload robustness: flash-crowd collapse vs graceful
//! degradation.
//!
//! The question this experiment answers: when a metro-scale flash crowd
//! (10× arrival rate, regionally skewed onto one metro PoP, converging
//! on brand-new rising-head objects) hits the HPoP service layer, does
//! the city *collapse* or *degrade*? It drives the same service model
//! twice over a [`MetroParams`]-shaped city:
//!
//! - **controls off** — unbounded queues, every arrival accepted,
//!   background work never yields: the textbook congestion collapse.
//!   Queues convert overload into waiting time, so goodput (requests
//!   answered within the 1 s SLO) falls off a cliff even though the
//!   servers never stop working.
//! - **controls on** — the full `hpop-resilience` stack per
//!   neighborhood: token-bucket + AIMD [`Admission`] in front, a
//!   [`BoundedQueue`] whose fill fraction is the backpressure signal, a
//!   [`Brownout`] ladder (fresh → stale → redirect-to-origin → reject)
//!   driven by that signal, and a priority [`LoadShedder`] that drops
//!   anti-entropy, repair and prefetch work *before* any interactive
//!   request is touched.
//!
//! The crowd itself is [`FlashCrowd`] from `hpop-workloads`: a
//! trapezoidal rate envelope composed with a rising popularity head
//! whose objects start uncached everywhere (head warmth is learned by
//! serving misses), applied to the epicenter neighborhoods of one metro
//! PoP.
//!
//! Headline counters (epicenter-scoped, scale-free, enforced by
//! `BENCH_BUDGETS.txt` at both smoke and full scale):
//!
//! - `overload.on.epicenter.goodput_ratio_bp` — plateau goodput as
//!   basis points of pre-burst goodput; floor 9000 (≥ 90%). The
//!   controls-on city actually *gains* goodput under the crowd (more
//!   demand, bounded queues, background shed).
//! - `overload.off.epicenter.goodput_ratio_bp` — same ratio with
//!   controls off; ceiling 5000 (the collapse must be visible).
//! - `overload.{on,off}.epicenter.admitted_p99_ms` — p99 latency of
//!   requests served during the plateau: bounded near the SLO with
//!   controls on, seconds-to-minutes off.
//! - `overload.on.shed.interactive` — ceiling 0: the shed-order
//!   invariant, measured end to end.
//!
//! The network layer's own flash-crowd behavior (allocator-work
//! ceilings, zero steady-state allocation at 100k homes) is pinned
//! separately by `crates/netsim/tests/burst_audit.rs`; this experiment
//! models the *service* layer those flows feed, at one queueing tick
//! per 100 ms.

use crate::table::{f2, Table};
use hpop_netsim::presets::MetroParams;
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_resilience::{
    Admission, AdmissionConfig, BoundedQueue, Brownout, BrownoutLevel, LoadShedder, WorkClass,
};
use hpop_workloads::{FlashCrowd, FlashCrowdParams};

/// One queueing tick of the service model.
const TICK_MS: u64 = 100;
/// Pre-burst baseline window, in ticks (30 s).
const PRE_TICKS: u64 = 300;
/// Burst window (ramp + hold + decay), in ticks (90 s).
const BURST_TICKS: u64 = 900;
/// Post-burst recovery window, in ticks (30 s).
const RECOVERY_TICKS: u64 = 300;
/// Service capacity of one neighborhood appliance pool, in work units
/// per tick (a cache hit costs 0.5, a miss/origin fetch 1.0).
const CAP_UNITS: f64 = 6.0;
/// Capacity one background class consumes per tick when not shed.
const BG_COST: f64 = 0.5;
/// Baseline interactive arrivals per neighborhood per tick.
const BASE_RATE: f64 = 1.2;
/// The interactive SLO: a request answered within this is "goodput".
const SLO_MS: u32 = 1_000;
/// Steady-state cache hit probability for non-head objects.
const HIT_BASE: f64 = 0.7;
/// Per-served-miss warmth gain for rising-head objects (cache fill).
const WARMTH_GAIN: f64 = 0.05;
/// Probability a miss can be served stale once the ladder allows it.
const STALE_AVAILABLE: f64 = 0.6;
/// Retry hint attached to brownout `Reject`-rung refusals.
const REJECT_RETRY_MS: u64 = 500;
/// First tick of the crowd's plateau (burst onset + 10 s ramp).
const PLATEAU_FIRST: u64 = PRE_TICKS + 100;
/// One-past-last tick of the plateau (60 s hold).
const PLATEAU_END: u64 = PLATEAU_FIRST + 600;
/// Bounded interactive queue depth (controls on).
const QUEUE_CAP: usize = 24;

/// xorshift64* — deterministic, seedable, no deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed ^ 0x9E3779B97F4A7C15 | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The three measurement windows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Pre,
    Burst,
    Recovery,
}

impl Phase {
    fn of_tick(tick: u64) -> Phase {
        if tick < PRE_TICKS {
            Phase::Pre
        } else if tick < PRE_TICKS + BURST_TICKS {
            Phase::Burst
        } else {
            Phase::Recovery
        }
    }
    fn index(self) -> usize {
        match self {
            Phase::Pre => 0,
            Phase::Burst => 1,
            Phase::Recovery => 2,
        }
    }
    fn name(self) -> &'static str {
        match self {
            Phase::Pre => "pre",
            Phase::Burst => "burst",
            Phase::Recovery => "recovery",
        }
    }
    fn ticks(self) -> u64 {
        match self {
            Phase::Pre => PRE_TICKS,
            Phase::Burst => BURST_TICKS,
            Phase::Recovery => RECOVERY_TICKS,
        }
    }
}

/// Epicenter-scoped stats for one phase.
#[derive(Clone, Default)]
pub struct PhaseStats {
    /// Interactive arrivals offered (counted at arrival time).
    pub offered: u64,
    /// Requests served (counted at service time).
    pub served: u64,
    /// Served within the SLO.
    pub good: u64,
    /// End-to-end latencies (queue wait + service) of served requests,
    /// in milliseconds.
    latencies: Vec<u32>,
}

impl PhaseStats {
    /// Goodput per tick over the phase window.
    fn good_rate(&self, phase: Phase) -> f64 {
        self.good as f64 / phase.ticks().max(1) as f64
    }

    /// p99 latency of served requests, in ms (0 when none served).
    pub fn p99_ms(&mut self) -> u32 {
        if self.latencies.is_empty() {
            return 0;
        }
        let i = (self.latencies.len() - 1) * 99 / 100;
        *self.latencies.select_nth_unstable(i).1
    }
}

/// One controls-on or controls-off run of the city.
pub struct RunResult {
    /// Whether the overload controls were active.
    pub controls: bool,
    /// City size (homes).
    pub homes: usize,
    /// Neighborhoods (aggregation domains) in the city.
    pub hoods: usize,
    /// Neighborhoods inside the crowd's epicenter metro PoP.
    pub epicenter_hoods: usize,
    /// Epicenter-scoped stats, indexed by [`Phase::index`].
    pub phases: [PhaseStats; 3],
    /// Epicenter-scoped stats over the plateau (hold) window only —
    /// the headline collapse-vs-degradation measurement. The full
    /// burst phase includes the ramp, during which even the
    /// controls-off city briefly keeps up; the plateau is where the
    /// two regimes separate.
    pub plateau: PhaseStats,
    /// City-wide refusals (admission, backpressure, brownout reject).
    pub rejected: u64,
    /// Refusals carrying a positive `retry_after` hint.
    pub rejected_with_hint: u64,
    /// Interactive work shed by the priority shedder (must stay 0).
    pub shed_interactive: u64,
    /// Background work shed.
    pub shed_background: u64,
    /// Brownout rung transitions taken across all neighborhoods.
    pub brownout_transitions: u64,
    /// Deepest brownout rung any neighborhood reached.
    pub peak_level: BrownoutLevel,
}

impl RunResult {
    /// Plateau goodput as basis points of pre-burst goodput.
    pub fn goodput_ratio_bp(&self) -> u64 {
        let pre = self.phases[0].good_rate(Phase::Pre);
        let plateau = self.plateau.good as f64 / (PLATEAU_END - PLATEAU_FIRST) as f64;
        if pre <= 0.0 {
            return 0;
        }
        (plateau / pre * 10_000.0) as u64
    }
}

/// A queued interactive request.
#[derive(Clone, Copy)]
struct Req {
    /// Tick the request entered the queue.
    enqueued: u64,
    /// Originates in an epicenter neighborhood (scoped stats).
    epicenter: bool,
    /// Targets a rising-head object.
    head: bool,
    /// Holds an admission permit that must be completed.
    admitted: bool,
}

/// One neighborhood's service state.
struct Hood {
    queue: BoundedQueue<Req>,
    admission: Admission,
    brownout: Brownout,
    /// Cache warmth for the rising-head objects, `[0, 1]`.
    warmth: f64,
    /// Fractional-arrival accumulator.
    carry: f64,
}

fn admission_config() -> AdmissionConfig {
    AdmissionConfig {
        // 10 tokens per 100 ms tick: the rate gate that matters.
        rate_per_sec: 100.0,
        burst: 30.0,
        // Inflight = queued depth ≤ QUEUE_CAP, so AIMD is headroom
        // here; it still adapts if the queue-wait verdicts go bad.
        initial_limit: 64.0,
        min_limit: 8.0,
        max_limit: 256.0,
        add_per_success: 1.0,
        multiply_on_overload: 0.5,
        inflight_retry_after: SimDuration::from_millis(100),
    }
}

/// Drives one full pre → burst → recovery episode over a city of
/// `homes`, with the resilience stack active (`controls`) or bypassed.
pub fn run_city(homes: usize, controls: bool) -> RunResult {
    let params = MetroParams {
        homes,
        ..MetroParams::default()
    };
    let hoods_n = (params.homes / params.homes_per_agg).max(1);
    // The crowd's epicenter: the neighborhoods of one metro PoP.
    let epicenter_hoods = params.aggs_per_metro.min(hoods_n);

    let crowd = FlashCrowd::new(
        FlashCrowdParams {
            start: SimTime::from_nanos(PRE_TICKS * TICK_MS * 1_000_000),
            ramp: SimDuration::from_secs(10),
            hold: SimDuration::from_secs(60),
            decay: SimDuration::from_secs(20),
            magnitude: 10.0,
            regions: hoods_n as u32,
            epicenter: 0,
            ..FlashCrowdParams::default()
        },
        1_000,
    );
    let head_mass = crowd.params().head_mass;

    let t0 = SimTime::ZERO;
    let queue_cap = if controls { QUEUE_CAP } else { 1 << 20 };
    let mut hoods: Vec<Hood> = (0..hoods_n)
        .map(|_| Hood {
            queue: BoundedQueue::new(queue_cap),
            admission: Admission::new(admission_config(), t0),
            brownout: Brownout::default(),
            warmth: 0.0,
            carry: 0.0,
        })
        .collect();
    let mut shedder = LoadShedder::default();
    let mut rng = Rng::new(0xE26 + controls as u64);

    let mut result = RunResult {
        controls,
        homes,
        hoods: hoods_n,
        epicenter_hoods,
        phases: [
            PhaseStats::default(),
            PhaseStats::default(),
            PhaseStats::default(),
        ],
        plateau: PhaseStats::default(),
        rejected: 0,
        rejected_with_hint: 0,
        shed_interactive: 0,
        shed_background: 0,
        brownout_transitions: 0,
        peak_level: BrownoutLevel::Full,
    };

    let total_ticks = PRE_TICKS + BURST_TICKS + RECOVERY_TICKS;
    for tick in 0..total_ticks {
        let now = SimTime::from_nanos(tick * TICK_MS * 1_000_000);
        let phase = Phase::of_tick(tick);
        let intensity = crowd.intensity(now);
        let mult = crowd.rate_multiplier(now);

        for (h, hood) in hoods.iter_mut().enumerate() {
            let epicenter = h < epicenter_hoods;

            // Backpressure: the bounded queue's fill fraction is the
            // saturation signal. (The admission controller's composed
            // saturation also folds in token-bucket depletion, but
            // depletion says "the rate gate is busy", not "work is
            // backing up" — the ladder and shedder key off backlog.)
            let sat = hood.queue.pressure();
            hood.admission.set_queue_pressure(sat);
            let level = if controls {
                hood.brownout.observe(sat, now)
            } else {
                BrownoutLevel::Full
            };
            result.peak_level = result.peak_level.max(level);

            // Background work: sheds by priority when controls are on,
            // always burns capacity when they are off.
            let mut bg_cost = 0.0;
            for class in [
                WorkClass::AntiEntropy,
                WorkClass::Repair,
                WorkClass::Prefetch,
            ] {
                if !controls || !shedder.admit(class, sat) {
                    bg_cost += BG_COST;
                }
            }
            // The shedder also sees every interactive tick-slot; its
            // 1.0 threshold (strict) means this never sheds — the E26
            // budget `overload.on.shed.interactive == 0` pins that.
            if controls {
                let _ = shedder.admit(WorkClass::Interactive, sat);
            }

            // Arrivals: baseline everywhere, the flash-crowd multiplier
            // on the epicenter neighborhoods.
            let lambda = BASE_RATE * if epicenter { mult } else { 1.0 };
            hood.carry += lambda;
            let arrivals = hood.carry as u64;
            hood.carry -= arrivals as f64;
            let on_plateau = (PLATEAU_FIRST..PLATEAU_END).contains(&tick);
            for _ in 0..arrivals {
                if epicenter {
                    result.phases[phase.index()].offered += 1;
                    if on_plateau {
                        result.plateau.offered += 1;
                    }
                }
                let head = epicenter && rng.unit() < head_mass * intensity;
                let mut admitted = false;
                if controls {
                    // The reject rung refuses before spending tokens.
                    if level >= BrownoutLevel::Reject {
                        result.rejected += 1;
                        if REJECT_RETRY_MS > 0 {
                            result.rejected_with_hint += 1;
                        }
                        continue;
                    }
                    match hood.admission.try_admit(now) {
                        Ok(()) => admitted = true,
                        Err(over) => {
                            result.rejected += 1;
                            if over.retry_after > SimDuration::ZERO {
                                result.rejected_with_hint += 1;
                            }
                            continue;
                        }
                    }
                }
                let req = Req {
                    enqueued: tick,
                    epicenter,
                    head,
                    admitted,
                };
                if let Err(_refused) = hood.queue.push(req) {
                    // Backpressure: depth cap reached even though the
                    // rate gate admitted — typed refusal, permit back.
                    if admitted {
                        hood.admission.complete(true);
                    }
                    result.rejected += 1;
                    result.rejected_with_hint += 1;
                }
            }

            // Service: whatever capacity background work left over.
            let mut units = CAP_UNITS - bg_cost;
            while units > 0.0 {
                let Some(req) = hood.queue.pop() else { break };
                let hit_p = if req.head { hood.warmth } else { HIT_BASE };
                let hit = rng.unit() < hit_p;
                let (cost, svc_ms) = if hit {
                    (0.5, 50)
                } else if controls
                    && level >= BrownoutLevel::StaleAllowed
                    && level < BrownoutLevel::RedirectOrigin
                    && rng.unit() < STALE_AVAILABLE
                {
                    // The stale rung: a slightly old copy for half the
                    // work of a lateral / origin fetch.
                    (0.5, 80)
                } else {
                    // Lateral or origin fetch (the redirect rung sends
                    // all of these straight to the origin).
                    (1.0, 200)
                };
                if req.head && !hit {
                    // Serving a head miss fills the cache a little.
                    hood.warmth += (1.0 - hood.warmth) * WARMTH_GAIN;
                }
                units -= cost;
                let wait_ms = (tick - req.enqueued) * TICK_MS;
                let latency_ms = (wait_ms + svc_ms).min(u32::MAX as u64) as u32;
                if req.admitted {
                    hood.admission.complete(latency_ms > SLO_MS);
                }
                if req.epicenter {
                    let good = latency_ms <= SLO_MS;
                    let p = &mut result.phases[phase.index()];
                    p.served += 1;
                    p.good += good as u64;
                    p.latencies.push(latency_ms);
                    if on_plateau {
                        result.plateau.served += 1;
                        result.plateau.good += good as u64;
                        result.plateau.latencies.push(latency_ms);
                    }
                }
            }
        }
    }

    result.shed_interactive = shedder.shed_count(WorkClass::Interactive);
    result.shed_background = shedder.background_shed();
    result.brownout_transitions = hoods.iter().map(|h| h.brownout.transitions()).sum();
    result
}

/// Renders both runs into the E26 table and the budgeted counters.
fn report(mut runs: Vec<RunResult>) -> Vec<Table> {
    let mut t = Table::new(
        "E26",
        "Overload: flash-crowd collapse (off) vs graceful degradation (on)",
        &[
            "controls",
            "phase",
            "epi offered/tick",
            "epi good/tick",
            "epi p99 ms",
            "rejected",
            "shed bg",
            "shed int",
            "brownout steps",
            "peak rung",
        ],
    );
    let metrics = hpop_obs::metrics();
    for run in &mut runs {
        let tag = if run.controls { "on" } else { "off" };
        let ratio_bp = run.goodput_ratio_bp();
        for phase in [Phase::Pre, Phase::Burst, Phase::Recovery] {
            let ticks = phase.ticks().max(1) as f64;
            let p = &mut run.phases[phase.index()];
            let p99 = p.p99_ms();
            t.push(vec![
                tag.to_string(),
                phase.name().to_string(),
                f2(p.offered as f64 / ticks),
                f2(p.good as f64 / ticks),
                p99.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        // The headline row: the plateau (hold) window, where the two
        // regimes separate — ramp keep-up no longer dilutes the ratio.
        let plateau_ticks = (PLATEAU_END - PLATEAU_FIRST) as f64;
        let plateau_p99 = run.plateau.p99_ms();
        t.push(vec![
            tag.to_string(),
            "plateau".to_string(),
            f2(run.plateau.offered as f64 / plateau_ticks),
            f2(run.plateau.good as f64 / plateau_ticks),
            plateau_p99.to_string(),
            run.rejected.to_string(),
            run.shed_background.to_string(),
            run.shed_interactive.to_string(),
            run.brownout_transitions.to_string(),
            run.peak_level.name().to_string(),
        ]);
        metrics
            .counter(&format!("overload.{tag}.epicenter.admitted_p99_ms"))
            .add(plateau_p99 as u64);
        metrics
            .counter(&format!("overload.{tag}.epicenter.goodput_ratio_bp"))
            .add(ratio_bp);
        metrics
            .counter(&format!("overload.{tag}.rejected"))
            .add(run.rejected);
        metrics
            .counter(&format!("overload.{tag}.rejected_with_hint"))
            .add(run.rejected_with_hint);
        metrics
            .counter(&format!("overload.{tag}.shed.interactive"))
            .add(run.shed_interactive);
        metrics
            .counter(&format!("overload.{tag}.shed.background"))
            .add(run.shed_background);
        metrics
            .counter(&format!("overload.{tag}.brownout.transitions"))
            .add(run.brownout_transitions);
    }
    vec![t]
}

/// Full scale: a 100k-home city, controls off then on.
pub fn run_default() -> Vec<Table> {
    report(vec![run_city(100_000, false), run_city(100_000, true)])
}

/// CI smoke preset: a 10k-home city. Every budgeted counter is a ratio
/// or an exact zero/floor, so the same bounds bind both scales.
pub fn run_smoke() -> Vec<Table> {
    report(vec![run_city(10_000, false), run_city(10_000, true)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controls_turn_collapse_into_graceful_degradation() {
        let mut off = run_city(640, false);
        let mut on = run_city(640, true);

        // Controls on: goodput holds through the burst, latency stays
        // bounded, no interactive work is ever shed, refusals are
        // typed and carry retry hints.
        assert!(
            on.goodput_ratio_bp() >= 9_000,
            "on-run goodput ratio {} bp",
            on.goodput_ratio_bp()
        );
        let on_p99 = on.plateau.p99_ms();
        assert!(on_p99 <= SLO_MS, "on-run plateau p99 {on_p99} ms");
        assert_eq!(on.shed_interactive, 0);
        assert!(on.shed_background >= 1);
        assert!(on.rejected >= 1);
        assert!(on.rejected_with_hint >= 1);
        assert!(on.brownout_transitions >= 1);
        assert!(on.peak_level >= BrownoutLevel::StaleAllowed);

        // Controls off: the same crowd collapses goodput and blows p99
        // out by seconds.
        assert!(
            off.goodput_ratio_bp() < 5_000,
            "off-run goodput ratio {} bp",
            off.goodput_ratio_bp()
        );
        let off_p99 = off.plateau.p99_ms();
        assert!(off_p99 >= 2_000, "off-run plateau p99 {off_p99} ms");
        assert_eq!(off.rejected, 0, "controls off never refuses");
        assert_eq!(off.shed_background, 0, "controls off never sheds");
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = run_city(640, true);
        let mut b = run_city(640, true);
        assert_eq!(a.goodput_ratio_bp(), b.goodput_ratio_bp());
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.shed_background, b.shed_background);
        assert_eq!(a.plateau.p99_ms(), b.plateau.p99_ms());
    }
}
