//! Plain-text result tables (the "rows the paper reports").

use std::fmt;

/// A titled, column-aligned result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id (`"E4"`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as GitHub-flavored Markdown (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut s = format!("### {} — {}\n\n", self.id, self.title);
        s.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        s.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            s.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        s
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", line(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", line(row))?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (table-cell helper).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a fraction as a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let mut t = Table::new("E0", "demo", &["a", "bee"]);
        assert!(t.is_empty());
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["10".into(), "20".into()]);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(s.contains("E0 — demo"));
        assert!(s.contains("bee"));
        let md = t.to_markdown();
        assert!(md.starts_with("### E0"));
        assert!(md.contains("| 10 | 20 |"));
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(pct(0.1234), "12.34%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("E0", "demo", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }
}
