//! E26: overload robustness — the same metro flash crowd driven twice,
//! controls off (unbounded queues, collapse) and controls on (the full
//! admission / backpressure / brownout / shedding stack), reporting
//! epicenter goodput, burst p99, and shed accounting (see DESIGN.md
//! experiment index).
//!
//! `--smoke` runs the CI preset (10k homes) under the experiment name
//! `overload_smoke`. Every budgeted counter is a ratio, a p99 of
//! simulated latencies, or an exact zero/floor — scale-free — so the
//! same `BENCH_BUDGETS.txt` bounds bind both forms. Both forms are
//! fully deterministic; the committed artifact is produced with
//! `--stable` only to pin the wall-clock gauge.

use hpop_bench::experiments::e26_overload;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        hpop_bench::harness::run("overload_smoke", e26_overload::run_smoke);
    } else {
        hpop_bench::harness::run("overload", e26_overload::run_default);
    }
}
