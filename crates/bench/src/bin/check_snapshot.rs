//! Validates `BENCH_*.json` artifacts against the obs snapshot schema.
//!
//! CI runs the smoke experiments and then this checker on each emitted
//! file: the file must parse as an [`hpop_obs::Snapshot`] (schema v1),
//! carry a non-empty experiment name, and contain the harness's own
//! bookkeeping metrics. With `--budget <file>` it additionally enforces
//! per-counter ceilings and floors, so a perf regression (e.g. gossip
//! byte volume creeping back toward the full-sync baseline) or a
//! resilience regression (chaos delivery rate dipping under its floor)
//! fails CI.
//!
//! Budget file format, one rule per line; a bare number is a ceiling,
//! a `>=`-prefixed number is a floor:
//!
//! ```text
//! # experiment  counter                    bound
//! fabric_churn  fabric.gossip.bytes        730486825
//! chaos         chaos.delivery.success_bp  >=9990
//! ```
//!
//! Rules apply only to snapshots whose experiment name matches; a
//! missing counter fails too (the bound would otherwise be satisfied
//! vacuously by renaming the metric).
//!
//! Exit codes: `0` all checks pass, `1` schema/parse failure, `2` usage
//! error, `3` budget violations only (every violated budget is listed,
//! not just the first).

use hpop_obs::Snapshot;

/// The direction of a budget bound.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Bound {
    /// Counter must stay at or below the value (perf budget).
    Ceiling,
    /// Counter must reach at least the value (quality floor).
    Floor,
}

/// One `experiment counter bound` rule.
#[derive(Clone, Debug, PartialEq)]
struct Budget {
    experiment: String,
    counter: String,
    bound: Bound,
    value: u64,
}

/// Parses budget rules; `#` starts a comment, blank lines are skipped.
fn parse_budgets(text: &str) -> Result<Vec<Budget>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(experiment), Some(counter), Some(bound_tok)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "budget line {}: expected `experiment counter bound`, got `{raw}`",
                lineno + 1
            ));
        };
        if parts.next().is_some() {
            return Err(format!(
                "budget line {}: trailing tokens in `{raw}`",
                lineno + 1
            ));
        }
        let (bound, num) = match bound_tok.strip_prefix(">=") {
            Some(rest) => (Bound::Floor, rest),
            None => (Bound::Ceiling, bound_tok),
        };
        let value = num
            .parse::<u64>()
            .map_err(|e| format!("budget line {}: bad bound `{bound_tok}`: {e}", lineno + 1))?;
        out.push(Budget {
            experiment: experiment.to_string(),
            counter: counter.to_string(),
            bound,
            value,
        });
    }
    Ok(out)
}

/// Applies every budget rule matching this snapshot's experiment and
/// returns ALL violations (empty = clean).
fn check_budgets(path: &str, snap: &Snapshot, budgets: &[Budget]) -> Vec<String> {
    let mut violations = Vec::new();
    for b in budgets.iter().filter(|b| b.experiment == snap.experiment) {
        match snap.counters.get(&b.counter) {
            None => violations.push(format!(
                "{path}: budgeted counter {} absent from experiment {}",
                b.counter, snap.experiment
            )),
            Some(&v) if b.bound == Bound::Ceiling && v > b.value => violations.push(format!(
                "{path}: experiment {}: counter {} = {v} exceeds budget {} ({:.1}x)",
                snap.experiment,
                b.counter,
                b.value,
                v as f64 / b.value as f64
            )),
            Some(&v) if b.bound == Bound::Floor && v < b.value => violations.push(format!(
                "{path}: experiment {}: counter {} = {v} below floor {}",
                snap.experiment, b.counter, b.value
            )),
            Some(_) => {}
        }
    }
    violations
}

/// Schema validation only; budget checking is separate so violations
/// can be accumulated across files.
fn check_schema(path: &str) -> Result<Snapshot, String> {
    let snap = Snapshot::load(path).map_err(|e| format!("{path}: cannot parse: {e}"))?;
    if snap.experiment.is_empty() {
        return Err(format!("{path}: empty experiment name"));
    }
    if !snap.counters.contains_key("exp.tables") {
        return Err(format!("{path}: missing harness counter exp.tables"));
    }
    if !snap.gauges.contains_key("exp.wall_ms") {
        return Err(format!("{path}: missing harness gauge exp.wall_ms"));
    }
    for (name, h) in &snap.histograms {
        if h.p50 > h.p99 {
            return Err(format!("{path}: histogram {name} has p50 > p99"));
        }
    }
    check_v2_sections(path, &snap)?;
    Ok(snap)
}

/// Internal-consistency checks for the schema-v2 sections. Every
/// violation is named after the section and field that broke, so a CI
/// failure points straight at the producer bug.
fn check_v2_sections(path: &str, snap: &Snapshot) -> Result<(), String> {
    if let Some(attr) = &snap.latency_attribution {
        let stage_sum: u64 = attr.stages.values().sum();
        if attr.accounted_us != stage_sum {
            return Err(format!(
                "{path}: latency_attribution accounted_us {} != stage sum {stage_sum}",
                attr.accounted_us
            ));
        }
        if attr.accounted_us > attr.total_us {
            return Err(format!(
                "{path}: latency_attribution accounted_us {} exceeds total_us {}",
                attr.accounted_us, attr.total_us
            ));
        }
        if attr.traces_analyzed == 0 && attr.total_us != 0 {
            return Err(format!(
                "{path}: latency_attribution reports {} us over zero traces",
                attr.total_us
            ));
        }
    }
    for (name, s) in &snap.series {
        if s.window_us == 0 {
            return Err(format!("{path}: series {name} has window_us 0"));
        }
        let mut prev: Option<u64> = None;
        for w in &s.windows {
            if w.start_us % s.window_us != 0 {
                return Err(format!(
                    "{path}: series {name} window at {} is not aligned to window_us {}",
                    w.start_us, s.window_us
                ));
            }
            if prev.is_some_and(|p| w.start_us <= p) {
                return Err(format!(
                    "{path}: series {name} windows are not strictly ordered at {}",
                    w.start_us
                ));
            }
            prev = Some(w.start_us);
            if w.count > 0 && (w.min > w.max || w.sum < w.max) {
                return Err(format!(
                    "{path}: series {name} window at {} has inconsistent aggregates \
                     (count {}, sum {}, min {}, max {})",
                    w.start_us, w.count, w.sum, w.min, w.max
                ));
            }
        }
    }
    for b in &snap.slo_breaches {
        if b.slo.is_empty() {
            return Err(format!("{path}: slo_breaches entry with empty slo name"));
        }
        if b.window_start_us >= b.window_end_us {
            return Err(format!(
                "{path}: slo breach {} has empty window [{}, {})",
                b.slo, b.window_start_us, b.window_end_us
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut budgets = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--budget" {
            i += 1;
            let Some(budget_path) = args.get(i) else {
                eprintln!("check_snapshot: --budget requires a file path");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(budget_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("check_snapshot: {budget_path}: {e}");
                    std::process::exit(2);
                }
            };
            match parse_budgets(&text) {
                Ok(mut b) => budgets.append(&mut b),
                Err(e) => {
                    eprintln!("check_snapshot: {budget_path}: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(args[i].clone());
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("usage: check_snapshot [--budget <file>] <BENCH_*.json>...");
        std::process::exit(2);
    }
    let mut schema_failed = false;
    let mut violations = Vec::new();
    for path in &paths {
        match check_schema(path) {
            Err(e) => {
                eprintln!("check_snapshot: {e}");
                schema_failed = true;
            }
            Ok(snap) => {
                let v = check_budgets(path, &snap, &budgets);
                if v.is_empty() {
                    println!(
                        "{path}: ok (experiment {}, {} counters, {} histograms)",
                        snap.experiment,
                        snap.counters.len(),
                        snap.histograms.len()
                    );
                }
                violations.extend(v);
            }
        }
    }
    for v in &violations {
        eprintln!("check_snapshot: budget violation: {v}");
    }
    if schema_failed {
        std::process::exit(1);
    }
    if !violations.is_empty() {
        std::process::exit(3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_comments_and_blanks() {
        let text = "\n# full-line comment\nfabric_churn fabric.gossip.bytes 730486825 # inline\n";
        let b = parse_budgets(text).unwrap();
        assert_eq!(
            b,
            vec![Budget {
                experiment: "fabric_churn".into(),
                counter: "fabric.gossip.bytes".into(),
                bound: Bound::Ceiling,
                value: 730_486_825,
            }]
        );
    }

    #[test]
    fn parses_floor_rules() {
        let b = parse_budgets("chaos chaos.delivery.success_bp >=9990").unwrap();
        assert_eq!(
            b,
            vec![Budget {
                experiment: "chaos".into(),
                counter: "chaos.delivery.success_bp".into(),
                bound: Bound::Floor,
                value: 9990,
            }]
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_budgets("one two").is_err());
        assert!(parse_budgets("a b not_a_number").is_err());
        assert!(parse_budgets("a b 1 extra").is_err());
        assert!(parse_budgets("a b >=x").is_err());
        assert!(parse_budgets("a b <=5").is_err());
    }

    fn snap_with(experiment: &str, counter: &str, value: u64) -> Snapshot {
        let reg = hpop_obs::MetricsRegistry::new();
        reg.counter(counter).add(value);
        reg.snapshot(experiment)
    }

    #[test]
    fn ceiling_enforced_only_for_matching_experiment() {
        let budgets = parse_budgets("fabric_churn fabric.gossip.bytes 100").unwrap();
        let over = snap_with("fabric_churn", "fabric.gossip.bytes", 101);
        assert_eq!(check_budgets("x", &over, &budgets).len(), 1);
        let at = snap_with("fabric_churn", "fabric.gossip.bytes", 100);
        assert!(check_budgets("x", &at, &budgets).is_empty());
        // Same counter under a different experiment: rule does not apply.
        let other = snap_with("coop_cache", "fabric.gossip.bytes", 101);
        assert!(check_budgets("x", &other, &budgets).is_empty());
    }

    #[test]
    fn floor_enforced() {
        let budgets = parse_budgets("chaos chaos.delivery.success_bp >=9990").unwrap();
        let under = snap_with("chaos", "chaos.delivery.success_bp", 9989);
        let v = check_budgets("x", &under, &budgets);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("below floor"), "{}", v[0]);
        let at = snap_with("chaos", "chaos.delivery.success_bp", 9990);
        assert!(check_budgets("x", &at, &budgets).is_empty());
    }

    /// Violations must say *which artifact* and *which experiment*
    /// broke the budget — CI output with several BENCH files is
    /// useless otherwise.
    #[test]
    fn violations_name_the_file_and_the_experiment() {
        let budgets = parse_budgets("recovery a 10\nrecovery b >=5").unwrap();
        let reg = hpop_obs::MetricsRegistry::new();
        reg.counter("a").add(11);
        reg.counter("b").add(4);
        let snap = reg.snapshot("recovery");
        let v = check_budgets("BENCH_recovery_smoke.json", &snap, &budgets);
        assert_eq!(v.len(), 2, "{v:?}");
        for msg in &v {
            assert!(msg.contains("BENCH_recovery_smoke.json"), "{msg}");
            assert!(msg.contains("experiment recovery"), "{msg}");
        }
    }

    #[test]
    fn all_violations_reported_not_just_first() {
        let budgets = parse_budgets("chaos a 10\nchaos b >=5\nchaos missing.counter 1").unwrap();
        let reg = hpop_obs::MetricsRegistry::new();
        reg.counter("a").add(11);
        reg.counter("b").add(4);
        let snap = reg.snapshot("chaos");
        let v = check_budgets("x", &snap, &budgets);
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn v2_attribution_must_sum_and_stay_within_total() {
        let mut snap = snap_with("trace_attribution", "x", 1);
        let mut attr = hpop_obs::AttributionReport {
            traces_analyzed: 2,
            threshold_us: 50,
            total_us: 100,
            accounted_us: 100,
            stages: [("transfer".to_string(), 60), ("retry".to_string(), 40)]
                .into_iter()
                .collect(),
        };
        snap.latency_attribution = Some(attr.clone());
        assert!(check_v2_sections("x", &snap).is_ok());
        attr.accounted_us = 99; // no longer equals the stage sum
        snap.latency_attribution = Some(attr.clone());
        let err = check_v2_sections("x", &snap).unwrap_err();
        assert!(err.contains("stage sum"), "{err}");
        attr.accounted_us = 100;
        attr.total_us = 99; // accounted exceeds total
        snap.latency_attribution = Some(attr);
        let err = check_v2_sections("x", &snap).unwrap_err();
        assert!(err.contains("exceeds total_us"), "{err}");
    }

    #[test]
    fn v2_series_windows_must_be_aligned_ordered_and_consistent() {
        let mut snap = snap_with("trace_attribution", "x", 1);
        let win = |start: u64, count: u64, sum: u64, min: u64, max: u64| hpop_obs::WindowAgg {
            start_us: start,
            count,
            sum,
            min,
            max,
        };
        let summary = |windows: Vec<hpop_obs::WindowAgg>| hpop_obs::SeriesSummary {
            window_us: 1_000,
            dropped_windows: 0,
            windows,
        };
        snap.series.insert(
            "good".into(),
            summary(vec![win(0, 2, 7, 3, 4), win(1_000, 0, 0, 0, 0)]),
        );
        assert!(check_v2_sections("x", &snap).is_ok());
        snap.series
            .insert("bad".into(), summary(vec![win(500, 1, 1, 1, 1)]));
        let err = check_v2_sections("x", &snap).unwrap_err();
        assert!(err.contains("not aligned"), "{err}");
        snap.series.insert(
            "bad".into(),
            summary(vec![win(1_000, 1, 1, 1, 1), win(0, 1, 1, 1, 1)]),
        );
        let err = check_v2_sections("x", &snap).unwrap_err();
        assert!(err.contains("not strictly ordered"), "{err}");
        snap.series
            .insert("bad".into(), summary(vec![win(0, 1, 1, 5, 1)]));
        let err = check_v2_sections("x", &snap).unwrap_err();
        assert!(err.contains("inconsistent aggregates"), "{err}");
    }

    #[test]
    fn v2_breaches_must_be_named_with_real_windows() {
        let mut snap = snap_with("recovery", "x", 1);
        snap.slo_breaches.push(hpop_obs::SloBreach {
            slo: "payable-mismatch".into(),
            window_start_us: 0,
            window_end_us: 1_000,
            value: 3,
            bound: 0,
        });
        assert!(check_v2_sections("x", &snap).is_ok());
        snap.slo_breaches[0].window_end_us = 0;
        let err = check_v2_sections("x", &snap).unwrap_err();
        assert!(err.contains("empty window"), "{err}");
        snap.slo_breaches[0].window_end_us = 1_000;
        snap.slo_breaches[0].slo.clear();
        let err = check_v2_sections("x", &snap).unwrap_err();
        assert!(err.contains("empty slo name"), "{err}");
    }

    #[test]
    fn missing_budgeted_counter_fails() {
        let budgets = parse_budgets("fabric_churn fabric.gossip.bytes 100").unwrap();
        let snap = snap_with("fabric_churn", "unrelated.counter", 1);
        let v = check_budgets("x", &snap, &budgets);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("absent"), "{}", v[0]);
    }
}
