//! Validates `BENCH_*.json` artifacts against the obs snapshot schema.
//!
//! CI runs the smoke experiments and then this checker on each emitted
//! file: the file must parse as an [`hpop_obs::Snapshot`] (schema v1),
//! carry a non-empty experiment name, and contain the harness's own
//! bookkeeping metrics. With `--budget <file>` it additionally enforces
//! per-counter ceilings, so a perf regression (e.g. gossip byte volume
//! creeping back toward the full-sync baseline) fails CI. Exits nonzero
//! with a diagnostic on any failure.
//!
//! Budget file format, one rule per line:
//!
//! ```text
//! # experiment  counter               max_value
//! fabric_churn  fabric.gossip.bytes   730486825
//! ```
//!
//! Rules apply only to snapshots whose experiment name matches; a
//! missing counter fails too (the ceiling would otherwise be satisfied
//! vacuously by renaming the metric).

use hpop_obs::Snapshot;

/// One `experiment counter max_value` ceiling.
#[derive(Clone, Debug, PartialEq)]
struct Budget {
    experiment: String,
    counter: String,
    max_value: u64,
}

/// Parses budget rules; `#` starts a comment, blank lines are skipped.
fn parse_budgets(text: &str) -> Result<Vec<Budget>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(experiment), Some(counter), Some(max)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "budget line {}: expected `experiment counter max_value`, got `{raw}`",
                lineno + 1
            ));
        };
        if parts.next().is_some() {
            return Err(format!(
                "budget line {}: trailing tokens in `{raw}`",
                lineno + 1
            ));
        }
        let max_value = max
            .parse::<u64>()
            .map_err(|e| format!("budget line {}: bad max value `{max}`: {e}", lineno + 1))?;
        out.push(Budget {
            experiment: experiment.to_string(),
            counter: counter.to_string(),
            max_value,
        });
    }
    Ok(out)
}

/// Applies every budget rule matching this snapshot's experiment.
fn check_budgets(path: &str, snap: &Snapshot, budgets: &[Budget]) -> Result<(), String> {
    for b in budgets.iter().filter(|b| b.experiment == snap.experiment) {
        match snap.counters.get(&b.counter) {
            None => {
                return Err(format!(
                    "{path}: budgeted counter {} absent from experiment {}",
                    b.counter, snap.experiment
                ));
            }
            Some(&v) if v > b.max_value => {
                return Err(format!(
                    "{path}: counter {} = {v} exceeds budget {} ({:.1}x)",
                    b.counter,
                    b.max_value,
                    v as f64 / b.max_value as f64
                ));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

fn check(path: &str, budgets: &[Budget]) -> Result<(), String> {
    let snap = Snapshot::load(path).map_err(|e| format!("{path}: cannot parse: {e}"))?;
    if snap.experiment.is_empty() {
        return Err(format!("{path}: empty experiment name"));
    }
    if !snap.counters.contains_key("exp.tables") {
        return Err(format!("{path}: missing harness counter exp.tables"));
    }
    if !snap.gauges.contains_key("exp.wall_ms") {
        return Err(format!("{path}: missing harness gauge exp.wall_ms"));
    }
    for (name, h) in &snap.histograms {
        if h.p50 > h.p99 {
            return Err(format!("{path}: histogram {name} has p50 > p99"));
        }
    }
    check_budgets(path, &snap, budgets)?;
    println!(
        "{path}: ok (experiment {}, {} counters, {} histograms)",
        snap.experiment,
        snap.counters.len(),
        snap.histograms.len()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut budgets = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--budget" {
            i += 1;
            let Some(budget_path) = args.get(i) else {
                eprintln!("check_snapshot: --budget requires a file path");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(budget_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("check_snapshot: {budget_path}: {e}");
                    std::process::exit(2);
                }
            };
            match parse_budgets(&text) {
                Ok(mut b) => budgets.append(&mut b),
                Err(e) => {
                    eprintln!("check_snapshot: {budget_path}: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(args[i].clone());
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("usage: check_snapshot [--budget <file>] <BENCH_*.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        if let Err(e) = check(path, &budgets) {
            eprintln!("check_snapshot: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_comments_and_blanks() {
        let text = "\n# full-line comment\nfabric_churn fabric.gossip.bytes 730486825 # inline\n";
        let b = parse_budgets(text).unwrap();
        assert_eq!(
            b,
            vec![Budget {
                experiment: "fabric_churn".into(),
                counter: "fabric.gossip.bytes".into(),
                max_value: 730_486_825,
            }]
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_budgets("one two").is_err());
        assert!(parse_budgets("a b not_a_number").is_err());
        assert!(parse_budgets("a b 1 extra").is_err());
    }

    fn snap_with(experiment: &str, counter: &str, value: u64) -> Snapshot {
        let reg = hpop_obs::MetricsRegistry::new();
        reg.counter(counter).add(value);
        reg.snapshot(experiment)
    }

    #[test]
    fn budget_enforced_only_for_matching_experiment() {
        let budgets = parse_budgets("fabric_churn fabric.gossip.bytes 100").unwrap();
        let over = snap_with("fabric_churn", "fabric.gossip.bytes", 101);
        assert!(check_budgets("x", &over, &budgets).is_err());
        let at = snap_with("fabric_churn", "fabric.gossip.bytes", 100);
        assert!(check_budgets("x", &at, &budgets).is_ok());
        // Same counter under a different experiment: rule does not apply.
        let other = snap_with("coop_cache", "fabric.gossip.bytes", 101);
        assert!(check_budgets("x", &other, &budgets).is_ok());
    }

    #[test]
    fn missing_budgeted_counter_fails() {
        let budgets = parse_budgets("fabric_churn fabric.gossip.bytes 100").unwrap();
        let snap = snap_with("fabric_churn", "unrelated.counter", 1);
        let err = check_budgets("x", &snap, &budgets).unwrap_err();
        assert!(err.contains("absent"), "{err}");
    }
}
