//! Validates `BENCH_*.json` artifacts against the obs snapshot schema.
//!
//! CI runs the smoke experiments and then this checker on each emitted
//! file: the file must parse as an [`hpop_obs::Snapshot`] (schema v1),
//! carry a non-empty experiment name, and contain the harness's own
//! bookkeeping metrics. Exits nonzero with a diagnostic on any failure.

use hpop_obs::Snapshot;

fn check(path: &str) -> Result<(), String> {
    let snap = Snapshot::load(path).map_err(|e| format!("{path}: cannot parse: {e}"))?;
    if snap.experiment.is_empty() {
        return Err(format!("{path}: empty experiment name"));
    }
    if !snap.counters.contains_key("exp.tables") {
        return Err(format!("{path}: missing harness counter exp.tables"));
    }
    if !snap.gauges.contains_key("exp.wall_ms") {
        return Err(format!("{path}: missing harness gauge exp.wall_ms"));
    }
    for (name, h) in &snap.histograms {
        if h.p50 > h.p99 {
            return Err(format!("{path}: histogram {name} has p50 > p99"));
        }
    }
    println!(
        "{path}: ok (experiment {}, {} counters, {} histograms)",
        snap.experiment,
        snap.counters.len(),
        snap.histograms.len()
    );
    Ok(())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_snapshot <BENCH_*.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        if let Err(e) = check(path) {
            eprintln!("check_snapshot: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
