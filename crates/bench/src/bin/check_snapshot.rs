//! Validates `BENCH_*.json` artifacts against the obs snapshot schema.
//!
//! CI runs the smoke experiments and then this checker on each emitted
//! file: the file must parse as an [`hpop_obs::Snapshot`] (schema v1),
//! carry a non-empty experiment name, and contain the harness's own
//! bookkeeping metrics. With `--budget <file>` it additionally enforces
//! per-counter ceilings and floors, so a perf regression (e.g. gossip
//! byte volume creeping back toward the full-sync baseline) or a
//! resilience regression (chaos delivery rate dipping under its floor)
//! fails CI.
//!
//! Budget file format, one rule per line; a bare number is a ceiling,
//! a `>=`-prefixed number is a floor:
//!
//! ```text
//! # experiment  counter                    bound
//! fabric_churn  fabric.gossip.bytes        730486825
//! chaos         chaos.delivery.success_bp  >=9990
//! ```
//!
//! Rules apply only to snapshots whose experiment name matches; a
//! missing counter fails too (the bound would otherwise be satisfied
//! vacuously by renaming the metric).
//!
//! Exit codes: `0` all checks pass, `1` schema/parse failure, `2` usage
//! error, `3` budget violations only (every violated budget is listed,
//! not just the first).

use hpop_obs::Snapshot;

/// The direction of a budget bound.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Bound {
    /// Counter must stay at or below the value (perf budget).
    Ceiling,
    /// Counter must reach at least the value (quality floor).
    Floor,
}

/// One `experiment counter bound` rule.
#[derive(Clone, Debug, PartialEq)]
struct Budget {
    experiment: String,
    counter: String,
    bound: Bound,
    value: u64,
}

/// Parses budget rules; `#` starts a comment, blank lines are skipped.
fn parse_budgets(text: &str) -> Result<Vec<Budget>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(experiment), Some(counter), Some(bound_tok)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "budget line {}: expected `experiment counter bound`, got `{raw}`",
                lineno + 1
            ));
        };
        if parts.next().is_some() {
            return Err(format!(
                "budget line {}: trailing tokens in `{raw}`",
                lineno + 1
            ));
        }
        let (bound, num) = match bound_tok.strip_prefix(">=") {
            Some(rest) => (Bound::Floor, rest),
            None => (Bound::Ceiling, bound_tok),
        };
        let value = num
            .parse::<u64>()
            .map_err(|e| format!("budget line {}: bad bound `{bound_tok}`: {e}", lineno + 1))?;
        out.push(Budget {
            experiment: experiment.to_string(),
            counter: counter.to_string(),
            bound,
            value,
        });
    }
    Ok(out)
}

/// Applies every budget rule matching this snapshot's experiment and
/// returns ALL violations (empty = clean).
fn check_budgets(path: &str, snap: &Snapshot, budgets: &[Budget]) -> Vec<String> {
    let mut violations = Vec::new();
    for b in budgets.iter().filter(|b| b.experiment == snap.experiment) {
        match snap.counters.get(&b.counter) {
            None => violations.push(format!(
                "{path}: budgeted counter {} absent from experiment {}",
                b.counter, snap.experiment
            )),
            Some(&v) if b.bound == Bound::Ceiling && v > b.value => violations.push(format!(
                "{path}: experiment {}: counter {} = {v} exceeds budget {} ({:.1}x)",
                snap.experiment,
                b.counter,
                b.value,
                v as f64 / b.value as f64
            )),
            Some(&v) if b.bound == Bound::Floor && v < b.value => violations.push(format!(
                "{path}: experiment {}: counter {} = {v} below floor {}",
                snap.experiment, b.counter, b.value
            )),
            Some(_) => {}
        }
    }
    violations
}

/// Schema validation only; budget checking is separate so violations
/// can be accumulated across files.
fn check_schema(path: &str) -> Result<Snapshot, String> {
    let snap = Snapshot::load(path).map_err(|e| format!("{path}: cannot parse: {e}"))?;
    if snap.experiment.is_empty() {
        return Err(format!("{path}: empty experiment name"));
    }
    if !snap.counters.contains_key("exp.tables") {
        return Err(format!("{path}: missing harness counter exp.tables"));
    }
    if !snap.gauges.contains_key("exp.wall_ms") {
        return Err(format!("{path}: missing harness gauge exp.wall_ms"));
    }
    for (name, h) in &snap.histograms {
        if h.p50 > h.p99 {
            return Err(format!("{path}: histogram {name} has p50 > p99"));
        }
    }
    Ok(snap)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut budgets = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--budget" {
            i += 1;
            let Some(budget_path) = args.get(i) else {
                eprintln!("check_snapshot: --budget requires a file path");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(budget_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("check_snapshot: {budget_path}: {e}");
                    std::process::exit(2);
                }
            };
            match parse_budgets(&text) {
                Ok(mut b) => budgets.append(&mut b),
                Err(e) => {
                    eprintln!("check_snapshot: {budget_path}: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(args[i].clone());
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("usage: check_snapshot [--budget <file>] <BENCH_*.json>...");
        std::process::exit(2);
    }
    let mut schema_failed = false;
    let mut violations = Vec::new();
    for path in &paths {
        match check_schema(path) {
            Err(e) => {
                eprintln!("check_snapshot: {e}");
                schema_failed = true;
            }
            Ok(snap) => {
                let v = check_budgets(path, &snap, &budgets);
                if v.is_empty() {
                    println!(
                        "{path}: ok (experiment {}, {} counters, {} histograms)",
                        snap.experiment,
                        snap.counters.len(),
                        snap.histograms.len()
                    );
                }
                violations.extend(v);
            }
        }
    }
    for v in &violations {
        eprintln!("check_snapshot: budget violation: {v}");
    }
    if schema_failed {
        std::process::exit(1);
    }
    if !violations.is_empty() {
        std::process::exit(3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_comments_and_blanks() {
        let text = "\n# full-line comment\nfabric_churn fabric.gossip.bytes 730486825 # inline\n";
        let b = parse_budgets(text).unwrap();
        assert_eq!(
            b,
            vec![Budget {
                experiment: "fabric_churn".into(),
                counter: "fabric.gossip.bytes".into(),
                bound: Bound::Ceiling,
                value: 730_486_825,
            }]
        );
    }

    #[test]
    fn parses_floor_rules() {
        let b = parse_budgets("chaos chaos.delivery.success_bp >=9990").unwrap();
        assert_eq!(
            b,
            vec![Budget {
                experiment: "chaos".into(),
                counter: "chaos.delivery.success_bp".into(),
                bound: Bound::Floor,
                value: 9990,
            }]
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_budgets("one two").is_err());
        assert!(parse_budgets("a b not_a_number").is_err());
        assert!(parse_budgets("a b 1 extra").is_err());
        assert!(parse_budgets("a b >=x").is_err());
        assert!(parse_budgets("a b <=5").is_err());
    }

    fn snap_with(experiment: &str, counter: &str, value: u64) -> Snapshot {
        let reg = hpop_obs::MetricsRegistry::new();
        reg.counter(counter).add(value);
        reg.snapshot(experiment)
    }

    #[test]
    fn ceiling_enforced_only_for_matching_experiment() {
        let budgets = parse_budgets("fabric_churn fabric.gossip.bytes 100").unwrap();
        let over = snap_with("fabric_churn", "fabric.gossip.bytes", 101);
        assert_eq!(check_budgets("x", &over, &budgets).len(), 1);
        let at = snap_with("fabric_churn", "fabric.gossip.bytes", 100);
        assert!(check_budgets("x", &at, &budgets).is_empty());
        // Same counter under a different experiment: rule does not apply.
        let other = snap_with("coop_cache", "fabric.gossip.bytes", 101);
        assert!(check_budgets("x", &other, &budgets).is_empty());
    }

    #[test]
    fn floor_enforced() {
        let budgets = parse_budgets("chaos chaos.delivery.success_bp >=9990").unwrap();
        let under = snap_with("chaos", "chaos.delivery.success_bp", 9989);
        let v = check_budgets("x", &under, &budgets);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("below floor"), "{}", v[0]);
        let at = snap_with("chaos", "chaos.delivery.success_bp", 9990);
        assert!(check_budgets("x", &at, &budgets).is_empty());
    }

    /// Violations must say *which artifact* and *which experiment*
    /// broke the budget — CI output with several BENCH files is
    /// useless otherwise.
    #[test]
    fn violations_name_the_file_and_the_experiment() {
        let budgets = parse_budgets("recovery a 10\nrecovery b >=5").unwrap();
        let reg = hpop_obs::MetricsRegistry::new();
        reg.counter("a").add(11);
        reg.counter("b").add(4);
        let snap = reg.snapshot("recovery");
        let v = check_budgets("BENCH_recovery_smoke.json", &snap, &budgets);
        assert_eq!(v.len(), 2, "{v:?}");
        for msg in &v {
            assert!(msg.contains("BENCH_recovery_smoke.json"), "{msg}");
            assert!(msg.contains("experiment recovery"), "{msg}");
        }
    }

    #[test]
    fn all_violations_reported_not_just_first() {
        let budgets = parse_budgets("chaos a 10\nchaos b >=5\nchaos missing.counter 1").unwrap();
        let reg = hpop_obs::MetricsRegistry::new();
        reg.counter("a").add(11);
        reg.counter("b").add(4);
        let snap = reg.snapshot("chaos");
        let v = check_budgets("x", &snap, &budgets);
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn missing_budgeted_counter_fails() {
        let budgets = parse_budgets("fabric_churn fabric.gossip.bytes 100").unwrap();
        let snap = snap_with("fabric_churn", "unrelated.counter", 1);
        let v = check_budgets("x", &snap, &budgets);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("absent"), "{}", v[0]);
    }
}
