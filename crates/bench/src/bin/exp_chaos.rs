//! E20: fault-injection chaos × the unified resilience layer — verified
//! delivery, corruption containment, hedging waste and degraded-mode
//! continuity (see DESIGN.md experiment index).
//!
//! `--smoke` runs the reduced CI preset; add `--stable` for a
//! byte-identical replayable snapshot (pins the wall-clock gauge).

use hpop_bench::experiments::e20_chaos;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        hpop_bench::harness::run("chaos", e20_chaos::run_smoke);
    } else {
        hpop_bench::harness::run("chaos", e20_chaos::run_default);
    }
}
