//! E10: VPN vs NAT tunneling tradeoff (see DESIGN.md experiment index).

use hpop_bench::experiments::e10_tunnel_tradeoff;

fn main() {
    hpop_bench::harness::run("tunnel_tradeoff", e10_tunnel_tradeoff::run_default);
}
