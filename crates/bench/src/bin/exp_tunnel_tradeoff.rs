//! E10: VPN vs NAT tunneling tradeoff (see DESIGN.md experiment index).

use hpop_bench::experiments::e10_tunnel_tradeoff;

fn main() {
    for table in e10_tunnel_tradeoff::run_default() {
        println!("{table}");
    }
}
