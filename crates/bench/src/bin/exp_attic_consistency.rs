//! E12: attic lock mediation and dual writes (see DESIGN.md experiment index).

use hpop_bench::experiments::e12_attic_consistency;

fn main() {
    for table in e12_attic_consistency::run_default() {
        println!("{table}");
    }
}
