//! E12: attic lock mediation and dual writes (see DESIGN.md experiment index).

use hpop_bench::experiments::e12_attic_consistency;

fn main() {
    hpop_bench::harness::run("attic_consistency", e12_attic_consistency::run_default);
}
