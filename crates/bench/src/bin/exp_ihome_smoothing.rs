//! E14: upstream demand smoothing (see DESIGN.md experiment index).

use hpop_bench::experiments::e14_ihome_smoothing;

fn main() {
    hpop_bench::harness::run("ihome_smoothing", e14_ihome_smoothing::run_default);
}
