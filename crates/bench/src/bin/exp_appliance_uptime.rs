//! E17: attic service availability under home outages (extension).

use hpop_bench::experiments::e17_appliance_uptime;

fn main() {
    hpop_bench::harness::run("appliance_uptime", e17_appliance_uptime::run_default);
}
