//! E2: TCP slow-start ramp-up arithmetic (see DESIGN.md experiment index).

use hpop_bench::experiments::e02_tcp_rampup;

fn main() {
    hpop_bench::harness::run("tcp_rampup", e02_tcp_rampup::run_default);
}
