//! E19: gossip dissemination cost — delta piggybacking vs full-table
//! sync, detection quality, and the GF(256) slice kernel (see
//! DESIGN.md experiment index).

use hpop_bench::experiments::e19_gossip_bytes;

fn main() {
    hpop_bench::harness::run("gossip_bytes", e19_gossip_bytes::run_default);
}
