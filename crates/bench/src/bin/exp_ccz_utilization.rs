//! E1: CCZ per-second link utilization (see DESIGN.md experiment index).

use hpop_bench::experiments::e01_ccz_utilization;

fn main() {
    for table in e01_ccz_utilization::run_default() {
        println!("{table}");
    }
}
