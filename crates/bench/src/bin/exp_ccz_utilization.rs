//! E1: CCZ per-second link utilization (see DESIGN.md experiment index).

use hpop_bench::experiments::e01_ccz_utilization;

fn main() {
    hpop_bench::harness::run("ccz_utilization", e01_ccz_utilization::run_default);
}
