//! E8: detour benefit via waypoints (see DESIGN.md experiment index).

use hpop_bench::experiments::e08_dcol_detour;

fn main() {
    for table in e08_dcol_detour::run_default() {
        println!("{table}");
    }
}
