//! E8: detour benefit via waypoints (see DESIGN.md experiment index).

use hpop_bench::experiments::e08_dcol_detour;

fn main() {
    hpop_bench::harness::run("dcol_detour", e08_dcol_detour::run_default);
}
