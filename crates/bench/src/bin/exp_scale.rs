//! E24: the metro-scale sweep — sim-seconds per wall-second and
//! allocator work per flow event for cities of 1k…1M homes, with the
//! legacy global-re-solve engine re-measured on the same workload at 1k
//! and 100k homes (see DESIGN.md experiment index).
//!
//! `--smoke` runs the CI preset (≤10k homes, short windows) under the
//! experiment name `scale_smoke`, so the smoke budget floors are
//! separate from the full sweep's. Neither form is ever `--stable`:
//! every headline column is a wall-clock measurement.

use hpop_bench::experiments::e24_scale;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        hpop_bench::harness::run("scale_smoke", e24_scale::run_smoke);
    } else {
        hpop_bench::harness::run("scale", e24_scale::run_default);
    }
}
