//! E25: adversarial accounting — Sybil/collusion campaigns against the
//! usage-record plane with the accountability-puzzle defense off and on
//! (see DESIGN.md experiment index).
//!
//! `--smoke` runs the CI preset (smaller populations) under the *same*
//! experiment name: every budgeted counter is a scale-free ratio or an
//! exact zero, so the same bounds hold at both scales. CI passes
//! `--out BENCH_accounting_smoke.json` to keep the committed full-run
//! artifact intact.

use hpop_bench::experiments::e25_accounting_attacks;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        hpop_bench::harness::run("accounting", e25_accounting_attacks::run_smoke);
    } else {
        hpop_bench::harness::run("accounting", e25_accounting_attacks::run_default);
    }
}
