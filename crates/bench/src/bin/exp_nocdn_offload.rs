//! E4: NoCDN origin offload (see DESIGN.md experiment index).

use hpop_bench::experiments::e04_nocdn_offload;

fn main() {
    hpop_bench::harness::run("nocdn_offload", e04_nocdn_offload::run_default);
}
