//! E7: chunked multi-peer downloads (see DESIGN.md experiment index).

use hpop_bench::experiments::e07_nocdn_chunking;

fn main() {
    hpop_bench::harness::run("nocdn_chunking", e07_nocdn_chunking::run_default);
}
