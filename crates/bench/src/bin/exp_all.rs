//! Runs every experiment (E1-E16) and writes `BENCH_all.json`.
//!
//! Quiet by default; `--verbose --markdown` prints the tables as
//! GitHub Markdown — the exact content recorded in EXPERIMENTS.md.

use hpop_bench::experiments::run_all;

fn main() {
    hpop_bench::harness::run("all", run_all);
}
