//! Runs every experiment (E1-E16) and prints the full result set.
//!
//! With `--markdown`, emits the tables as GitHub Markdown — the exact
//! content recorded in EXPERIMENTS.md.

use hpop_bench::experiments::run_all;

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    for table in run_all() {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}
