//! E18: fabric gossip membership, failure detection and PeerView-routed
//! retries under the paper churn preset (see DESIGN.md experiment index).

use hpop_bench::experiments::e18_fabric_churn;

fn main() {
    hpop_bench::harness::run("fabric_churn", e18_fabric_churn::run_default);
}
