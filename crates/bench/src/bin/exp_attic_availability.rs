//! E11: attic backup availability (see DESIGN.md experiment index).

use hpop_bench::experiments::e11_attic_availability;

fn main() {
    hpop_bench::harness::run("attic_availability", e11_attic_availability::run_default);
}
