//! E23: the attic's WebDAV surface — conformance parity between the
//! netsim adapter and the real-socket daemon, per-adapter throughput,
//! lifecycle reclamation, and the lifecycle crash matrix (see DESIGN.md
//! experiment index).
//!
//! `--smoke` reduces the throughput iteration count (the deterministic
//! parity/lifecycle/crash legs run at full scale either way); add
//! `--stable` for a byte-identical replayable snapshot (pins wall-clock
//! and the requests/sec columns). CI runs the smoke preset *without*
//! `--stable` so throughput is measured on a real socket.

use hpop_bench::experiments::e23_attic_webdav;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        hpop_bench::harness::run_opts("attic_webdav", e23_attic_webdav::run_smoke);
    } else {
        hpop_bench::harness::run_opts("attic_webdav", e23_attic_webdav::run_default);
    }
}
