//! E21: crash-consistent durability — recovery replay cost, settlement
//! survival under the chaos crash schedule, and rejoin accuracy without
//! the detector's rejoin-window exemption (see DESIGN.md experiment
//! index).
//!
//! `--smoke` runs the reduced CI preset; add `--stable` for a
//! byte-identical replayable snapshot (pins the wall-clock gauge).

use hpop_bench::experiments::e21_recovery;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        hpop_bench::harness::run("recovery", e21_recovery::run_smoke);
    } else {
        hpop_bench::harness::run("recovery", e21_recovery::run_default);
    }
}
