//! E15: cooperative neighborhood cache (see DESIGN.md experiment index).

use hpop_bench::experiments::e15_coop_cache;

fn main() {
    for table in e15_coop_cache::run_default() {
        println!("{table}");
    }
}
