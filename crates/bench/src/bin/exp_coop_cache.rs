//! E15: cooperative neighborhood cache (see DESIGN.md experiment index).

use hpop_bench::experiments::e15_coop_cache;

fn main() {
    hpop_bench::harness::run("coop_cache", e15_coop_cache::run_default);
}
