//! E5: NoCDN content integrity (see DESIGN.md experiment index).

use hpop_bench::experiments::e05_nocdn_integrity;

fn main() {
    hpop_bench::harness::run("nocdn_integrity", e05_nocdn_integrity::run_default);
}
