//! E6: NoCDN accounting and collusion detection (see DESIGN.md experiment index).

use hpop_bench::experiments::e06_nocdn_accounting;

fn main() {
    for table in e06_nocdn_accounting::run_default() {
        println!("{table}");
    }
}
