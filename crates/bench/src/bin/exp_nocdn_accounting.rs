//! E6: NoCDN accounting and collusion detection (see DESIGN.md experiment index).

use hpop_bench::experiments::e06_nocdn_accounting;

fn main() {
    hpop_bench::harness::run("nocdn_accounting", e06_nocdn_accounting::run_default);
}
