//! E16: HPoP reachability across NAT types (see DESIGN.md experiment index).

use hpop_bench::experiments::e16_nat_traversal;

fn main() {
    hpop_bench::harness::run("nat_traversal", e16_nat_traversal::run_default);
}
