//! E16: HPoP reachability across NAT types (see DESIGN.md experiment index).

use hpop_bench::experiments::e16_nat_traversal;

fn main() {
    for table in e16_nat_traversal::run_default() {
        println!("{table}");
    }
}
