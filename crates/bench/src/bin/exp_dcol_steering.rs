//! E9: ACK-delay scheduler steering (see DESIGN.md experiment index).

use hpop_bench::experiments::e09_dcol_steering;

fn main() {
    hpop_bench::harness::run("dcol_steering", e09_dcol_steering::run_default);
}
