//! E9: ACK-delay scheduler steering (see DESIGN.md experiment index).

use hpop_bench::experiments::e09_dcol_steering;

fn main() {
    for table in e09_dcol_steering::run_default() {
        println!("{table}");
    }
}
