//! E22: causal trace attribution of the NoCDN chaos tail plus the
//! measured cost of the tracing machinery (see DESIGN.md experiment
//! index).
//!
//! `--smoke` runs the reduced CI preset; add `--stable` for a
//! byte-identical replayable snapshot (pins the wall-clock gauge and
//! the overhead measurements). CI runs the smoke preset *without*
//! `--stable` so the `trace.overhead.pct_x100` ceiling is enforced on a
//! real measurement.

use hpop_bench::experiments::e22_trace_attribution;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        hpop_bench::harness::run_opts("trace_attribution", e22_trace_attribution::run_smoke);
    } else {
        hpop_bench::harness::run_opts("trace_attribution", e22_trace_attribution::run_default);
    }
}
