//! E3: last-mile to aggregation bottleneck shift (see DESIGN.md experiment index).

use hpop_bench::experiments::e03_bottleneck_shift;

fn main() {
    hpop_bench::harness::run("bottleneck_shift", e03_bottleneck_shift::run_default);
}
