//! E3: last-mile to aggregation bottleneck shift (see DESIGN.md experiment index).

use hpop_bench::experiments::e03_bottleneck_shift;

fn main() {
    for table in e03_bottleneck_shift::run_default() {
        println!("{table}");
    }
}
