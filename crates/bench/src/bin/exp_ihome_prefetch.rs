//! E13: Internet@home prefetch aggressiveness (see DESIGN.md experiment index).

use hpop_bench::experiments::e13_ihome_prefetch;

fn main() {
    for table in e13_ihome_prefetch::run_default() {
        println!("{table}");
    }
}
