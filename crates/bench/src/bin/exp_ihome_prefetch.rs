//! E13: Internet@home prefetch aggressiveness (see DESIGN.md experiment index).

use hpop_bench::experiments::e13_ihome_prefetch;

fn main() {
    hpop_bench::harness::run("ihome_prefetch", e13_ihome_prefetch::run_default);
}
