//! # hpop-internet-home — Internet@home (paper §IV-D)
//!
//! "We envision a more radical notion: keeping a local copy of the
//! entire Internet. Instead of retrieving content on-demand over the
//! wide-area network, users will access a local copy cached in the HPoP
//! … a key task is in approximating an exact copy of the Internet for
//! the given residence."
//!
//! - [`history`] — the long-term browsing profile driving
//!   "aggressiveness": which slice of the web this household actually
//!   lives in.
//! - [`prefetch`] — the scope-vs-freshness planner: how much to gather
//!   and how often to revalidate, with the upstream-load consequences
//!   the paper says the HPoP should measure from its vantage point.
//! - [`collector`] — deep-web gathering with vault-held credentials and
//!   data-attic hints ("gathering stock ticker symbols from tax
//!   documents").
//! - [`smoothing`] — demand smoothing: prefetching ahead of use lets
//!   the HPoP schedule acquisition at opportune times, flattening the
//!   upstream peak.
//! - [`coop`] — the cooperative neighborhood cache: adjacent HPoPs
//!   partition gathering duties and share content laterally, saving the
//!   shared aggregation uplink.
//! - [`durable`] — crash-consistent coop-cache index
//!   ([`DurableCoop`]): which member holds which object is journaled,
//!   so a restarted neighborhood serves laterally instead of
//!   re-crossing the uplink for content it already holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod coop;
pub mod durable;
pub mod executor;
pub mod history;
pub mod prefetch;
pub mod smoothing;

pub use collector::DeepWebCollector;
pub use coop::CoopCache;
pub use durable::DurableCoop;
pub use executor::{PrefetchExecutor, ServedFrom, SimulatedOrigin};
pub use history::{HistoryProfile, SiteStats};
pub use prefetch::{PrefetchPlan, PrefetchPlanner};
pub use smoothing::{DemandSmoother, HourlyLoad};
