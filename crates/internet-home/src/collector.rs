//! Deep-web gathering with vault credentials and attic hints.
//!
//! §IV-D ("Deep Web Content"): "the HPoP will hold user credentials so
//! it can copy deep web content, e.g., constantly collect comments on
//! user's Facebook page … While divulging credentials for web mail or
//! social networking services to some generic web proxy would be
//! unthinkable, providing these to a device in a user's own house … is
//! much more palatable."
//!
//! And ("Leveraging the Data Attic"): "by gathering stock ticker symbols
//! from tax documents the HPoP can maintain fresh stock quotes that are
//! germane to the users. The HPoP will provide a generic modular
//! framework such that many forms of information within the data attic
//! can trigger data collection."
//!
//! [`DeepWebCollector`] subscribes to `attic.write` events, runs
//! registered *hint extractors* over written content, and fetches both
//! credentialed and hint-derived URLs.

use hpop_core::events::{Event, EventBus};
use hpop_core::identity::UserId;
use hpop_core::vault::CredentialVault;
use hpop_http::url::Url;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Extracts follow-up URLs from content written into the attic.
/// (The paper's example: tax document → stock tickers → quote URLs.)
pub type HintExtractor = Box<dyn Fn(&str, &str) -> Vec<Url> + Send>;

/// A site the collector gathers on a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeepWebSource {
    /// The site's credential key in the vault.
    pub site: String,
    /// The owning user (vault access control).
    pub owner: UserId,
    /// The URL collected once credentials are presented.
    pub url: Url,
}

/// What one collection pass gathered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CollectionReport {
    /// Credentialed URLs fetched successfully.
    pub fetched: Vec<Url>,
    /// Sources skipped because the vault denied access.
    pub denied: Vec<String>,
}

/// The deep-web + hint-driven collector.
pub struct DeepWebCollector {
    sources: Vec<DeepWebSource>,
    extractors: Vec<HintExtractor>,
    /// URLs queued by attic hints, de-duplicated.
    hint_queue: Arc<Mutex<BTreeSet<Url>>>,
}

impl std::fmt::Debug for DeepWebCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeepWebCollector")
            .field("sources", &self.sources.len())
            .field("extractors", &self.extractors.len())
            .field("queued_hints", &self.hint_queue.lock().len())
            .finish()
    }
}

impl Default for DeepWebCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl DeepWebCollector {
    /// An empty collector.
    pub fn new() -> Self {
        DeepWebCollector {
            sources: Vec::new(),
            extractors: Vec::new(),
            hint_queue: Arc::new(Mutex::new(BTreeSet::new())),
        }
    }

    /// Registers a credentialed source.
    pub fn add_source(&mut self, source: DeepWebSource) {
        self.sources.push(source);
    }

    /// Registers a hint extractor run over every attic write.
    pub fn add_extractor(&mut self, f: impl Fn(&str, &str) -> Vec<Url> + Send + 'static) {
        self.extractors.push(Box::new(f));
    }

    /// Wires the collector to the appliance bus: `attic.write` events
    /// carry the written path; the attic content is looked up via
    /// `read_attic` and run through the built-in ticker extractor (the
    /// subscription cannot borrow `self`; use
    /// [`DeepWebCollector::ingest_attic_write`] to route content through
    /// custom extractors).
    pub fn attach(
        &self,
        bus: &EventBus,
        read_attic: impl Fn(&str) -> Option<String> + Send + 'static,
    ) {
        let queue = self.hint_queue.clone();
        bus.subscribe("attic.write", move |event: &Event| {
            if let Some(content) = read_attic(&event.payload) {
                let mut q = queue.lock();
                for url in builtin_ticker_extractor(&event.payload, &content) {
                    q.insert(url);
                }
            }
        });
    }

    /// Queues hints from a piece of attic content through all registered
    /// extractors (direct entry point; `attach` wires the built-in
    /// ticker extractor to the bus).
    pub fn ingest_attic_write(&self, path: &str, content: &str) {
        let mut q = self.hint_queue.lock();
        for ex in &self.extractors {
            for url in ex(path, content) {
                q.insert(url);
            }
        }
    }

    /// Drains the queued hint URLs (the scheduler fetches them).
    pub fn take_hints(&self) -> Vec<Url> {
        let mut q = self.hint_queue.lock();
        let out: Vec<Url> = q.iter().cloned().collect();
        q.clear();
        out
    }

    /// Runs one credentialed collection pass: for each source, access
    /// the credential as `actor` and — when the vault allows — fetch the
    /// URL via `fetch` (which receives the credential secret).
    pub fn collect(
        &self,
        vault: &mut CredentialVault,
        actor: &str,
        mut fetch: impl FnMut(&Url, &str) -> bool,
    ) -> CollectionReport {
        let mut report = CollectionReport::default();
        for src in &self.sources {
            match vault.access(src.owner, &src.site, actor) {
                Some(cred) => {
                    if fetch(&src.url, &cred.secret) {
                        report.fetched.push(src.url.clone());
                    }
                }
                None => report.denied.push(src.site.clone()),
            }
        }
        report
    }
}

/// The paper's worked example as a built-in extractor: find
/// `TICKER:XYZ` markers in attic documents and emit quote URLs.
pub fn builtin_ticker_extractor(_path: &str, content: &str) -> Vec<Url> {
    let mut out = Vec::new();
    for token in content.split_whitespace() {
        if let Some(sym) = token.strip_prefix("TICKER:") {
            let sym: String = sym
                .chars()
                .take_while(|c| c.is_ascii_alphabetic())
                .collect();
            if !sym.is_empty() && sym.len() <= 5 {
                out.push(Url::https("quotes.example", &format!("/q/{sym}")));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_core::vault::SiteCredential;

    const ALICE: UserId = UserId(0);
    const BOB: UserId = UserId(1);

    fn vault_with_alice_mail() -> CredentialVault {
        let mut v = CredentialVault::from_passphrase("house");
        v.store(
            ALICE,
            "mail.example",
            SiteCredential {
                username: "alice".into(),
                secret: "s3cret".into(),
            },
            "setup",
        );
        v
    }

    #[test]
    fn credentialed_collection_uses_vault() {
        let mut vault = vault_with_alice_mail();
        let mut c = DeepWebCollector::new();
        c.add_source(DeepWebSource {
            site: "mail.example".into(),
            owner: ALICE,
            url: Url::https("mail.example", "/inbox"),
        });
        let mut seen_secret = String::new();
        let report = c.collect(&mut vault, "internet-home", |_, secret| {
            seen_secret = secret.to_owned();
            true
        });
        assert_eq!(report.fetched.len(), 1);
        assert_eq!(seen_secret, "s3cret");
        // The vault audit shows the access by the collector.
        assert!(vault
            .audit_log()
            .iter()
            .any(|e| e.actor == "internet-home" && e.action == "access"));
    }

    #[test]
    fn wrong_owner_is_denied_and_reported() {
        let mut vault = vault_with_alice_mail();
        let mut c = DeepWebCollector::new();
        c.add_source(DeepWebSource {
            site: "mail.example".into(),
            owner: BOB, // Bob doesn't own this credential
            url: Url::https("mail.example", "/inbox"),
        });
        let report = c.collect(&mut vault, "internet-home", |_, _| true);
        assert!(report.fetched.is_empty());
        assert_eq!(report.denied, vec!["mail.example".to_owned()]);
    }

    #[test]
    fn ticker_extractor_finds_symbols() {
        let urls = builtin_ticker_extractor(
            "/finance/tax-2026.txt",
            "dividends from TICKER:ACME and TICKER:ZORG, ignore TICKER:toolongsym",
        );
        assert_eq!(urls.len(), 2);
        assert!(urls.contains(&Url::https("quotes.example", "/q/ACME")));
        assert!(urls.contains(&Url::https("quotes.example", "/q/ZORG")));
    }

    #[test]
    fn ingest_runs_registered_extractors_and_dedups() {
        let mut c = DeepWebCollector::new();
        c.add_extractor(builtin_ticker_extractor);
        c.ingest_attic_write("/finance/a.txt", "TICKER:ACME TICKER:ACME");
        c.ingest_attic_write("/finance/b.txt", "TICKER:ACME");
        let hints = c.take_hints();
        assert_eq!(hints, vec![Url::https("quotes.example", "/q/ACME")]);
        // Queue drained.
        assert!(c.take_hints().is_empty());
    }

    #[test]
    fn attic_events_trigger_hint_collection() {
        let bus = EventBus::new();
        let c = DeepWebCollector::new();
        c.attach(&bus, |path| {
            (path == "/finance/tax.txt").then(|| "TICKER:ACME owns us".to_owned())
        });
        bus.publish(Event::new("attic.write", "/finance/tax.txt"));
        bus.publish(Event::new("attic.write", "/photos/cat.jpg"));
        let hints = c.take_hints();
        assert_eq!(hints, vec![Url::https("quotes.example", "/q/ACME")]);
    }
}
