//! The cooperative neighborhood cache.
//!
//! §IV-D ("A Cooperative Cache"): "neighboring HPoPs can link together
//! to coordinate their content gathering activities and avoid duplicate
//! retrievals and storage of content in an effort to save aggregate
//! capacity to the neighborhood. Content can then be shared by all
//! hosts within the community in a peer-to-peer manner."
//!
//! Each object has one *owner* HPoP (highest-random-weight hashing, so
//! membership changes move a minimal share of objects). A request tries
//! the local cache, then the owner over the (cheap, lateral) gigabit
//! neighborhood links, and only then the origin over the (shared,
//! scarce) aggregation uplink. [`CoopStats`] splits traffic across
//! those three tiers — experiment E15's metric.

//! Membership churn is fed in from the fabric layer: a member whose
//! HPoP the failure detector declares dead is excluded from ownership
//! ([`CoopCache::apply_view`] / [`CoopCache::set_member_up`]), so
//! requests re-route to the highest-random-weight *alive* member and
//! re-warm its cache — no request ever waits on a dead owner.

use hpop_crypto::sha256::Sha256;
use hpop_fabric::PeerView;
use hpop_http::url::Url;
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_resilience::{
    Admission, AdmissionConfig, BreakerBank, BreakerConfig, BreakerState, Brownout, BrownoutConfig,
    BrownoutLevel, LoadShedder, Overloaded, SaturationSignal, ShedThresholds, WorkClass,
};
use std::collections::{BTreeMap, BTreeSet};

/// Maps a coop member id into the fabric namespace (offset to avoid
/// colliding with NoCDN / DCol ids on a shared ledger).
fn fid(member: u32) -> hpop_fabric::PeerId {
    hpop_fabric::PeerId(2 << 32 | member as u64)
}

/// Where a request was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FetchTier {
    /// The requesting HPoP's own cache.
    Local,
    /// Another HPoP in the neighborhood (lateral gigabit).
    Neighbor,
    /// A possibly-outdated lateral copy served while the neighborhood
    /// is degraded (the current owner unreachable) — stale beats a
    /// failed or uplink-bound fetch.
    Stale,
    /// The origin, over the shared aggregation uplink.
    Origin,
}

/// Aggregate traffic statistics across the neighborhood.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoopStats {
    /// Requests served from the requester's own cache.
    pub local_hits: u64,
    /// Requests served laterally by a neighbor.
    pub neighbor_hits: u64,
    /// Requests served from a stale lateral copy while degraded.
    pub stale_hits: u64,
    /// Requests that crossed the aggregation uplink to the origin.
    pub origin_fetches: u64,
    /// Bytes that crossed the aggregation uplink.
    pub uplink_bytes: u64,
    /// Bytes that moved laterally between HPoPs.
    pub lateral_bytes: u64,
}

impl CoopStats {
    /// Fraction of requests kept inside the neighborhood (stale serves
    /// count: they never crossed the uplink).
    pub fn containment(&self) -> f64 {
        let total = self.local_hits + self.neighbor_hits + self.stale_hits + self.origin_fetches;
        if total == 0 {
            0.0
        } else {
            (self.local_hits + self.neighbor_hits + self.stale_hits) as f64 / total as f64
        }
    }
}

/// Overload-control tuning for a neighborhood cache (see
/// [`CoopCache::enable_overload`]).
#[derive(Clone, Copy, Debug)]
pub struct CoopOverloadConfig {
    /// Admission controller (token-bucket rate + AIMD concurrency).
    pub admission: AdmissionConfig,
    /// The brownout degradation ladder.
    pub brownout: BrownoutConfig,
    /// Priority-shed thresholds for background work.
    pub shed: ShedThresholds,
    /// Requests within [`hot_window`](CoopOverloadConfig::hot_window)
    /// that make an object *hot* (rising Zipf head): hot objects get
    /// temporary extra replicas so the owner stops being a bottleneck.
    pub hot_threshold: u32,
    /// The popularity-counting window.
    pub hot_window: SimDuration,
}

impl Default for CoopOverloadConfig {
    fn default() -> CoopOverloadConfig {
        CoopOverloadConfig {
            admission: AdmissionConfig::default(),
            brownout: BrownoutConfig::default(),
            shed: ShedThresholds::default(),
            hot_threshold: 8,
            hot_window: SimDuration::from_secs(10),
        }
    }
}

/// The overload-control runtime attached to a [`CoopCache`] by
/// [`CoopCache::enable_overload`].
#[derive(Clone, Debug)]
struct CoopOverload {
    admission: Admission,
    brownout: Brownout,
    shedder: LoadShedder,
    /// Published saturation; the NoCDN hedge gate and fabric derating
    /// read this without borrowing the cache.
    signal: SaturationSignal,
    hot_threshold: u32,
    hot_window: SimDuration,
    /// url → (window start, requests seen in window).
    hot_counts: BTreeMap<Url, (SimTime, u32)>,
    /// Interactive requests refused with `Overloaded`.
    rejected: u64,
    /// `retry_after` hint when the `Reject` rung refuses (the ladder's
    /// dwell time: the soonest the rung could possibly step down).
    reject_retry_after: SimDuration,
}

impl CoopOverload {
    /// Bumps the popularity counter and reports whether `url` is hot
    /// (rising-head object under flash-crowd demand).
    fn note_request(&mut self, url: &Url, now: SimTime) -> bool {
        let entry = self.hot_counts.entry(url.clone()).or_insert((now, 0));
        if now.saturating_since(entry.0) > self.hot_window {
            *entry = (now, 0);
        }
        entry.1 += 1;
        entry.1 >= self.hot_threshold
    }
}

/// A neighborhood of cooperating HPoP caches.
///
/// ```
/// use hpop_internet_home::coop::{CoopCache, FetchTier};
/// use hpop_http::url::Url;
///
/// let mut hood = CoopCache::new(4);
/// let url = Url::https("web.example", "/news");
/// // First request in the neighborhood crosses the uplink once…
/// assert_eq!(hood.request(0, &url, 50_000), FetchTier::Origin);
/// // …after which any member gets it laterally or locally.
/// assert_ne!(hood.request(1, &url, 50_000), FetchTier::Origin);
/// ```
#[derive(Clone, Debug)]
pub struct CoopCache {
    /// member id → cached object set (sizes tracked separately).
    members: BTreeMap<u32, BTreeSet<Url>>,
    /// Whether cooperation is enabled (off = independent caches, the
    /// baseline ablation).
    cooperative: bool,
    /// Members currently believed down (excluded from ownership).
    down: BTreeSet<u32>,
    /// Per-member circuit breakers over lateral fetches: a member whose
    /// circuit is open is treated like a down member (no ownership, no
    /// lateral serving) until it half-opens.
    breakers: BreakerBank<u32>,
    stats: CoopStats,
    /// Where the last origin fetch was cached (member, object) — the
    /// write-through hook [`crate::durable::DurableCoop`] journals.
    last_fill: Option<(u32, Url)>,
    /// Overload controls (admission, brownout, shedding, hot-object
    /// replication) — absent by default, enabled by
    /// [`CoopCache::enable_overload`].
    overload: Option<CoopOverload>,
}

impl CoopCache {
    /// A neighborhood of `n` HPoPs with cooperation enabled.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32) -> CoopCache {
        assert!(n > 0, "a neighborhood needs at least one HPoP");
        CoopCache {
            members: (0..n).map(|i| (i, BTreeSet::new())).collect(),
            cooperative: true,
            down: BTreeSet::new(),
            breakers: BreakerBank::new(BreakerConfig::default()),
            stats: CoopStats::default(),
            last_fill: None,
            overload: None,
        }
    }

    /// Rebuilds a neighborhood from a recovered member → cached-object
    /// index (the durable part of a coop cache: contents live on HPoP
    /// disks and survive restarts, while liveness beliefs, breaker
    /// circuits and traffic statistics are runtime state and start
    /// fresh).
    ///
    /// # Panics
    ///
    /// Panics if `contents` has no members.
    pub fn from_contents(contents: BTreeMap<u32, BTreeSet<Url>>) -> CoopCache {
        assert!(
            !contents.is_empty(),
            "a neighborhood needs at least one HPoP"
        );
        CoopCache {
            members: contents,
            cooperative: true,
            down: BTreeSet::new(),
            breakers: BreakerBank::new(BreakerConfig::default()),
            stats: CoopStats::default(),
            last_fill: None,
            overload: None,
        }
    }

    /// The member → cached-object index (what `from_contents` restores).
    pub fn contents(&self) -> &BTreeMap<u32, BTreeSet<Url>> {
        &self.members
    }

    /// Takes the (member, object) pair the last request cached from an
    /// origin fetch, if any — the durability adapter's write-through
    /// hook.
    pub fn take_last_fill(&mut self) -> Option<(u32, Url)> {
        self.last_fill.take()
    }

    /// Disables lateral sharing (independent-caches baseline).
    pub fn independent(mut self) -> CoopCache {
        self.cooperative = false;
        self
    }

    /// Attaches overload controls: admission (token-bucket + AIMD),
    /// the brownout ladder, priority shedding, and hot-object
    /// replication. Interactive requests then go through
    /// [`CoopCache::try_request_at`], background work through
    /// [`CoopCache::offer_background`].
    pub fn enable_overload(&mut self, cfg: CoopOverloadConfig, now: SimTime) {
        self.overload = Some(CoopOverload {
            admission: Admission::new(cfg.admission, now),
            brownout: Brownout::new(cfg.brownout),
            shedder: LoadShedder::new(cfg.shed),
            signal: SaturationSignal::new(),
            hot_threshold: cfg.hot_threshold.max(1),
            hot_window: cfg.hot_window,
            hot_counts: BTreeMap::new(),
            rejected: 0,
            reject_retry_after: cfg.brownout.min_dwell,
        });
    }

    /// The shared saturation signal published by the overload
    /// controller — wire it to [`hpop_resilience::Hedge`] gates or
    /// fabric capacity derating. `None` until
    /// [`CoopCache::enable_overload`].
    pub fn saturation_signal(&self) -> Option<SaturationSignal> {
        self.overload.as_ref().map(|ov| ov.signal.clone())
    }

    /// The brownout rung currently in force (`Full` when overload
    /// controls are off).
    pub fn brownout_level(&self) -> BrownoutLevel {
        self.overload
            .as_ref()
            .map_or(BrownoutLevel::Full, |ov| ov.brownout.level())
    }

    /// The overload controller's measured saturation at `now` (0.0
    /// when controls are off).
    pub fn saturation(&self, now: SimTime) -> f64 {
        self.overload
            .as_ref()
            .map_or(0.0, |ov| ov.admission.saturation(now))
    }

    /// Feeds the serving queue's fill fraction into the admission
    /// saturation signal — the backpressure input from a
    /// [`hpop_resilience::BoundedQueue`] in front of the cache.
    pub fn set_queue_pressure(&mut self, pressure: f64) {
        if let Some(ov) = self.overload.as_mut() {
            ov.admission.set_queue_pressure(pressure);
        }
    }

    /// Interactive requests refused with [`Overloaded`] so far.
    pub fn overload_rejected(&self) -> u64 {
        self.overload.as_ref().map_or(0, |ov| ov.rejected)
    }

    /// The priority shedder's accounting (None while controls are off).
    pub fn shedder(&self) -> Option<&LoadShedder> {
        self.overload.as_ref().map(|ov| &ov.shedder)
    }

    /// Offers one unit of *background* work (prefetch, shard repair,
    /// anti-entropy) to the overload controller. Returns `true` when
    /// the work may run now, `false` when it was shed — background
    /// classes shed strictly before interactive traffic is touched.
    /// Without overload controls everything runs.
    pub fn offer_background(&mut self, class: WorkClass, now: SimTime) -> bool {
        match self.overload.as_mut() {
            None => true,
            Some(ov) => {
                let sat = ov.admission.saturation(now);
                !ov.shedder.admit(class, sat)
            }
        }
    }

    /// Number of member HPoPs.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The owner HPoP of a URL: highest-random-weight hash over the
    /// *alive* membership, so ownership (and only the dead member's
    /// share of it) re-routes around churn.
    ///
    /// # Panics
    ///
    /// Panics when every member is believed down.
    pub fn owner_of(&self, url: &Url) -> u32 {
        let key = url.to_string();
        self.members
            .keys()
            .copied()
            .filter(|m| !self.down.contains(m))
            .max_by_key(|m| {
                let d = Sha256::digest(format!("{m}|{key}").as_bytes());
                u64::from_be_bytes(d.as_bytes()[..8].try_into().expect("8 bytes"))
            })
            .expect("at least one member is up")
    }

    /// Marks one member up or down directly (the fabric-free path used
    /// by tests and by a member's own lateral-probe failures).
    ///
    /// # Panics
    ///
    /// Panics for unknown members.
    pub fn set_member_up(&mut self, member: u32, up: bool) {
        assert!(
            self.members.contains_key(&member),
            "unknown member {member}"
        );
        if up {
            self.down.remove(&member);
        } else {
            self.down.insert(member);
        }
    }

    /// Adopts liveness beliefs from a gossip [`PeerView`]: members the
    /// fabric believes dead stop owning objects until a later view
    /// refutes the death. Members unknown to the view are untouched.
    pub fn apply_view(&mut self, view: &PeerView) {
        let ids: Vec<u32> = self.members.keys().copied().collect();
        for m in ids {
            if view.get(fid(m)).is_some() {
                self.set_member_up(m, view.is_alive(fid(m)));
            }
        }
    }

    /// Members currently believed up.
    pub fn up_count(&self) -> usize {
        self.members.len() - self.down.len()
    }

    /// Reports the outcome of one lateral fetch against `member`'s
    /// HPoP. Failures feed its circuit breaker; while the circuit is
    /// open the member is treated like a down member (no ownership, no
    /// lateral serving), then half-opens for a probe — the resilience
    /// path for flaky-but-not-dead neighbors the failure detector has
    /// not (yet) declared down.
    ///
    /// # Panics
    ///
    /// Panics for unknown members.
    pub fn report_lateral_outcome(&mut self, member: u32, now: SimTime, ok: bool) {
        assert!(
            self.members.contains_key(&member),
            "unknown member {member}"
        );
        self.breakers.record(member, now, ok);
    }

    /// Whether `member` can serve lateral traffic at `now`: believed
    /// up and its breaker circuit is not hard-open.
    fn usable(&self, member: u32, now: SimTime) -> bool {
        !self.down.contains(&member) && self.breakers.state(member, now) != BreakerState::Open
    }

    /// Whether the neighborhood is degraded at `now` (any member down
    /// or breaker-withdrawn) — the only state in which stale serves are
    /// permitted.
    fn is_degraded(&self, now: SimTime) -> bool {
        !self.down.is_empty() || !self.breakers.tripped(now).is_empty()
    }

    /// The owner at `now`: HRW over members that are up *and* whose
    /// breaker admits traffic.
    fn owner_usable_at(&self, url: &Url, now: SimTime) -> Option<u32> {
        let key = url.to_string();
        self.members
            .keys()
            .copied()
            .filter(|&m| self.usable(m, now))
            .max_by_key(|m| {
                let d = Sha256::digest(format!("{m}|{key}").as_bytes());
                u64::from_be_bytes(d.as_bytes()[..8].try_into().expect("8 bytes"))
            })
    }

    /// `member` requests `url` (`bytes` large). Resolution order: local
    /// cache → owner's cache (cooperative mode) → origin. Fetched
    /// content is cached at the owner (cooperative) or locally
    /// (independent); lateral copies are *not* duplicated — the paper's
    /// "avoid duplicate retrievals and storage".
    ///
    /// Time-blind wrapper over [`CoopCache::request_at`] (evaluated at
    /// the epoch, where an untouched breaker bank changes nothing).
    ///
    /// # Panics
    ///
    /// Panics for unknown members.
    pub fn request(&mut self, member: u32, url: &Url, bytes: u64) -> FetchTier {
        self.request_at(member, url, bytes, SimTime::ZERO)
    }

    /// [`CoopCache::request`] with the resilience ladder: local cache →
    /// usable owner → **stale lateral copy** (only while the
    /// neighborhood is degraded) → origin. A stale serve keeps the
    /// request off the scarce aggregation uplink when the rightful
    /// owner is unreachable; when the neighborhood is healthy the owner
    /// path guarantees freshness as before.
    ///
    /// # Panics
    ///
    /// Panics for unknown members.
    pub fn request_at(&mut self, member: u32, url: &Url, bytes: u64, now: SimTime) -> FetchTier {
        let tier = self.resolve_with(member, url, bytes, now, BrownoutLevel::Full, false);
        self.record_request_span(tier, now);
        tier
    }

    /// [`CoopCache::request_at`] under admission control: the overload
    /// path for flash crowds. The admission controller may refuse with
    /// a typed [`Overloaded`] (token bucket dry, concurrency limit
    /// full, or the brownout ladder at its `Reject` rung); admitted
    /// requests are resolved under the current brownout level —
    /// `StaleAllowed` serves stale lateral copies as a *load* rung
    /// (not only a failure fallback), `RedirectOrigin` skips lateral
    /// work entirely. Rising-head (hot) objects picked up by the
    /// popularity tracker get temporary extra replicas at their
    /// requesters so the HRW owner stops being a bottleneck.
    ///
    /// Without [`CoopCache::enable_overload`] this is exactly
    /// [`CoopCache::request_at`].
    ///
    /// # Panics
    ///
    /// Panics for unknown members.
    pub fn try_request_at(
        &mut self,
        member: u32,
        url: &Url,
        bytes: u64,
        now: SimTime,
    ) -> Result<FetchTier, Overloaded> {
        if self.overload.is_none() {
            return Ok(self.request_at(member, url, bytes, now));
        }
        let (level, hot) = {
            let ov = self.overload.as_mut().expect("checked above");
            let sat = ov.admission.saturation(now);
            let level = ov.brownout.observe(sat, now);
            ov.signal.publish(sat);
            if level == BrownoutLevel::Reject {
                ov.rejected += 1;
                hpop_obs::metrics().counter("coop.overload.rejected").incr();
                return Err(Overloaded {
                    retry_after: ov.reject_retry_after,
                });
            }
            if let Err(over) = ov.admission.try_admit(now) {
                ov.rejected += 1;
                hpop_obs::metrics().counter("coop.overload.rejected").incr();
                return Err(over);
            }
            (level, ov.note_request(url, now))
        };
        let tier = self.resolve_with(member, url, bytes, now, level, hot);
        self.record_request_span(tier, now);
        // Cache resolution is instantaneous in sim time: the permit is
        // returned immediately, and the AIMD window treats every
        // resolved request as a success (refusals never got a permit).
        self.overload
            .as_mut()
            .expect("checked above")
            .admission
            .complete(false);
        Ok(tier)
    }

    /// Cache resolution is instantaneous in sim time, so the ladder
    /// trace is zero-width: it records *which* tier served the
    /// request on the causal path, not invented latency.
    fn record_request_span(&self, tier: FetchTier, now: SimTime) {
        let spans = hpop_obs::spans();
        let root = spans.root();
        if root.is_sampled() {
            let t_us = now.as_nanos() / 1_000;
            let stage = match tier {
                FetchTier::Origin => "origin_fallback",
                FetchTier::Local | FetchTier::Neighbor | FetchTier::Stale => "transfer",
            };
            spans.record_child(&root, "coop", stage, t_us, t_us);
            spans.record(&root, "coop", "request", t_us, t_us);
        }
    }

    fn resolve_with(
        &mut self,
        member: u32,
        url: &Url,
        bytes: u64,
        now: SimTime,
        level: BrownoutLevel,
        hot: bool,
    ) -> FetchTier {
        assert!(
            self.members.contains_key(&member),
            "unknown member {member}"
        );
        self.last_fill = None;
        if self.members[&member].contains(url) {
            self.stats.local_hits += 1;
            return FetchTier::Local;
        }
        if !self.cooperative {
            self.stats.origin_fetches += 1;
            self.stats.uplink_bytes += bytes;
            self.members
                .get_mut(&member)
                .expect("member exists")
                .insert(url.clone());
            self.last_fill = Some((member, url.clone()));
            return FetchTier::Origin;
        }
        // RedirectOrigin and above: the neighborhood is too saturated
        // for lateral work — a local miss goes straight to the origin
        // (the CDN is provisioned for crowds; the neighbor links are
        // not) and the fill lands locally, costing no lateral bytes.
        if level >= BrownoutLevel::RedirectOrigin {
            hpop_obs::metrics()
                .counter("coop.overload.redirects")
                .incr();
            self.stats.origin_fetches += 1;
            self.stats.uplink_bytes += bytes;
            self.members
                .get_mut(&member)
                .expect("member exists")
                .insert(url.clone());
            self.last_fill = Some((member, url.clone()));
            return FetchTier::Origin;
        }
        let owner = self.owner_usable_at(url, now);
        if let Some(owner) = owner {
            if owner != member && self.members[&owner].contains(url) {
                self.stats.neighbor_hits += 1;
                self.stats.lateral_bytes += bytes;
                if hot {
                    // Rising-head object: replicate to the requester so
                    // the next wave finds it locally and the HRW owner
                    // stops being the single hot spot.
                    self.members
                        .get_mut(&member)
                        .expect("member exists")
                        .insert(url.clone());
                    hpop_obs::metrics().counter("coop.hot.replicas").incr();
                }
                return FetchTier::Neighbor;
            }
        }
        // Hot objects may be served by *any* usable holder — the
        // temporary replicas made above form an ad-hoc serving set
        // wider than the single HRW owner.
        if hot {
            let holder = self
                .members
                .iter()
                .find(|(&m, objs)| m != member && self.usable(m, now) && objs.contains(url))
                .map(|(&m, _)| m);
            if holder.is_some() {
                self.stats.neighbor_hits += 1;
                self.stats.lateral_bytes += bytes;
                self.members
                    .get_mut(&member)
                    .expect("member exists")
                    .insert(url.clone());
                hpop_obs::metrics().counter("coop.hot.replicas").incr();
                return FetchTier::Neighbor;
            }
        }
        // Stale-then-origin: while degraded — or while the brownout
        // ladder has opened the StaleAllowed rung under load — any
        // other usable member holding a (possibly outdated) copy
        // serves it laterally before the request is allowed to cross
        // the uplink.
        if self.is_degraded(now) || level >= BrownoutLevel::StaleAllowed {
            let stale_holder = self
                .members
                .iter()
                .find(|(&m, objs)| m != member && self.usable(m, now) && objs.contains(url))
                .map(|(&m, _)| m);
            if stale_holder.is_some() {
                self.stats.stale_hits += 1;
                self.stats.lateral_bytes += bytes;
                hpop_obs::metrics().counter("coop.stale_serves").incr();
                return FetchTier::Stale;
            }
        }
        // Origin fetch, stored at the owner (or locally when no owner
        // is usable) for the whole neighborhood; if the cache point is
        // not the requester the bytes also cross the lateral network.
        self.stats.origin_fetches += 1;
        self.stats.uplink_bytes += bytes;
        let cache_at = owner.unwrap_or(member);
        self.members
            .get_mut(&cache_at)
            .expect("member exists")
            .insert(url.clone());
        self.last_fill = Some((cache_at, url.clone()));
        if cache_at != member {
            self.stats.lateral_bytes += bytes;
        }
        FetchTier::Origin
    }

    /// A new HPoP joins the neighborhood (a family moves in). Returns
    /// its member id. Ownership of a `1/(n+1)` share of the object space
    /// migrates to it — highest-random-weight hashing moves nothing
    /// else, so existing cached copies mostly stay useful.
    pub fn add_member(&mut self) -> u32 {
        let id = self.members.keys().next_back().map_or(0, |m| m + 1);
        self.members.insert(id, BTreeSet::new());
        id
    }

    /// An HPoP leaves (moves away, dies). Its cached objects are lost;
    /// ownership of its share redistributes across the survivors.
    /// Returns how many cached objects were lost with it.
    ///
    /// # Panics
    ///
    /// Panics when removing the last member (a neighborhood of zero
    /// cannot serve requests).
    pub fn remove_member(&mut self, member: u32) -> usize {
        assert!(
            self.members.len() > 1,
            "cannot remove the last HPoP in the neighborhood"
        );
        self.down.remove(&member);
        self.members
            .remove(&member)
            .map(|objs| objs.len())
            .unwrap_or(0)
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> CoopStats {
        self.stats
    }

    /// Total objects stored across the neighborhood (duplicate-storage
    /// metric).
    pub fn stored_objects(&self) -> usize {
        self.members.values().map(BTreeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> Url {
        Url::https("web.example", &format!("/obj{i}"))
    }

    #[test]
    fn owner_is_stable_and_balanced() {
        let coop = CoopCache::new(8);
        let mut counts = BTreeMap::new();
        for i in 0..800 {
            let o = coop.owner_of(&u(i));
            assert_eq!(o, coop.owner_of(&u(i)), "stability");
            *counts.entry(o).or_insert(0u32) += 1;
        }
        // Each of 8 members owns roughly 100 of 800 objects.
        for (&m, &c) in &counts {
            assert!((60..=140).contains(&c), "member {m} owns {c}");
        }
    }

    #[test]
    fn second_requester_hits_neighbor_not_origin() {
        let mut coop = CoopCache::new(4);
        let url = u(1);
        assert_eq!(coop.request(0, &url, 1000), FetchTier::Origin);
        // A different member: lateral hit, no second uplink crossing.
        let owner = coop.owner_of(&url);
        let other = (0..4).find(|&m| m != owner).unwrap();
        assert_eq!(coop.request(other, &url, 1000), FetchTier::Neighbor);
        let s = coop.stats();
        assert_eq!(s.origin_fetches, 1);
        assert_eq!(s.uplink_bytes, 1000);
        assert_eq!(s.neighbor_hits, 1);
    }

    #[test]
    fn owner_requesting_again_is_local() {
        let mut coop = CoopCache::new(4);
        let url = u(2);
        let owner = coop.owner_of(&url);
        assert_eq!(coop.request(owner, &url, 500), FetchTier::Origin);
        assert_eq!(coop.request(owner, &url, 500), FetchTier::Local);
    }

    #[test]
    fn independent_caches_fetch_repeatedly() {
        let mut indep = CoopCache::new(4).independent();
        let url = u(3);
        for m in 0..4 {
            assert_eq!(indep.request(m, &url, 1000), FetchTier::Origin);
        }
        let s = indep.stats();
        assert_eq!(s.origin_fetches, 4);
        assert_eq!(s.uplink_bytes, 4000);
        assert_eq!(s.neighbor_hits, 0);
        // …and stores four duplicate copies.
        assert_eq!(indep.stored_objects(), 4);
    }

    #[test]
    fn cooperation_saves_uplink_bytes_and_storage() {
        let mut coop = CoopCache::new(10);
        let mut indep = CoopCache::new(10).independent();
        // Every member requests the same 20 objects.
        for obj in 0..20 {
            for m in 0..10 {
                coop.request(m, &u(obj), 10_000);
                indep.request(m, &u(obj), 10_000);
            }
        }
        assert_eq!(coop.stats().origin_fetches, 20);
        assert_eq!(indep.stats().origin_fetches, 200);
        assert!(coop.stats().uplink_bytes * 9 <= indep.stats().uplink_bytes);
        assert_eq!(coop.stored_objects(), 20);
        assert_eq!(indep.stored_objects(), 200);
        assert!(coop.stats().containment() > 0.85);
    }

    #[test]
    fn join_moves_minimal_ownership() {
        let mut coop = CoopCache::new(10);
        let before: Vec<u32> = (0..1000).map(|i| coop.owner_of(&u(i))).collect();
        let newbie = coop.add_member();
        assert_eq!(newbie, 10);
        let mut moved = 0;
        let mut moved_to_newbie = 0;
        for (i, &old) in before.iter().enumerate() {
            let now = coop.owner_of(&u(i as u32));
            if now != old {
                moved += 1;
                if now == newbie {
                    moved_to_newbie += 1;
                }
            }
        }
        // HRW: everything that moves, moves to the newcomer, and the
        // moved share is ~1/11 of the object space.
        assert_eq!(moved, moved_to_newbie);
        assert!((50..=140).contains(&moved), "moved {moved} of 1000");
    }

    #[test]
    fn leave_redistributes_only_the_departed_share() {
        let mut coop = CoopCache::new(10);
        let before: Vec<u32> = (0..1000).map(|i| coop.owner_of(&u(i))).collect();
        // Warm the departing member's cache.
        let victim = 3u32;
        let mut victim_owned = 0;
        for i in 0..1000u32 {
            if coop.owner_of(&u(i)) == victim {
                coop.request(victim, &u(i), 100);
                victim_owned += 1;
            }
        }
        let lost = coop.remove_member(victim);
        assert_eq!(lost, victim_owned);
        for (i, &old) in before.iter().enumerate() {
            let now = coop.owner_of(&u(i as u32));
            if old != victim {
                assert_eq!(now, old, "object {i} moved needlessly");
            } else {
                assert_ne!(now, victim);
            }
        }
    }

    #[test]
    fn dead_owner_reroutes_to_alive_member() {
        let mut coop = CoopCache::new(4);
        let url = u(5);
        let owner = coop.owner_of(&url);
        // Warm the owner's cache, then the owner dies.
        coop.request(owner, &url, 1000);
        coop.set_member_up(owner, false);
        assert_eq!(coop.up_count(), 3);
        let new_owner = coop.owner_of(&url);
        assert_ne!(new_owner, owner);
        // A survivor's request re-fetches from the origin (the cached
        // copy died with its holder) and re-warms the new owner.
        let requester = (0..4).find(|&m| m != owner && m != new_owner).unwrap();
        assert_eq!(coop.request(requester, &url, 1000), FetchTier::Origin);
        assert_eq!(coop.request(requester, &url, 1000), FetchTier::Neighbor);
        // The owner rejoins: its original share of the space returns.
        coop.set_member_up(owner, true);
        assert_eq!(coop.owner_of(&url), owner);
    }

    #[test]
    fn apply_view_tracks_fabric_liveness() {
        use hpop_fabric::{Advertisement, PeerEntry, PeerState};
        let mut coop = CoopCache::new(3);
        let view = PeerView::new(vec![PeerEntry {
            id: fid(1),
            state: PeerState::Dead,
            advert: Advertisement::default(),
            uptime_fraction: 0.2,
            reputation: 1.0,
        }]);
        coop.apply_view(&view);
        assert_eq!(coop.up_count(), 2);
        for i in 0..100 {
            assert_ne!(coop.owner_of(&u(i)), 1);
        }
    }

    /// Seeds a copy of `url` at `holder` only, leaving every other
    /// member's cache cold: mark the others down so the origin fill
    /// lands locally, then restore liveness.
    fn seed_copy_at(coop: &mut CoopCache, holder: u32, url: &Url, bytes: u64) {
        let ids: Vec<u32> = (0..coop.member_count() as u32).collect();
        for &m in &ids {
            if m != holder {
                coop.set_member_up(m, false);
            }
        }
        assert_eq!(coop.request(holder, url, bytes), FetchTier::Origin);
        for &m in &ids {
            coop.set_member_up(m, true);
        }
    }

    #[test]
    fn tripped_owner_is_excluded_then_recovers_ownership() {
        use hpop_netsim::time::SimDuration;
        let mut coop = CoopCache::new(4);
        let url = u(9);
        let owner = coop.owner_of(&url);
        let t0 = SimTime::ZERO;
        for _ in 0..BreakerConfig::default().failure_threshold {
            coop.report_lateral_outcome(owner, t0, false);
        }
        assert_eq!(coop.breakers.state(owner, t0), BreakerState::Open);
        // While withdrawn, ownership re-routes; a request never waits
        // on the tripped member and its fill lands at a usable owner.
        let new_owner = coop.owner_usable_at(&url, t0).expect("someone usable");
        assert_ne!(new_owner, owner);
        let third = (0..4).find(|&m| m != owner && m != new_owner).unwrap();
        assert_eq!(coop.request_at(third, &url, 1000, t0), FetchTier::Origin);
        assert_ne!(
            coop.request_at(third, &url, 1000, t0),
            FetchTier::Origin,
            "copy now lives at a usable member"
        );
        // After the cooldown a probe success closes the circuit and the
        // original owner resumes its share of the space.
        let later = t0 + SimDuration::from_secs(3600);
        coop.report_lateral_outcome(owner, later, true);
        assert_eq!(coop.breakers.state(owner, later), BreakerState::Closed);
        assert_eq!(coop.owner_usable_at(&url, later), Some(owner));
    }

    #[test]
    fn healthy_neighborhood_never_serves_stale() {
        let mut coop = CoopCache::new(3);
        let url = u(11);
        let owner = coop.owner_of(&url);
        let holder = (0..3).find(|&m| m != owner).unwrap();
        seed_copy_at(&mut coop, holder, &url, 700);
        // All members up, no breaker tripped: the cold owner forces a
        // fresh origin fetch even though a lateral copy exists.
        let third = (0..3).find(|&m| m != owner && m != holder).unwrap();
        assert_eq!(coop.request(third, &url, 700), FetchTier::Origin);
        assert_eq!(coop.stats().stale_hits, 0);
    }

    #[test]
    fn degraded_neighborhood_serves_stale_off_the_uplink() {
        let mut coop = CoopCache::new(3);
        let url = u(11);
        let owner = coop.owner_of(&url);
        // The requester is the member that inherits ownership when the
        // true owner dies, so its miss cannot be a Neighbor hit; the
        // third member holds the only (now stale-eligible) copy.
        coop.set_member_up(owner, false);
        let heir = coop.owner_usable_at(&url, SimTime::ZERO).unwrap();
        coop.set_member_up(owner, true);
        let holder = (0..3).find(|&m| m != owner && m != heir).unwrap();
        seed_copy_at(&mut coop, holder, &url, 700);
        // The owner goes down: the neighborhood is degraded, so the
        // holder's possibly-outdated copy beats another uplink crossing.
        coop.set_member_up(owner, false);
        assert_eq!(coop.request(heir, &url, 700), FetchTier::Stale);
        let s = coop.stats();
        assert_eq!(s.stale_hits, 1);
        assert_eq!(s.uplink_bytes, 700, "stale serve stayed off the uplink");
        // One origin seed + one stale hit → exactly half contained.
        assert!(s.containment() >= 0.5, "stale counts as contained");
    }

    #[test]
    fn no_usable_member_falls_back_to_origin_without_panic() {
        let mut coop = CoopCache::new(2);
        let url = u(13);
        let t0 = SimTime::ZERO;
        // Trip both breakers: no usable owner anywhere.
        for m in 0..2 {
            for _ in 0..BreakerConfig::default().failure_threshold {
                coop.report_lateral_outcome(m, t0, false);
            }
        }
        // The request still succeeds — origin fill cached locally.
        assert_eq!(coop.request_at(0, &url, 500, t0), FetchTier::Origin);
        assert_eq!(coop.request_at(0, &url, 500, t0), FetchTier::Local);
    }

    #[test]
    fn overload_rejects_with_typed_retry_after() {
        use hpop_resilience::AdmissionConfig;
        let mut coop = CoopCache::new(4);
        coop.enable_overload(
            CoopOverloadConfig {
                admission: AdmissionConfig {
                    rate_per_sec: 1.0,
                    burst: 2.0,
                    ..AdmissionConfig::default()
                },
                ..CoopOverloadConfig::default()
            },
            SimTime::ZERO,
        );
        let t0 = SimTime::ZERO;
        // Burst of 2 admitted, third refused with a concrete hint.
        assert!(coop.try_request_at(0, &u(1), 100, t0).is_ok());
        assert!(coop.try_request_at(1, &u(1), 100, t0).is_ok());
        let err = coop.try_request_at(2, &u(1), 100, t0).unwrap_err();
        assert!(err.retry_after > SimDuration::ZERO);
        assert_eq!(coop.overload_rejected(), 1);
        // After the hinted wait the request is admitted again.
        let later = t0 + err.retry_after + SimDuration::from_millis(1);
        assert!(coop.try_request_at(2, &u(1), 100, later).is_ok());
    }

    #[test]
    fn stale_allowed_rung_serves_stale_without_failures() {
        let mut coop = CoopCache::new(3);
        let url = u(11);
        let owner = coop.owner_of(&url);
        // Same topology as the degraded-stale test, but nothing fails:
        // the brownout rung alone licenses the stale serve.
        coop.set_member_up(owner, false);
        let heir = coop.owner_usable_at(&url, SimTime::ZERO).unwrap();
        coop.set_member_up(owner, true);
        let holder = (0..3).find(|&m| m != owner && m != heir).unwrap();
        seed_copy_at(&mut coop, holder, &url, 700);
        coop.enable_overload(CoopOverloadConfig::default(), SimTime::ZERO);
        // Saturation from queue pressure pushes the ladder to
        // StaleAllowed (0.7 <= 0.75 < 0.85).
        coop.set_queue_pressure(0.75);
        let tier = coop.try_request_at(heir, &url, 700, SimTime::ZERO).unwrap();
        assert_eq!(coop.brownout_level(), BrownoutLevel::StaleAllowed);
        assert_eq!(tier, FetchTier::Stale, "stale as a load rung");
        assert_eq!(coop.stats().uplink_bytes, 700, "no extra uplink crossing");
    }

    #[test]
    fn redirect_rung_skips_lateral_work() {
        let mut coop = CoopCache::new(3);
        let url = u(21);
        let owner = coop.owner_of(&url);
        // Warm the owner: a healthy request would be a Neighbor hit.
        seed_copy_at(&mut coop, owner, &url, 500);
        coop.enable_overload(CoopOverloadConfig::default(), SimTime::ZERO);
        coop.set_queue_pressure(0.9);
        let requester = (0..3).find(|&m| m != owner).unwrap();
        let tier = coop
            .try_request_at(requester, &url, 500, SimTime::ZERO)
            .unwrap();
        assert_eq!(coop.brownout_level(), BrownoutLevel::RedirectOrigin);
        assert_eq!(tier, FetchTier::Origin, "lateral work skipped");
        // The fill landed locally: the next request is a Local hit
        // even while redirecting.
        let again = coop
            .try_request_at(requester, &url, 500, SimTime::ZERO)
            .unwrap();
        assert_eq!(again, FetchTier::Local);
    }

    #[test]
    fn hot_objects_get_extra_replicas() {
        let mut coop = CoopCache::new(4);
        coop.enable_overload(
            CoopOverloadConfig {
                hot_threshold: 3,
                ..CoopOverloadConfig::default()
            },
            SimTime::ZERO,
        );
        let url = u(30);
        let t0 = SimTime::from_secs(1);
        let owner = coop.owner_of(&url);
        // First request seeds the owner; the crowd then converges.
        let others: Vec<u32> = (0..4).filter(|&m| m != owner).collect();
        coop.try_request_at(others[0], &url, 900, t0).unwrap();
        // Requests 2 and 3 cross the hot threshold: replicas spread.
        coop.try_request_at(others[0], &url, 900, t0).unwrap();
        coop.try_request_at(others[1], &url, 900, t0).unwrap();
        coop.try_request_at(others[2], &url, 900, t0).unwrap();
        // The object now lives at more members than just the owner.
        let holders = coop
            .contents()
            .values()
            .filter(|objs| objs.contains(&url))
            .count();
        assert!(holders >= 3, "hot object replicated to {holders} members");
        // A fresh hot requester is served laterally, never the origin.
        assert_eq!(coop.stats().origin_fetches, 1);
    }

    #[test]
    fn background_sheds_before_interactive_in_coop() {
        let mut coop = CoopCache::new(3);
        coop.enable_overload(CoopOverloadConfig::default(), SimTime::ZERO);
        let t0 = SimTime::ZERO;
        // Moderate saturation: anti-entropy shed, interactive flows.
        coop.set_queue_pressure(0.65);
        assert!(!coop.offer_background(WorkClass::AntiEntropy, t0));
        assert!(coop.offer_background(WorkClass::Prefetch, t0));
        assert!(coop.try_request_at(0, &u(40), 100, t0).is_ok());
        // Heavy saturation: all background shed, interactive refused
        // only via typed admission (never silently shed).
        coop.set_queue_pressure(0.95);
        assert!(!coop.offer_background(WorkClass::Prefetch, t0));
        assert!(!coop.offer_background(WorkClass::Repair, t0));
        let s = coop.shedder().unwrap();
        assert!(s.background_shed() >= 3);
        assert_eq!(s.shed_count(WorkClass::Interactive), 0);
    }

    #[test]
    fn overload_disabled_is_transparent() {
        let mut coop = CoopCache::new(3);
        let url = u(50);
        let tier = coop.try_request_at(0, &url, 100, SimTime::ZERO).unwrap();
        assert_eq!(tier, FetchTier::Origin);
        assert_eq!(coop.brownout_level(), BrownoutLevel::Full);
        assert_eq!(coop.overload_rejected(), 0);
        assert!(coop.saturation_signal().is_none());
        assert!(coop.offer_background(WorkClass::AntiEntropy, SimTime::ZERO));
    }

    #[test]
    #[should_panic(expected = "at least one member is up")]
    fn all_members_down_panics() {
        let mut coop = CoopCache::new(2);
        coop.set_member_up(0, false);
        coop.set_member_up(1, false);
        coop.owner_of(&u(0));
    }

    #[test]
    #[should_panic(expected = "last HPoP")]
    fn cannot_empty_the_neighborhood() {
        let mut coop = CoopCache::new(1);
        coop.remove_member(0);
    }

    #[test]
    #[should_panic(expected = "unknown member")]
    fn unknown_member_panics() {
        let mut coop = CoopCache::new(2);
        coop.request(7, &u(0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one HPoP")]
    fn empty_neighborhood_rejected() {
        let _ = CoopCache::new(0);
    }
}
