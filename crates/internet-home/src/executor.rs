//! Event-driven execution of a prefetch plan.
//!
//! The planner ([`crate::prefetch`]) predicts; the executor *runs*: it
//! keeps the planned slice of the web in an [`HttpCache`], refreshing
//! each object on its schedule with conditional requests (a `304 Not
//! Modified` re-arms freshness for a few hundred bytes; a `200` pays
//! full price only when the object actually changed). User requests are
//! then served from the cache when fresh — §IV-D's "local copy of the
//! Internet" as an operating loop, with the upstream-load ledger the
//! paper says the HPoP should keep "as part of the system's operation".

use crate::prefetch::PrefetchPlan;
use hpop_http::cache::{CacheDecision, CacheEntry, HttpCache};
use hpop_http::message::{Request, Response, StatusCode};
use hpop_http::url::Url;
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_obs::event;
use std::collections::BTreeMap;

/// A deterministic origin for the executor to fetch from: objects with
/// content versions that change on a fixed period (so some
/// revalidations return `304`, others `200`).
#[derive(Clone, Debug)]
pub struct SimulatedOrigin {
    objects: BTreeMap<Url, OriginObject>,
    /// Requests served, by kind.
    pub full_responses: u64,
    /// `304 Not Modified` responses served.
    pub not_modified: u64,
    /// Total body bytes served.
    pub bytes_served: u64,
}

#[derive(Clone, Debug)]
struct OriginObject {
    bytes: u64,
    ttl: SimDuration,
    /// Content changes every `change_period` (never, if zero).
    change_period: SimDuration,
}

impl SimulatedOrigin {
    /// An empty origin.
    pub fn new() -> SimulatedOrigin {
        SimulatedOrigin {
            objects: BTreeMap::new(),
            full_responses: 0,
            not_modified: 0,
            bytes_served: 0,
        }
    }

    /// Publishes an object. `change_period` = how often its content (and
    /// hence ETag) changes; zero = immutable.
    pub fn publish(&mut self, url: Url, bytes: u64, ttl: SimDuration, change_period: SimDuration) {
        self.objects.insert(
            url,
            OriginObject {
                bytes,
                ttl,
                change_period,
            },
        );
    }

    fn version_at(&self, obj: &OriginObject, now: SimTime) -> u64 {
        if obj.change_period.is_zero() {
            0
        } else {
            now.as_nanos() / obj.change_period.as_nanos().max(1)
        }
    }

    /// Serves a (possibly conditional) GET.
    pub fn handle(&mut self, req: &Request, now: SimTime) -> Response {
        let Some(obj) = self.objects.get(&req.url).cloned() else {
            return Response::not_found();
        };
        let etag = format!("\"v{}\"", self.version_at(&obj, now));
        if req.headers.get("if-none-match") == Some(etag.as_str()) {
            self.not_modified += 1;
            return Response::new(StatusCode::NOT_MODIFIED).with_header("etag", etag);
        }
        self.full_responses += 1;
        self.bytes_served += obj.bytes;
        Response::ok(vec![0u8; obj.bytes as usize]).with_header("etag", etag)
    }

    /// The freshness lifetime the origin advertises for a URL.
    pub fn ttl_of(&self, url: &Url) -> Option<SimDuration> {
        self.objects.get(url).map(|o| o.ttl)
    }
}

impl Default for SimulatedOrigin {
    fn default() -> Self {
        Self::new()
    }
}

/// How a user request was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServedFrom {
    /// Fresh local copy: LAN latency, zero upstream traffic.
    LocalFresh,
    /// Local copy revalidated upstream (one conditional round trip).
    Revalidated,
    /// Full upstream fetch.
    Upstream,
}

/// Executor statistics (the HPoP's upstream-load ledger).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Scheduled refresh requests issued.
    pub refreshes: u64,
    /// Refreshes answered `304` (content unchanged).
    pub refresh_304: u64,
    /// User requests served from fresh local copies.
    pub user_fresh: u64,
    /// User requests needing revalidation.
    pub user_revalidated: u64,
    /// User requests needing a full upstream fetch.
    pub user_upstream: u64,
}

impl ExecStats {
    /// Fraction of user requests served locally without any upstream
    /// round trip.
    pub fn fresh_hit_rate(&self) -> f64 {
        let total = self.user_fresh + self.user_revalidated + self.user_upstream;
        if total == 0 {
            0.0
        } else {
            self.user_fresh as f64 / total as f64
        }
    }
}

/// Runs a prefetch plan against an origin over simulated time.
#[derive(Debug)]
pub struct PrefetchExecutor {
    cache: HttpCache,
    /// url → (refresh period, next refresh due).
    schedule: BTreeMap<Url, (SimDuration, SimTime)>,
    stats: ExecStats,
}

impl PrefetchExecutor {
    /// An executor with a cache of `cache_bytes` capacity.
    pub fn new(cache_bytes: u64) -> PrefetchExecutor {
        PrefetchExecutor {
            cache: HttpCache::new(cache_bytes),
            schedule: BTreeMap::new(),
            stats: ExecStats::default(),
        }
    }

    /// Installs (or replaces) the plan's refresh schedule; first
    /// refreshes are due immediately.
    pub fn install(&mut self, plan: &PrefetchPlan, now: SimTime) {
        self.schedule = plan
            .entries
            .iter()
            .map(|(u, period)| (u.clone(), (*period, now)))
            .collect();
    }

    /// Runs every refresh due at or before `now`.
    pub fn run_due_refreshes(&mut self, origin: &mut SimulatedOrigin, now: SimTime) {
        let due: Vec<Url> = self
            .schedule
            .iter()
            .filter(|(_, &(_, at))| at <= now)
            .map(|(u, _)| u.clone())
            .collect();
        for url in due {
            self.refresh_one(&url, origin, now);
            if let Some((period, next)) = self.schedule.get_mut(&url) {
                *next = now + *period;
            }
        }
    }

    fn refresh_one(&mut self, url: &Url, origin: &mut SimulatedOrigin, now: SimTime) {
        self.stats.refreshes += 1;
        hpop_obs::metrics().counter("ihome.refresh.issued").incr();
        let mut req = Request::get(url.clone());
        let prior = match self.cache.lookup(url, now) {
            CacheDecision::Fresh(e) | CacheDecision::Stale(e) => {
                if let Some(etag) = &e.etag {
                    req = req.with_header("if-none-match", etag.clone());
                }
                Some(e)
            }
            CacheDecision::Miss => None,
        };
        let resp = origin.handle(&req, now);
        let ttl = origin.ttl_of(url).unwrap_or(SimDuration::from_secs(60));
        match resp.status {
            StatusCode::NOT_MODIFIED => {
                self.stats.refresh_304 += 1;
                hpop_obs::metrics().counter("ihome.refresh.304").incr();
                self.cache.revalidate(url, now);
                let _ = prior;
            }
            StatusCode::OK => {
                let mut entry = CacheEntry::new(resp.body.clone(), ttl, now);
                if let Some(etag) = resp.headers.get("etag") {
                    entry = entry.with_etag(etag.to_owned());
                }
                self.cache.insert(url.clone(), entry);
            }
            _ => {}
        }
    }

    /// Serves one user request, fetching upstream only when necessary.
    pub fn user_request(
        &mut self,
        url: &Url,
        origin: &mut SimulatedOrigin,
        now: SimTime,
    ) -> ServedFrom {
        let served = match self.cache.lookup(url, now) {
            CacheDecision::Fresh(_) => {
                self.stats.user_fresh += 1;
                hpop_obs::metrics().counter("ihome.prefetch.hit").incr();
                ServedFrom::LocalFresh
            }
            CacheDecision::Stale(e) => {
                let mut req = Request::get(url.clone());
                if let Some(etag) = &e.etag {
                    req = req.with_header("if-none-match", etag.clone());
                }
                let resp = origin.handle(&req, now);
                let ttl = origin.ttl_of(url).unwrap_or(SimDuration::from_secs(60));
                if resp.status == StatusCode::NOT_MODIFIED {
                    self.cache.revalidate(url, now);
                } else if resp.status == StatusCode::OK {
                    let mut entry = CacheEntry::new(resp.body.clone(), ttl, now);
                    if let Some(etag) = resp.headers.get("etag") {
                        entry = entry.with_etag(etag.to_owned());
                    }
                    self.cache.insert(url.clone(), entry);
                }
                self.stats.user_revalidated += 1;
                hpop_obs::metrics()
                    .counter("ihome.prefetch.revalidated")
                    .incr();
                ServedFrom::Revalidated
            }
            CacheDecision::Miss => {
                let resp = origin.handle(&Request::get(url.clone()), now);
                if resp.status == StatusCode::OK {
                    let ttl = origin.ttl_of(url).unwrap_or(SimDuration::from_secs(60));
                    let mut entry = CacheEntry::new(resp.body.clone(), ttl, now);
                    if let Some(etag) = resp.headers.get("etag") {
                        entry = entry.with_etag(etag.to_owned());
                    }
                    self.cache.insert(url.clone(), entry);
                }
                self.stats.user_upstream += 1;
                hpop_obs::metrics().counter("ihome.prefetch.miss").incr();
                ServedFrom::Upstream
            }
        };
        event!(
            hpop_obs::tracer(),
            now.as_nanos() / 1_000,
            "ihome",
            "prefetch.serve",
            url = url.to_string(),
            from = match served {
                ServedFrom::LocalFresh => "fresh",
                ServedFrom::Revalidated => "revalidated",
                ServedFrom::Upstream => "upstream",
            }
        );
        served
    }

    /// The ledger so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryProfile;
    use crate::prefetch::{ObjectMeta, PrefetchConfig, PrefetchPlanner};

    fn u(p: &str) -> Url {
        Url::https("web.example", p)
    }

    fn setup(change_period_s: u64) -> (PrefetchExecutor, SimulatedOrigin, PrefetchPlan) {
        let mut origin = SimulatedOrigin::new();
        let mut profile = HistoryProfile::new();
        let mut planner = PrefetchPlanner::new();
        for i in 0..10 {
            let url = u(&format!("/s{i}"));
            origin.publish(
                url.clone(),
                10_000,
                SimDuration::from_secs(600),
                SimDuration::from_secs(change_period_s),
            );
            planner.register(
                url.clone(),
                ObjectMeta {
                    bytes: 10_000,
                    ttl: SimDuration::from_secs(600),
                },
            );
            for v in 0..(10 - i) {
                profile.record_visit(&url, SimTime::from_secs(v as u64 * 10));
            }
        }
        let plan = planner.plan(
            &profile,
            PrefetchConfig {
                scope: 10,
                freshness_factor: 1.0,
            },
        );
        let mut exec = PrefetchExecutor::new(10_000_000);
        exec.install(&plan, SimTime::from_secs(100));
        (exec, origin, plan)
    }

    #[test]
    fn refreshes_keep_user_requests_local() {
        let (mut exec, mut origin, _) = setup(0); // immutable content
                                                  // Run the refresh loop over a simulated hour.
        for minute in 0..60u64 {
            let now = SimTime::from_secs(100 + minute * 60);
            exec.run_due_refreshes(&mut origin, now);
        }
        // All user requests inside freshness windows are local.
        let mut fresh = 0;
        for minute in 0..59u64 {
            let now = SimTime::from_secs(130 + minute * 60);
            if exec.user_request(&u("/s0"), &mut origin, now) == ServedFrom::LocalFresh {
                fresh += 1;
            }
        }
        assert_eq!(fresh, 59);
        assert!(exec.stats().fresh_hit_rate() > 0.99);
    }

    #[test]
    fn immutable_content_revalidates_with_304s() {
        let (mut exec, mut origin, _) = setup(0);
        for tick in 0..20u64 {
            exec.run_due_refreshes(&mut origin, SimTime::from_secs(100 + tick * 600));
        }
        let s = exec.stats();
        // First refresh of each object is a full fetch; all later ones
        // are 304s (content never changes).
        assert_eq!(s.refreshes, 10 * 20);
        assert_eq!(s.refresh_304, 10 * 19);
        assert_eq!(origin.full_responses, 10);
        // Upstream bytes: only the 10 initial bodies.
        assert_eq!(origin.bytes_served, 100_000);
    }

    #[test]
    fn churning_content_pays_full_price_sometimes() {
        // Content changes every 1200 s, refresh every 600 s: roughly
        // every other refresh is a 200.
        let (mut exec, mut origin, _) = setup(1200);
        for tick in 0..20u64 {
            exec.run_due_refreshes(&mut origin, SimTime::from_secs(100 + tick * 600));
        }
        let s = exec.stats();
        let ratio = s.refresh_304 as f64 / s.refreshes as f64;
        assert!(
            (0.3..0.7).contains(&ratio),
            "304 ratio {ratio} should be near one half"
        );
    }

    #[test]
    fn unplanned_urls_go_upstream() {
        let (mut exec, mut origin, _) = setup(0);
        origin.publish(
            u("/unplanned"),
            5_000,
            SimDuration::from_secs(600),
            SimDuration::ZERO,
        );
        let t = SimTime::from_secs(200);
        assert_eq!(
            exec.user_request(&u("/unplanned"), &mut origin, t),
            ServedFrom::Upstream
        );
        // On-demand fetches are cached too: the next request is local.
        assert_eq!(
            exec.user_request(&u("/unplanned"), &mut origin, t + SimDuration::from_secs(1)),
            ServedFrom::LocalFresh
        );
    }

    #[test]
    fn stale_user_request_revalidates() {
        let (mut exec, mut origin, _) = setup(0);
        exec.run_due_refreshes(&mut origin, SimTime::from_secs(100));
        // Long after the TTL: revalidation (304 path — content immutable).
        let late = SimTime::from_secs(100 + 3 * 600);
        assert_eq!(
            exec.user_request(&u("/s0"), &mut origin, late),
            ServedFrom::Revalidated
        );
        // Which re-arms freshness.
        assert_eq!(
            exec.user_request(&u("/s0"), &mut origin, late + SimDuration::from_secs(1)),
            ServedFrom::LocalFresh
        );
    }
}
