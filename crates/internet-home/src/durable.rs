//! Crash-consistent cooperative-cache index.
//!
//! §IV-D's whole premise is that the neighborhood *avoids duplicate
//! retrievals*: one uplink crossing per object, shared laterally
//! forever after. That bookkeeping — which member's HPoP holds which
//! object — is only worth anything if it survives a restart: the
//! cached bytes sit on HPoP disks and outlive a power cut, but an
//! in-memory index would forget where everything is and the
//! neighborhood would re-cross the scarce aggregation uplink for
//! content it already holds. [`DurableCoop`] write-through journals
//! every origin fill and membership change into a WAL+snapshot store,
//! so a reopened neighborhood resumes with its index intact.
//!
//! Liveness beliefs, breaker circuits and traffic statistics are
//! deliberately *not* persisted: they are runtime health state, stale
//! by definition after a crash, and restart fresh.

use crate::coop::{CoopCache, FetchTier};
use hpop_durability::codec::{ByteReader, ByteWriter};
use hpop_durability::{DurabilityConfig, Durable, Persistent, RecoveryReport};
use hpop_fabric::PeerView;
use hpop_http::url::Url;
use hpop_netsim::storage::{DiskError, SimDisk};
use hpop_netsim::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

const OP_FILL: u8 = 1;
const OP_ADD_MEMBER: u8 = 2;
const OP_REMOVE_MEMBER: u8 = 3;

/// The durable member → cached-object index.
#[derive(Clone, Debug, Default)]
struct IndexState {
    members: BTreeMap<u32, BTreeSet<Url>>,
}

impl Durable for IndexState {
    fn fresh() -> IndexState {
        IndexState::default()
    }

    fn encode_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.members.len() as u64);
        for (member, objs) in &self.members {
            w.u32(*member).u64(objs.len() as u64);
            for url in objs {
                w.str(&url.to_string());
            }
        }
        w.into_bytes()
    }

    fn decode_state(bytes: &[u8]) -> Option<IndexState> {
        let mut r = ByteReader::new(bytes);
        let n = r.u64()?;
        let mut members = BTreeMap::new();
        for _ in 0..n {
            let member = r.u32()?;
            let count = r.u64()?;
            let mut objs = BTreeSet::new();
            for _ in 0..count {
                objs.insert(r.str()?.parse::<Url>().ok()?);
            }
            members.insert(member, objs);
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(IndexState { members })
    }

    fn apply(&mut self, op: &[u8]) {
        let mut r = ByteReader::new(op);
        match r.u8() {
            Some(OP_FILL) => {
                if let (Some(member), Some(Ok(url))) = (r.u32(), r.str().map(|s| s.parse::<Url>()))
                {
                    self.members.entry(member).or_default().insert(url);
                }
            }
            Some(OP_ADD_MEMBER) => {
                if let Some(member) = r.u32() {
                    self.members.entry(member).or_default();
                }
            }
            Some(OP_REMOVE_MEMBER) => {
                if let Some(member) = r.u32() {
                    self.members.remove(&member);
                }
            }
            _ => {}
        }
    }
}

fn fill_op(member: u32, url: &Url) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(OP_FILL).u32(member).str(&url.to_string());
    w.into_bytes()
}

fn member_op(kind: u8, member: u32) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(kind).u32(member);
    w.into_bytes()
}

/// A [`CoopCache`] whose member → cached-object index survives crashes:
/// origin fills and membership changes are journaled before they are
/// acknowledged, and a reopened neighborhood resumes serving laterally
/// instead of re-crossing the uplink for content it already holds.
#[derive(Clone, Debug)]
pub struct DurableCoop {
    coop: CoopCache,
    index: Persistent<IndexState>,
}

impl DurableCoop {
    /// Opens (recovers or initializes) a neighborhood of `n` HPoPs
    /// under `dir`. A recovered index overrides `n`: membership and
    /// cache contents resume exactly as last committed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero and nothing was recovered.
    pub fn open(
        n: u32,
        disk: SimDisk,
        dir: &str,
        cfg: DurabilityConfig,
    ) -> Result<DurableCoop, DiskError> {
        let mut index: Persistent<IndexState> = Persistent::open(disk, dir, cfg)?;
        if index.state().members.is_empty() {
            assert!(n > 0, "a neighborhood needs at least one HPoP");
            for m in 0..n {
                index.execute(&member_op(OP_ADD_MEMBER, m))?;
            }
        }
        let coop = CoopCache::from_contents(index.state().members.clone());
        Ok(DurableCoop { coop, index })
    }

    /// Durable [`CoopCache::request_at`]: the origin fill (if the
    /// request caused one) is journaled before the tier is returned.
    ///
    /// # Panics
    ///
    /// Panics for unknown members.
    pub fn request_at(
        &mut self,
        member: u32,
        url: &Url,
        bytes: u64,
        now: SimTime,
    ) -> Result<FetchTier, DiskError> {
        let tier = self.coop.request_at(member, url, bytes, now);
        if let Some((cache_at, filled)) = self.coop.take_last_fill() {
            self.index.execute(&fill_op(cache_at, &filled))?;
        }
        Ok(tier)
    }

    /// Time-blind [`DurableCoop::request_at`] (evaluated at the epoch).
    ///
    /// # Panics
    ///
    /// Panics for unknown members.
    pub fn request(&mut self, member: u32, url: &Url, bytes: u64) -> Result<FetchTier, DiskError> {
        self.request_at(member, url, bytes, SimTime::ZERO)
    }

    /// Durable [`CoopCache::add_member`].
    pub fn add_member(&mut self) -> Result<u32, DiskError> {
        let id = self.coop.add_member();
        self.index.execute(&member_op(OP_ADD_MEMBER, id))?;
        Ok(id)
    }

    /// Durable [`CoopCache::remove_member`]. Returns how many cached
    /// objects were lost with the member.
    ///
    /// # Panics
    ///
    /// Panics when removing the last member.
    pub fn remove_member(&mut self, member: u32) -> Result<usize, DiskError> {
        let lost = self.coop.remove_member(member);
        self.index.execute(&member_op(OP_REMOVE_MEMBER, member))?;
        Ok(lost)
    }

    /// Runtime-only liveness flip (never journaled — health state is
    /// stale by definition after a crash).
    ///
    /// # Panics
    ///
    /// Panics for unknown members.
    pub fn set_member_up(&mut self, member: u32, up: bool) {
        self.coop.set_member_up(member, up);
    }

    /// Runtime-only view adoption (see [`CoopCache::apply_view`]).
    pub fn apply_view(&mut self, view: &PeerView) {
        self.coop.apply_view(view);
    }

    /// Runtime-only breaker feedback (see
    /// [`CoopCache::report_lateral_outcome`]).
    ///
    /// # Panics
    ///
    /// Panics for unknown members.
    pub fn report_lateral_outcome(&mut self, member: u32, now: SimTime, ok: bool) {
        self.coop.report_lateral_outcome(member, now, ok);
    }

    /// Read access to the in-memory neighborhood.
    pub fn coop(&self) -> &CoopCache {
        &self.coop
    }

    /// How the last open recovered.
    pub fn last_recovery(&self) -> &RecoveryReport {
        self.index.last_recovery()
    }

    /// Highest committed op sequence number.
    pub fn committed_seq(&self) -> u64 {
        self.index.committed_seq()
    }

    /// The underlying device.
    pub fn disk(&self) -> &SimDisk {
        self.index.disk()
    }

    /// Mutable device access (fault arming in tests/experiments).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        self.index.disk_mut()
    }

    /// Tears down the process, keeping the platters.
    pub fn into_disk(self) -> SimDisk {
        self.index.into_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_durability::crash_matrix;

    fn u(i: u32) -> Url {
        Url::https("web.example", &format!("/obj{i}"))
    }

    fn cfg() -> DurabilityConfig {
        DurabilityConfig {
            max_segment_bytes: 512,
            snapshot_every_ops: 6,
            keep_snapshots: 2,
        }
    }

    #[test]
    fn warm_index_survives_restart() {
        let mut hood = DurableCoop::open(4, SimDisk::new(11), "coop", cfg()).unwrap();
        for i in 0..6 {
            hood.request(0, &u(i), 10_000).unwrap();
        }
        assert_eq!(hood.coop().stats().origin_fetches, 6);
        let stored = hood.coop().stored_objects();

        let mut disk = hood.into_disk();
        disk.restart();
        let mut hood = DurableCoop::open(4, disk, "coop", cfg()).unwrap();
        assert_eq!(hood.coop().stored_objects(), stored);
        // The reopened neighborhood serves everything laterally or
        // locally: zero fresh uplink crossings for known content.
        for i in 0..6 {
            let m = 1 + (i % 3);
            assert_ne!(hood.request(m, &u(i), 10_000).unwrap(), FetchTier::Origin);
        }
        assert_eq!(hood.coop().stats().origin_fetches, 0);
    }

    #[test]
    fn membership_changes_survive_restart() {
        let mut hood = DurableCoop::open(3, SimDisk::new(12), "coop", cfg()).unwrap();
        let newbie = hood.add_member().unwrap();
        assert_eq!(newbie, 3);
        hood.remove_member(0).unwrap();
        hood.request(newbie, &u(1), 500).unwrap();

        let mut disk = hood.into_disk();
        disk.restart();
        let hood = DurableCoop::open(3, disk, "coop", cfg()).unwrap();
        assert_eq!(hood.coop().member_count(), 3); // {1, 2, 3}
        assert!(hood.coop().contents().contains_key(&newbie));
        assert!(!hood.coop().contents().contains_key(&0));
    }

    #[test]
    fn crash_during_fill_forgets_only_that_fill() {
        let mut hood = DurableCoop::open(4, SimDisk::new(13), "coop", cfg()).unwrap();
        hood.request(0, &u(0), 1000).unwrap();
        // Crash inside the next fill's WAL append: the op never
        // commits, so the index must not remember it.
        let crash_at = hood.disk().steps() + 1;
        hood.disk_mut().arm_crash(crash_at);
        let err = hood.request(0, &u(1), 1000);
        assert!(err.is_err(), "armed crash should surface as a disk error");

        let mut disk = hood.into_disk();
        disk.restart();
        let mut hood = DurableCoop::open(4, disk, "coop", cfg()).unwrap();
        // Object 0 survived; object 1's fill was torn away and costs
        // exactly one more uplink crossing.
        assert_eq!(hood.coop().stored_objects(), 1);
        assert_eq!(hood.request(1, &u(1), 1000).unwrap(), FetchTier::Origin);
        assert_ne!(hood.request(2, &u(1), 1000).unwrap(), FetchTier::Origin);
    }

    #[test]
    fn crash_matrix_over_index_workload() {
        let mut ops: Vec<Vec<u8>> = (0..8u32).map(|i| fill_op(i % 3, &u(i))).collect();
        ops.push(member_op(OP_ADD_MEMBER, 3));
        ops.push(fill_op(3, &u(100)));
        ops.push(member_op(OP_REMOVE_MEMBER, 1));
        crash_matrix::<IndexState>(14, cfg(), &ops);
    }
}
