//! The scope-vs-freshness prefetch planner.
//!
//! §IV-D ("Aggressiveness"): "we can decrease the number of requests
//! going to the Internet by either reducing the scope of the content
//! gathered (thus reducing the volume of requests necessary to keep the
//! content fresh) or by decreasing the frequency of content
//! pre-validation." [`PrefetchPlanner::plan`] makes that tradeoff
//! explicit: a plan's *expected hit rate* grows with scope, its
//! *upstream request/byte rate* grows with scope × refresh frequency.
//! Experiment E13 sweeps both knobs.

use crate::history::HistoryProfile;
use hpop_http::url::Url;
use hpop_netsim::time::SimDuration;
use std::collections::BTreeMap;

/// Metadata the planner knows about each prefetchable object.
#[derive(Clone, Debug)]
pub struct ObjectMeta {
    /// Object size in bytes.
    pub bytes: u64,
    /// How long a fetched copy stays fresh.
    pub ttl: SimDuration,
}

/// The planner's knobs.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// How many of the household's top sites to keep locally.
    pub scope: usize,
    /// Refresh period as a multiple of each object's TTL: `1.0` =
    /// re-fetch exactly at expiry (always fresh); `2.0` = allow copies
    /// to run stale half the time (half the upstream load).
    pub freshness_factor: f64,
}

/// A concrete prefetch plan and its predicted costs/benefits.
#[derive(Clone, Debug)]
pub struct PrefetchPlan {
    /// The chosen objects and their refresh periods.
    pub entries: Vec<(Url, SimDuration)>,
    /// Predicted probability a user request hits a *fresh* local copy.
    pub expected_hit_rate: f64,
    /// Long-run upstream refresh traffic, requests per hour.
    pub upstream_requests_per_hour: f64,
    /// Long-run upstream refresh traffic, bytes per hour.
    pub upstream_bytes_per_hour: f64,
    /// Local storage the plan occupies.
    pub storage_bytes: u64,
}

/// Plans what slice of the Internet this residence keeps.
///
/// ```
/// use hpop_internet_home::history::HistoryProfile;
/// use hpop_internet_home::prefetch::{ObjectMeta, PrefetchConfig, PrefetchPlanner};
/// use hpop_http::url::Url;
/// use hpop_netsim::time::{SimDuration, SimTime};
///
/// let url = Url::https("news.example", "/front");
/// let mut history = HistoryProfile::new();
/// history.record_visit(&url, SimTime::ZERO);
/// let mut planner = PrefetchPlanner::new();
/// planner.register(url, ObjectMeta { bytes: 100_000, ttl: SimDuration::from_secs(3600) });
/// let plan = planner.plan(&history, PrefetchConfig { scope: 10, freshness_factor: 1.0 });
/// assert_eq!(plan.entries.len(), 1);
/// assert!(plan.expected_hit_rate > 0.99);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PrefetchPlanner {
    catalog: BTreeMap<Url, ObjectMeta>,
}

impl PrefetchPlanner {
    /// An empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an object's metadata (discovered by crawling, or from
    /// previous on-demand fetches).
    pub fn register(&mut self, url: Url, meta: ObjectMeta) {
        self.catalog.insert(url, meta);
    }

    /// Number of known objects.
    pub fn catalog_len(&self) -> usize {
        self.catalog.len()
    }

    /// Builds a plan for the household profile under the given knobs.
    ///
    /// The expected hit rate counts a covered object as hit with
    /// probability `min(1, ttl / refresh_period)` — the long-run
    /// fraction of time the copy is fresh when refreshed every
    /// `freshness_factor × ttl`.
    ///
    /// # Panics
    ///
    /// Panics if `freshness_factor < 1.0` (refreshing faster than expiry
    /// only wastes upstream capacity) or `scope == 0`.
    pub fn plan(&self, history: &HistoryProfile, cfg: PrefetchConfig) -> PrefetchPlan {
        assert!(cfg.scope > 0, "scope must be positive");
        assert!(
            cfg.freshness_factor >= 1.0,
            "freshness factor below 1.0 refreshes content before it expires"
        );
        let mut entries = Vec::new();
        let mut hit_rate = 0.0;
        let mut req_per_hour = 0.0;
        let mut bytes_per_hour = 0.0;
        let mut storage = 0u64;
        for (url, _visits) in history.top_sites(cfg.scope) {
            let Some(meta) = self.catalog.get(&url) else {
                continue; // not prefetchable (unknown size/ttl)
            };
            let refresh_period =
                SimDuration::from_secs_f64(meta.ttl.as_secs_f64() * cfg.freshness_factor)
                    .max(SimDuration::from_secs(1));
            let fresh_fraction = (1.0 / cfg.freshness_factor).min(1.0);
            hit_rate += history.visit_probability(&url) * fresh_fraction;
            let per_hour = 3600.0 / refresh_period.as_secs_f64();
            req_per_hour += per_hour;
            bytes_per_hour += per_hour * meta.bytes as f64;
            storage += meta.bytes;
            entries.push((url, refresh_period));
        }
        PrefetchPlan {
            entries,
            expected_hit_rate: hit_rate,
            upstream_requests_per_hour: req_per_hour,
            upstream_bytes_per_hour: bytes_per_hour,
            storage_bytes: storage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_netsim::time::SimTime;

    fn u(p: &str) -> Url {
        Url::https("web.example", p)
    }

    /// History: Zipf-ish visits over 20 sites; catalog with 1-hour TTLs.
    fn setup() -> (HistoryProfile, PrefetchPlanner) {
        let mut h = HistoryProfile::new();
        let mut p = PrefetchPlanner::new();
        for rank in 1..=20u64 {
            let url = u(&format!("/site{rank:02}"));
            for v in 0..(40 / rank) {
                h.record_visit(&url, SimTime::from_secs(rank * 10_000 + v * 60));
            }
            p.register(
                url,
                ObjectMeta {
                    bytes: 100_000,
                    ttl: SimDuration::from_secs(3600),
                },
            );
        }
        (h, p)
    }

    #[test]
    fn wider_scope_raises_hit_rate_and_load() {
        let (h, p) = setup();
        let narrow = p.plan(
            &h,
            PrefetchConfig {
                scope: 3,
                freshness_factor: 1.0,
            },
        );
        let wide = p.plan(
            &h,
            PrefetchConfig {
                scope: 20,
                freshness_factor: 1.0,
            },
        );
        assert!(wide.expected_hit_rate > narrow.expected_hit_rate);
        assert!(wide.upstream_requests_per_hour > narrow.upstream_requests_per_hour);
        assert!(wide.storage_bytes > narrow.storage_bytes);
        // Full scope at refresh-on-expiry ⇒ hit rate ≈ 1.
        assert!((wide.expected_hit_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relaxed_freshness_halves_load_and_hit_rate() {
        let (h, p) = setup();
        let tight = p.plan(
            &h,
            PrefetchConfig {
                scope: 10,
                freshness_factor: 1.0,
            },
        );
        let relaxed = p.plan(
            &h,
            PrefetchConfig {
                scope: 10,
                freshness_factor: 2.0,
            },
        );
        assert!(
            (relaxed.upstream_requests_per_hour - tight.upstream_requests_per_hour / 2.0).abs()
                < 1e-9
        );
        assert!((relaxed.expected_hit_rate - tight.expected_hit_rate / 2.0).abs() < 1e-9);
        // Storage is unchanged — freshness only affects traffic.
        assert_eq!(relaxed.storage_bytes, tight.storage_bytes);
    }

    #[test]
    fn hourly_request_arithmetic() {
        let (h, p) = setup();
        let plan = p.plan(
            &h,
            PrefetchConfig {
                scope: 5,
                freshness_factor: 1.0,
            },
        );
        // 5 objects × 1 refresh/hour.
        assert!((plan.upstream_requests_per_hour - 5.0).abs() < 1e-9);
        assert!((plan.upstream_bytes_per_hour - 500_000.0).abs() < 1e-6);
        assert_eq!(plan.entries.len(), 5);
    }

    #[test]
    fn unknown_objects_are_skipped() {
        let mut h = HistoryProfile::new();
        h.record_visit(&u("/uncatalogued"), SimTime::ZERO);
        let p = PrefetchPlanner::new();
        let plan = p.plan(
            &h,
            PrefetchConfig {
                scope: 5,
                freshness_factor: 1.0,
            },
        );
        assert!(plan.entries.is_empty());
        assert_eq!(plan.expected_hit_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "freshness factor")]
    fn overeager_freshness_rejected() {
        let (h, p) = setup();
        p.plan(
            &h,
            PrefetchConfig {
                scope: 1,
                freshness_factor: 0.5,
            },
        );
    }
}
