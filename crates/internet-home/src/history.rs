//! The household's long-term browsing profile.
//!
//! §IV-D ("Aggressiveness"): "We aim to leverage users' long-term
//! history to copy the portion of the Internet the users visit and are
//! likely to visit." The profile aggregates visits per URL, scores each
//! by frequency and recency, and exposes the ranked slice the prefetch
//! planner copies.

use hpop_http::url::Url;
use hpop_netsim::time::SimTime;
use std::collections::HashMap;

/// Aggregate statistics for one URL.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SiteStats {
    /// Total visits recorded.
    pub visits: u64,
    /// Instant of the most recent visit.
    pub last_visit: SimTime,
    /// Mean seconds between visits (0 until two visits exist).
    pub mean_interarrival_secs: f64,
}

/// The browsing-history profiler.
#[derive(Clone, Debug, Default)]
pub struct HistoryProfile {
    sites: HashMap<Url, SiteStats>,
    total_visits: u64,
}

impl HistoryProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one visit.
    pub fn record_visit(&mut self, url: &Url, at: SimTime) {
        let s = self.sites.entry(url.clone()).or_default();
        if s.visits > 0 {
            let gap = at.saturating_since(s.last_visit).as_secs_f64();
            // Running mean over the (visits - 1) gaps seen so far.
            let gaps = s.visits as f64;
            s.mean_interarrival_secs = (s.mean_interarrival_secs * (gaps - 1.0) + gap) / gaps;
        }
        s.visits += 1;
        s.last_visit = at;
        self.total_visits += 1;
    }

    /// Stats for a URL, if ever visited.
    pub fn stats(&self, url: &Url) -> Option<&SiteStats> {
        self.sites.get(url)
    }

    /// Total visits recorded.
    pub fn total_visits(&self) -> u64 {
        self.total_visits
    }

    /// Number of distinct URLs seen.
    pub fn distinct_sites(&self) -> usize {
        self.sites.len()
    }

    /// The fraction of past visits going to `url` — the planner's
    /// estimate of the probability the *next* visit hits it.
    pub fn visit_probability(&self, url: &Url) -> f64 {
        if self.total_visits == 0 {
            return 0.0;
        }
        self.sites
            .get(url)
            .map_or(0.0, |s| s.visits as f64 / self.total_visits as f64)
    }

    /// URLs ranked by visit count (descending; ties broken by URL order
    /// for determinism), truncated to `k`.
    pub fn top_sites(&self, k: usize) -> Vec<(Url, u64)> {
        let mut v: Vec<(Url, u64)> = self
            .sites
            .iter()
            .map(|(u, s)| (u.clone(), s.visits))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Cumulative fraction of visits covered by the top `k` sites — the
    /// quantity that makes "approximating the Internet for this
    /// residence" tractable (Zipf traffic concentrates).
    pub fn coverage_of_top(&self, k: usize) -> f64 {
        if self.total_visits == 0 {
            return 0.0;
        }
        let covered: u64 = self.top_sites(k).iter().map(|&(_, v)| v).sum();
        covered as f64 / self.total_visits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(p: &str) -> Url {
        Url::https("web.example", p)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_and_ranks() {
        let mut h = HistoryProfile::new();
        for i in 0..10 {
            h.record_visit(&u("/news"), t(i * 100));
        }
        for i in 0..3 {
            h.record_visit(&u("/mail"), t(i * 100 + 7));
        }
        h.record_visit(&u("/once"), t(5));
        assert_eq!(h.total_visits(), 14);
        assert_eq!(h.distinct_sites(), 3);
        let top = h.top_sites(2);
        assert_eq!(top[0].0, u("/news"));
        assert_eq!(top[0].1, 10);
        assert_eq!(top[1].0, u("/mail"));
    }

    #[test]
    fn visit_probability_sums_to_one_over_all_sites() {
        let mut h = HistoryProfile::new();
        h.record_visit(&u("/a"), t(0));
        h.record_visit(&u("/a"), t(1));
        h.record_visit(&u("/b"), t(2));
        assert!((h.visit_probability(&u("/a")) - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.visit_probability(&u("/b")) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.visit_probability(&u("/never")), 0.0);
    }

    #[test]
    fn interarrival_tracking() {
        let mut h = HistoryProfile::new();
        h.record_visit(&u("/a"), t(0));
        h.record_visit(&u("/a"), t(100));
        h.record_visit(&u("/a"), t(300));
        let s = h.stats(&u("/a")).unwrap();
        // Gaps: 100, 200 → mean 150.
        assert!((s.mean_interarrival_secs - 150.0).abs() < 1e-9);
        assert_eq!(s.last_visit, t(300));
    }

    #[test]
    fn coverage_concentrates_under_zipf_like_traffic() {
        let mut h = HistoryProfile::new();
        // Visits proportional to 1/rank.
        for rank in 1..=100u64 {
            for v in 0..(100 / rank) {
                h.record_visit(&u(&format!("/site{rank}")), t(rank * 1000 + v));
            }
        }
        let c10 = h.coverage_of_top(10);
        let c100 = h.coverage_of_top(100);
        assert!(c10 > 0.5, "top-10 coverage {c10}");
        assert!((c100 - 1.0).abs() < 1e-12);
        assert!(h.coverage_of_top(0) == 0.0);
    }

    #[test]
    fn empty_profile_edge_cases() {
        let h = HistoryProfile::new();
        assert_eq!(h.visit_probability(&u("/x")), 0.0);
        assert_eq!(h.coverage_of_top(5), 0.0);
        assert!(h.top_sites(5).is_empty());
        assert!(h.stats(&u("/x")).is_none());
    }
}
