//! Demand smoothing.
//!
//! §IV-D ("Demand Smoothing"): "obtaining content ahead of actual use
//! also brings flexibility to schedule content acquisition at an
//! opportune time. This can smooth the demand on Internet servers and
//! core networks." The smoother takes refresh tasks (each with a
//! deadline — the moment the cached copy would go stale) and packs them
//! into the least-loaded hours at or before their deadlines;
//! experiment E14 compares the resulting hourly load profile against
//! fetch-at-deadline.

use hpop_netsim::time::SimTime;

/// Upstream load per hour-of-day, in bytes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HourlyLoad {
    /// `bytes[h]` = upstream bytes scheduled in hour `h` (0–23).
    pub bytes: [f64; 24],
}

impl HourlyLoad {
    /// Peak hour's load.
    pub fn peak(&self) -> f64 {
        self.bytes.iter().copied().fold(0.0, f64::max)
    }

    /// Mean hourly load.
    pub fn mean(&self) -> f64 {
        self.bytes.iter().sum::<f64>() / 24.0
    }

    /// Peak-to-mean ratio (1.0 = perfectly flat); 0 for an empty day.
    pub fn peak_to_mean(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.peak() / m
        }
    }

    /// Total bytes in the day.
    pub fn total(&self) -> f64 {
        self.bytes.iter().sum()
    }
}

/// A refresh task: `bytes` must be fetched no later than `deadline`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RefreshTask {
    /// Bytes to transfer.
    pub bytes: u64,
    /// The copy expires at this instant; fetching after it leaves a
    /// stale window.
    pub deadline: SimTime,
    /// The earliest useful fetch time (fetching earlier would just
    /// expire earlier). Defaults to one TTL before the deadline.
    pub earliest: SimTime,
}

fn hour_of(t: SimTime) -> usize {
    ((t.as_nanos() / 1_000_000_000 / 3600) % 24) as usize
}

/// The §IV-D demand scheduler.
#[derive(Clone, Debug, Default)]
pub struct DemandSmoother;

impl DemandSmoother {
    /// Baseline: every task fetches exactly at its deadline (on-expiry
    /// refresh, no scheduling freedom).
    pub fn at_deadline(tasks: &[RefreshTask], user_demand: &HourlyLoad) -> HourlyLoad {
        let mut load = user_demand.clone();
        for t in tasks {
            load.bytes[hour_of(t.deadline)] += t.bytes as f64;
        }
        load
    }

    /// Smoothed: each task is placed in the least-loaded hour of its
    /// feasible window `[earliest, deadline]` (inclusive, wrapping), on
    /// top of the anticipated user demand. Tasks are placed largest
    /// first (classic LPT heuristic).
    pub fn smoothed(tasks: &[RefreshTask], user_demand: &HourlyLoad) -> HourlyLoad {
        let mut load = user_demand.clone();
        let mut ordered: Vec<&RefreshTask> = tasks.iter().collect();
        ordered.sort_by_key(|t| std::cmp::Reverse(t.bytes));
        for t in ordered {
            let h0 = hour_of(t.earliest);
            let h1 = hour_of(t.deadline);
            // Feasible hours walking forward from earliest to deadline.
            let span = if h1 >= h0 { h1 - h0 } else { 24 - h0 + h1 };
            let candidates: Vec<usize> = (0..=span).map(|i| (h0 + i) % 24).collect();
            let best = candidates
                .into_iter()
                .min_by(|&a, &b| {
                    load.bytes[a]
                        .partial_cmp(&load.bytes[b])
                        .expect("loads are finite")
                })
                .expect("window is never empty");
            load.bytes[best] += t.bytes as f64;
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_hour(h: u64) -> SimTime {
        SimTime::from_secs(h * 3600)
    }

    /// A diurnal user-demand curve: heavy evenings, quiet nights.
    fn diurnal() -> HourlyLoad {
        let mut l = HourlyLoad::default();
        for h in 0..24 {
            l.bytes[h] = match h {
                19..=22 => 10_000.0, // evening peak
                7..=18 => 4_000.0,   // daytime
                _ => 500.0,          // night
            };
        }
        l
    }

    /// Tasks that all expire during the evening peak but could fetch any
    /// time from the previous night.
    fn evening_tasks(n: usize) -> Vec<RefreshTask> {
        (0..n)
            .map(|i| RefreshTask {
                bytes: 5_000,
                deadline: at_hour(20) + hpop_netsim::time::SimDuration::from_secs(i as u64),
                earliest: at_hour(2),
            })
            .collect()
    }

    #[test]
    fn smoothing_flattens_the_peak() {
        let demand = diurnal();
        let tasks = evening_tasks(10);
        let baseline = DemandSmoother::at_deadline(&tasks, &demand);
        let smoothed = DemandSmoother::smoothed(&tasks, &demand);
        // Same total bytes either way.
        assert!((baseline.total() - smoothed.total()).abs() < 1e-6);
        // The baseline piles 50 KB onto the evening peak; smoothing
        // pushes it into the night hours.
        assert!(
            smoothed.peak() < baseline.peak(),
            "smoothed peak {} vs baseline {}",
            smoothed.peak(),
            baseline.peak()
        );
        assert!(smoothed.peak_to_mean() < baseline.peak_to_mean());
    }

    #[test]
    fn deadline_is_respected() {
        let demand = HourlyLoad::default();
        // Feasible window: hours 2..=5 only.
        let tasks = vec![RefreshTask {
            bytes: 100,
            deadline: at_hour(5),
            earliest: at_hour(2),
        }];
        let smoothed = DemandSmoother::smoothed(&tasks, &demand);
        let placed: Vec<usize> = (0..24).filter(|&h| smoothed.bytes[h] > 0.0).collect();
        assert_eq!(placed.len(), 1);
        assert!((2..=5).contains(&placed[0]), "placed at {}", placed[0]);
    }

    #[test]
    fn wrapping_window_works() {
        let demand = HourlyLoad::default();
        // Window from 22:00 to 03:00 (wraps midnight).
        let tasks = vec![RefreshTask {
            bytes: 100,
            deadline: at_hour(27), // = hour 3 next day
            earliest: at_hour(22),
        }];
        let smoothed = DemandSmoother::smoothed(&tasks, &demand);
        let placed: Vec<usize> = (0..24).filter(|&h| smoothed.bytes[h] > 0.0).collect();
        assert_eq!(placed.len(), 1);
        assert!(placed[0] >= 22 || placed[0] <= 3, "placed at {}", placed[0]);
    }

    #[test]
    fn loads_spread_across_the_window() {
        let demand = HourlyLoad::default();
        let tasks: Vec<RefreshTask> = (0..8)
            .map(|_| RefreshTask {
                bytes: 100,
                deadline: at_hour(10),
                earliest: at_hour(3),
            })
            .collect();
        let smoothed = DemandSmoother::smoothed(&tasks, &demand);
        // 8 equal tasks over an 8-hour window: one per hour (flat).
        let used: Vec<f64> = (3..=10).map(|h| smoothed.bytes[h]).collect();
        assert!(used.iter().all(|&b| (b - 100.0).abs() < 1e-9), "{used:?}");
    }

    #[test]
    fn hourly_load_stats() {
        let mut l = HourlyLoad::default();
        assert_eq!(l.peak_to_mean(), 0.0);
        l.bytes[0] = 48.0;
        l.bytes[1] = 0.0;
        assert_eq!(l.peak(), 48.0);
        assert_eq!(l.mean(), 2.0);
        assert_eq!(l.peak_to_mean(), 24.0);
        assert_eq!(l.total(), 48.0);
    }
}
