//! Trial-and-error detour exploration.
//!
//! §IV-C: "because it is difficult to predict if a particular detour
//! will be beneficial or harmful to a given communication, hosts should
//! be able to add, remove, or change detours dynamically … select
//! detours by using 'trial and error' to explore multiple detours and
//! retain the beneficial ones."
//!
//! [`rank_waypoints`] is the probing step: estimate each candidate
//! detour's RTT, loss and bottleneck from measured path properties and
//! predict achievable throughput (capacity-limited on clean paths,
//! Mathis-limited on lossy ones).

use crate::collective::MemberId;
use hpop_netsim::routing::RoutingTable;
use hpop_netsim::time::SimDuration;
use hpop_netsim::topology::NodeId;
use hpop_netsim::units::Bandwidth;
use hpop_transport::tcp::mathis_throughput;

/// One candidate detour's probed properties and predicted benefit.
#[derive(Clone, Debug)]
pub struct DetourEstimate {
    /// The waypoint member (None = the native direct path).
    pub waypoint: Option<MemberId>,
    /// Round-trip time of the (composite) path.
    pub rtt: SimDuration,
    /// End-to-end loss probability.
    pub loss: f64,
    /// Tightest link capacity along the path.
    pub bottleneck: Bandwidth,
    /// Predicted achievable steady-state throughput.
    pub predicted_rate: Bandwidth,
}

impl DetourEstimate {
    fn from_path(
        waypoint: Option<MemberId>,
        rtt: SimDuration,
        loss: f64,
        bottleneck: Bandwidth,
        mss: u32,
    ) -> DetourEstimate {
        let predicted_rate =
            match mathis_throughput(mss, rtt.max(SimDuration::from_micros(100)), loss.min(0.999)) {
                Some(mathis) => mathis.min(bottleneck),
                None => bottleneck,
            };
        DetourEstimate {
            waypoint,
            rtt,
            loss,
            bottleneck,
            predicted_rate,
        }
    }
}

/// Probes the direct path and each candidate waypoint, returning
/// estimates sorted by predicted throughput (best first). The direct
/// path is always included (`waypoint: None`), so callers can see
/// whether any detour actually beats it.
pub fn rank_waypoints(
    routing: &mut RoutingTable,
    client: NodeId,
    server: NodeId,
    waypoints: &[(MemberId, NodeId)],
    mss: u32,
) -> Vec<DetourEstimate> {
    let topo = routing.topology().clone();
    let mut out = Vec::new();
    if let Some(direct) = routing.route(client, server) {
        out.push(DetourEstimate::from_path(
            None,
            direct.rtt(&topo),
            direct.loss(&topo),
            direct.bottleneck(&topo).unwrap_or(Bandwidth::gbps(100.0)),
            mss,
        ));
    }
    for &(member, node) in waypoints {
        if let Some(path) = routing.route_via(client, node, server) {
            out.push(DetourEstimate::from_path(
                Some(member),
                path.rtt(&topo),
                path.loss(&topo),
                path.bottleneck(&topo).unwrap_or(Bandwidth::gbps(100.0)),
                mss,
            ));
        }
    }
    out.sort_by(|a, b| {
        b.predicted_rate
            .partial_cmp(&a.predicted_rate)
            .expect("finite rates")
            .then_with(|| a.rtt.cmp(&b.rtt))
    });
    out
}

/// Selects up to `k` beneficial detours: waypoints predicted to beat the
/// direct path's throughput by at least `min_gain` (e.g. `1.1` = 10%).
pub fn select_beneficial(estimates: &[DetourEstimate], k: usize, min_gain: f64) -> Vec<MemberId> {
    let direct_rate = estimates
        .iter()
        .find(|e| e.waypoint.is_none())
        .map(|e| e.predicted_rate.bits_per_sec())
        .unwrap_or(0.0);
    estimates
        .iter()
        .filter_map(|e| {
            e.waypoint
                .filter(|_| e.predicted_rate.bits_per_sec() >= direct_rate * min_gain)
        })
        .take(k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_netsim::presets::{detour_triangle, DetourParams};

    /// Triangle + one useless extra waypoint far away.
    fn setup() -> (RoutingTable, NodeId, NodeId, Vec<(MemberId, NodeId)>) {
        use hpop_netsim::topology::TopologyBuilder;
        let mut b = TopologyBuilder::new();
        let client = b.add_node("client");
        let good_wp = b.add_node("good-wp");
        let bad_wp = b.add_node("bad-wp");
        let server = b.add_node("server");
        // Direct: slow & lossy, but policy-preferred (weight 1).
        b.add_link_weighted(
            client,
            server,
            Bandwidth::mbps(100.0),
            Bandwidth::mbps(100.0),
            SimDuration::from_millis(80),
            0.02,
            1,
        );
        // Good detour: fast & clean.
        b.add_link(
            client,
            good_wp,
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(20),
        );
        b.add_link(
            good_wp,
            server,
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(20),
        );
        // Bad detour: enormous latency.
        b.add_link(
            client,
            bad_wp,
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(200),
        );
        b.add_link(
            bad_wp,
            server,
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(200),
        );
        let rt = RoutingTable::new(&b.build());
        (
            rt,
            client,
            server,
            vec![(MemberId(0), good_wp), (MemberId(1), bad_wp)],
        )
    }

    #[test]
    fn good_waypoint_ranks_first() {
        let (mut rt, c, s, wps) = setup();
        let est = rank_waypoints(&mut rt, c, s, &wps, 1460);
        assert_eq!(est.len(), 3);
        assert_eq!(est[0].waypoint, Some(MemberId(0)));
        // The clean gigabit detour dominates the lossy 100 Mbps direct.
        let direct = est.iter().find(|e| e.waypoint.is_none()).unwrap();
        assert!(est[0].predicted_rate.bits_per_sec() > 2.0 * direct.predicted_rate.bits_per_sec());
    }

    #[test]
    fn loss_caps_direct_path_prediction() {
        let (mut rt, c, s, wps) = setup();
        let est = rank_waypoints(&mut rt, c, s, &wps, 1460);
        let direct = est.iter().find(|e| e.waypoint.is_none()).unwrap();
        // 2% loss at 160 ms RTT: Mathis keeps it well under the 100 Mbps
        // link capacity.
        assert!(direct.predicted_rate.as_mbps() < 10.0);
        assert!(direct.loss > 0.019);
    }

    #[test]
    fn select_beneficial_filters_bad_detours() {
        let (mut rt, c, s, wps) = setup();
        let est = rank_waypoints(&mut rt, c, s, &wps, 1460);
        let chosen = select_beneficial(&est, 4, 1.1);
        assert_eq!(chosen, vec![MemberId(0), MemberId(1)]);
        // With a latency-sensitive single pick, only the good one.
        let one = select_beneficial(&est, 1, 1.1);
        assert_eq!(one, vec![MemberId(0)]);
    }

    #[test]
    fn default_triangle_preset_detour_wins() {
        let t = detour_triangle(&DetourParams::default());
        let mut rt = RoutingTable::new(&t.topology);
        let est = rank_waypoints(
            &mut rt,
            t.client,
            t.server,
            &[(MemberId(0), t.waypoint)],
            1460,
        );
        assert_eq!(est[0].waypoint, Some(MemberId(0)));
    }

    #[test]
    fn no_waypoints_yields_direct_only() {
        let (mut rt, c, s, _) = setup();
        let est = rank_waypoints(&mut rt, c, s, &[], 1460);
        assert_eq!(est.len(), 1);
        assert!(est[0].waypoint.is_none());
        assert!(select_beneficial(&est, 3, 1.0).is_empty());
    }
}
