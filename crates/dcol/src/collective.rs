//! Cooperative membership.
//!
//! §IV-C: members "agree to serve as waypoints to each other"; a
//! "misbehaving peer can be expelled from the collective to avoid future
//! issues". The collective tracks who is in, which netsim node hosts
//! their HPoP, and a record of observed misbehavior.
//!
//! Membership and misbehavior now live on the shared fabric: each
//! member is a record in a [`MembershipTable`] and strikes are
//! [`Violation::Misrouting`] entries on the [`ReputationLedger`], so a
//! waypoint that drops packets is also demoted as a NoCDN edge and a
//! backup holder. Liveness flows in from gossip via
//! [`DetourCollective::sync_from_view`]: a waypoint the failure
//! detector declares dead stops being offered to clients even before it
//! earns a single strike.
//!
//! Strikes are reserved for *proven misbehavior* (misrouting, packet
//! tampering) and are permanent at the limit. *Transient* relay
//! failures — timeouts, loss episodes, a flapping uplink — instead feed
//! a per-member circuit breaker ([`DetourCollective::report_outcome`]):
//! the waypoint is withdrawn while its circuit is open and offered
//! again once it half-opens, so a member that merely suffered a bad
//! hour is not expelled forever. The breaker threshold scales with the
//! member's ledger reputation: known offenders trip sooner.

use hpop_fabric::{
    Advertisement, MembershipTable, PeerRecord, PeerState, PeerView, ReputationLedger, Violation,
};
use hpop_netsim::time::SimTime;
use hpop_netsim::topology::NodeId;
use hpop_resilience::{BreakerBank, BreakerConfig, BreakerState};
use std::collections::BTreeMap;

/// Identifies a collective member.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MemberId(pub u32);

/// Maps a collective member id into the fabric namespace. DCol ids are
/// offset so they do not collide with NoCDN peer ids when both services
/// share one ledger in an integrated experiment.
fn fid(id: MemberId) -> hpop_fabric::PeerId {
    hpop_fabric::PeerId(1 << 32 | id.0 as u64)
}

/// The waypoint cooperative.
#[derive(Clone, Debug)]
pub struct DetourCollective {
    membership: MembershipTable,
    ledger: ReputationLedger,
    /// Member → hosting netsim node (service-local; not gossiped).
    nodes: BTreeMap<MemberId, NodeId>,
    next_id: u32,
    /// Strikes at which a member is expelled automatically (proven
    /// misbehavior only — transient failures go through the breakers).
    strike_limit: u32,
    /// Per-member circuit breakers for *transient* relay failures
    /// (timeouts, probe losses): a tripped member is withdrawn from the
    /// waypoint pool until its circuit half-opens — temporary, unlike
    /// strike expulsion.
    breakers: BreakerBank<u32>,
}

impl Default for DetourCollective {
    fn default() -> DetourCollective {
        DetourCollective {
            membership: MembershipTable::default(),
            ledger: ReputationLedger::default(),
            nodes: BTreeMap::new(),
            next_id: 0,
            strike_limit: 3,
            breakers: BreakerBank::new(BreakerConfig::default()),
        }
    }
}

impl DetourCollective {
    /// A collective expelling members at 3 strikes, withdrawing flaky
    /// members through default-configured circuit breakers.
    pub fn new() -> DetourCollective {
        DetourCollective::default()
    }

    /// Overrides the breaker tuning for transient-failure withdrawal.
    pub fn with_breaker_config(mut self, cfg: BreakerConfig) -> DetourCollective {
        self.breakers = BreakerBank::new(cfg);
        self
    }

    /// Overrides the expulsion threshold.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn with_strike_limit(mut self, limit: u32) -> DetourCollective {
        assert!(limit > 0, "strike limit must be positive");
        self.strike_limit = limit;
        self
    }

    /// Enrolls an HPoP (at netsim node `node`) as a member.
    pub fn join(&mut self, node: NodeId) -> MemberId {
        let id = MemberId(self.next_id);
        self.next_id += 1;
        self.membership.upsert(PeerRecord::alive(
            fid(id),
            Advertisement::default(),
            SimTime::ZERO,
        ));
        self.nodes.insert(id, node);
        id
    }

    /// Voluntary departure. Returns whether the member existed.
    pub fn leave(&mut self, id: MemberId) -> bool {
        let existed = self.nodes.remove(&id).is_some();
        if existed {
            self.membership
                .set_state(fid(id), PeerState::Left, SimTime::ZERO);
        }
        existed
    }

    /// Whether a member has hit the strike limit.
    fn expelled(&self, id: MemberId) -> bool {
        self.ledger.violations(fid(id)) >= self.strike_limit
    }

    /// Records misbehavior on the shared reputation ledger; at the
    /// strike limit the member is expelled. Returns whether this strike
    /// caused expulsion.
    pub fn strike(&mut self, id: MemberId) -> bool {
        if !self.nodes.contains_key(&id) || self.expelled(id) {
            return false;
        }
        self.ledger.record_violation(fid(id), Violation::Misrouting);
        self.expelled(id)
    }

    /// A member's strike count.
    pub fn strikes(&self, id: MemberId) -> u32 {
        self.ledger.violations(fid(id))
    }

    /// The shared reputation ledger (read access).
    pub fn ledger(&self) -> &ReputationLedger {
        &self.ledger
    }

    /// Reports the outcome of one relay attempt through `id`'s
    /// waypoint. Failures feed the member's circuit breaker (threshold
    /// scaled by its ledger reputation); at the effective threshold the
    /// member is *withdrawn* from the waypoint pool until the breaker
    /// half-opens — unlike [`DetourCollective::strike`], recovery is
    /// always possible. Returns `true` when this report left the
    /// circuit open (the waypoint is currently withdrawn).
    pub fn report_outcome(&mut self, id: MemberId, now: SimTime, ok: bool) -> bool {
        if !self.nodes.contains_key(&id) {
            return false;
        }
        self.breakers
            .set_reputation(id.0, self.ledger.score(fid(id)));
        self.breakers.record(id.0, now, ok);
        let withdrawn = self.breakers.state(id.0, now) == BreakerState::Open;
        if withdrawn {
            hpop_obs::metrics()
                .counter("dcol.waypoint.withdrawn")
                .incr();
        }
        withdrawn
    }

    /// Whether `id`'s waypoint may be offered to clients at `now`:
    /// in good standing *and* its transient-failure circuit admits
    /// traffic (closed, or half-open granting this caller the probe).
    pub fn usable_at(&mut self, id: MemberId, now: SimTime) -> bool {
        self.in_good_standing(id) && self.breakers.allow(id.0, now)
    }

    /// The breaker state of a member's waypoint at `now`.
    pub fn breaker_state(&self, id: MemberId, now: SimTime) -> BreakerState {
        self.breakers.state(id.0, now)
    }

    /// Whether a member is enrolled, unexpelled, and not known-dead.
    pub fn in_good_standing(&self, id: MemberId) -> bool {
        self.nodes.contains_key(&id) && !self.expelled(id) && self.believed_alive(id)
    }

    fn believed_alive(&self, id: MemberId) -> bool {
        self.membership
            .get(fid(id))
            .is_some_and(|r| r.state.is_alive())
    }

    /// A member's node, if in good standing.
    pub fn node_of(&self, id: MemberId) -> Option<NodeId> {
        if self.in_good_standing(id) {
            self.nodes.get(&id).copied()
        } else {
            None
        }
    }

    /// Adopts liveness beliefs from a gossip [`PeerView`]: members the
    /// fabric believes dead are withdrawn from the waypoint pool (and
    /// return if a later view refutes the death).
    pub fn sync_from_view(&mut self, view: &PeerView) {
        for (&id, _) in self.nodes.iter() {
            let Some(entry) = view.get(fid(id)) else {
                continue;
            };
            let Some(mut rec) = self.membership.get(fid(id)).cloned() else {
                continue;
            };
            rec.state = entry.state;
            self.membership.upsert(rec);
        }
    }

    /// Marks one member dead directly (a client's own probe failed
    /// before gossip confirmed it).
    pub fn mark_dead(&mut self, id: MemberId) {
        self.membership
            .set_state(fid(id), PeerState::Dead, SimTime::ZERO);
    }

    /// Waypoints available to `client` (every other member in good
    /// standing and believed alive). Time-blind: breaker withdrawal is
    /// applied by [`DetourCollective::waypoints_at`].
    pub fn waypoints_for(&self, client: MemberId) -> Vec<(MemberId, NodeId)> {
        self.nodes
            .iter()
            .filter(|(&id, _)| id != client && self.in_good_standing(id))
            .map(|(&id, &node)| (id, node))
            .collect()
    }

    /// Waypoints available to `client` at `now`: good standing, alive,
    /// and the transient-failure circuit is not hard-open (half-open
    /// members stay listed so a client probe can close them).
    pub fn waypoints_at(&self, client: MemberId, now: SimTime) -> Vec<(MemberId, NodeId)> {
        self.nodes
            .iter()
            .filter(|(&id, _)| {
                id != client
                    && self.in_good_standing(id)
                    && self.breakers.state(id.0, now) != BreakerState::Open
            })
            .map(|(&id, &node)| (id, node))
            .collect()
    }

    /// Members in good standing.
    pub fn active_count(&self) -> usize {
        self.nodes
            .keys()
            .filter(|&&id| self.in_good_standing(id))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        // NodeIds are opaque; build them through a topology.
        use hpop_netsim::topology::TopologyBuilder;
        let mut b = TopologyBuilder::new();
        let mut last = b.add_node("n0");
        for k in 1..=i {
            last = b.add_node(format!("n{k}"));
        }
        last
    }

    #[test]
    fn join_and_waypoints() {
        let mut c = DetourCollective::new();
        let a = c.join(node(0));
        let b = c.join(node(1));
        let d = c.join(node(2));
        assert_eq!(c.active_count(), 3);
        let wps = c.waypoints_for(a);
        assert_eq!(wps.len(), 2);
        assert!(wps.iter().all(|(id, _)| *id == b || *id == d));
    }

    #[test]
    fn strikes_lead_to_expulsion() {
        let mut c = DetourCollective::new();
        let a = c.join(node(0));
        assert!(!c.strike(a));
        assert!(!c.strike(a));
        assert!(c.strike(a)); // third strike expels
        assert!(!c.in_good_standing(a));
        assert_eq!(c.node_of(a), None);
        assert_eq!(c.active_count(), 0);
        // Further strikes are no-ops.
        assert!(!c.strike(a));
        assert_eq!(c.strikes(a), 3);
    }

    #[test]
    fn expelled_members_are_not_waypoints() {
        let mut c = DetourCollective::new().with_strike_limit(1);
        let a = c.join(node(0));
        let b = c.join(node(1));
        assert!(c.strike(b));
        assert!(c.waypoints_for(a).is_empty());
    }

    #[test]
    fn leave_removes() {
        let mut c = DetourCollective::new();
        let a = c.join(node(0));
        assert!(c.leave(a));
        assert!(!c.leave(a));
        assert!(!c.in_good_standing(a));
    }

    #[test]
    fn dead_members_are_withdrawn_until_refuted() {
        let mut c = DetourCollective::new();
        let a = c.join(node(0));
        let b = c.join(node(1));
        c.mark_dead(b);
        assert!(c.waypoints_for(a).is_empty());
        assert_eq!(c.active_count(), 1);
        // Gossip refutes the death (peer rejoined at a higher
        // incarnation): the view says alive again.
        let view = PeerView::new(vec![hpop_fabric::PeerEntry {
            id: fid(b),
            state: PeerState::Alive,
            advert: Advertisement::default(),
            uptime_fraction: 0.9,
            reputation: 1.0,
        }]);
        c.sync_from_view(&view);
        assert_eq!(c.waypoints_for(a).len(), 1);
    }

    #[test]
    fn strikes_land_on_shared_ledger() {
        let mut c = DetourCollective::new();
        let a = c.join(node(0));
        c.strike(a);
        assert_eq!(c.ledger().violations(fid(a)), 1);
        assert!(c.ledger().score(fid(a)) < 1.0);
    }

    #[test]
    #[should_panic(expected = "strike limit must be positive")]
    fn zero_strike_limit_rejected() {
        let _ = DetourCollective::new().with_strike_limit(0);
    }

    #[test]
    fn transient_failures_withdraw_via_breaker_then_recover() {
        use hpop_netsim::time::SimDuration;
        use hpop_resilience::BreakerConfig;
        let mut c = DetourCollective::new().with_breaker_config(BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(10),
        });
        let a = c.join(node(0));
        let b = c.join(node(1));
        let t = SimTime::from_secs;
        // Three timeouts through b's waypoint: withdrawn, but NOT
        // expelled and with zero strikes.
        assert!(!c.report_outcome(b, t(1), false));
        assert!(!c.report_outcome(b, t(2), false));
        assert!(c.report_outcome(b, t(3), false));
        assert_eq!(c.strikes(b), 0);
        assert!(c.in_good_standing(b), "withdrawal is not expulsion");
        assert!(c.waypoints_at(a, t(4)).is_empty());
        assert!(!c.usable_at(b, t(4)));
        // After the cooldown the circuit half-opens: the waypoint is
        // offered again and a successful relay closes it fully.
        assert_eq!(c.waypoints_at(a, t(14)).len(), 1);
        assert!(c.usable_at(b, t(14)));
        assert!(!c.report_outcome(b, t(15), true));
        assert_eq!(
            c.breaker_state(b, t(15)),
            hpop_resilience::BreakerState::Closed
        );
        assert_eq!(c.waypoints_at(a, t(15)).len(), 1);
    }

    #[test]
    fn ledger_reputation_trips_known_offenders_sooner() {
        let mut c = DetourCollective::new();
        let offender = c.join(node(0));
        let clean = c.join(node(1));
        // One prior proven strike halves the offender's score (0.5
        // weight): ceil(3 * 0.5 * phi-free score) < 3 failures needed.
        c.strike(offender);
        let t = SimTime::from_secs;
        let mut trips_offender = 0;
        for i in 0..3 {
            if c.report_outcome(offender, t(i), false) {
                trips_offender = i + 1;
                break;
            }
        }
        let mut trips_clean = 0;
        for i in 0..3 {
            if c.report_outcome(clean, t(i), false) {
                trips_clean = i + 1;
                break;
            }
        }
        assert!(trips_offender > 0, "offender never tripped");
        assert!(
            trips_clean == 0 || trips_offender <= trips_clean,
            "offender ({trips_offender}) must trip no later than clean ({trips_clean})"
        );
    }

    #[test]
    fn report_outcome_ignores_unknown_members() {
        let mut c = DetourCollective::new();
        assert!(!c.report_outcome(MemberId(99), SimTime::ZERO, false));
    }
}
