//! Cooperative membership.
//!
//! §IV-C: members "agree to serve as waypoints to each other"; a
//! "misbehaving peer can be expelled from the collective to avoid future
//! issues". The collective tracks who is in, which netsim node hosts
//! their HPoP, and a record of observed misbehavior.

use hpop_netsim::topology::NodeId;
use std::collections::BTreeMap;

/// Identifies a collective member.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MemberId(pub u32);

#[derive(Clone, Debug)]
struct Member {
    node: NodeId,
    /// Misbehavior strikes (packet dropping, corruption …).
    strikes: u32,
    expelled: bool,
}

/// The waypoint cooperative.
#[derive(Clone, Debug, Default)]
pub struct DetourCollective {
    members: BTreeMap<MemberId, Member>,
    next_id: u32,
    /// Strikes at which a member is expelled automatically.
    strike_limit: u32,
}

impl DetourCollective {
    /// A collective expelling members at 3 strikes.
    pub fn new() -> DetourCollective {
        DetourCollective {
            strike_limit: 3,
            ..DetourCollective::default()
        }
    }

    /// Overrides the expulsion threshold.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn with_strike_limit(mut self, limit: u32) -> DetourCollective {
        assert!(limit > 0, "strike limit must be positive");
        self.strike_limit = limit;
        self
    }

    /// Enrolls an HPoP (at netsim node `node`) as a member.
    pub fn join(&mut self, node: NodeId) -> MemberId {
        let id = MemberId(self.next_id);
        self.next_id += 1;
        self.members.insert(
            id,
            Member {
                node,
                strikes: 0,
                expelled: false,
            },
        );
        id
    }

    /// Voluntary departure. Returns whether the member existed.
    pub fn leave(&mut self, id: MemberId) -> bool {
        self.members.remove(&id).is_some()
    }

    /// Records misbehavior; at the strike limit the member is expelled.
    /// Returns whether this strike caused expulsion.
    pub fn strike(&mut self, id: MemberId) -> bool {
        let Some(m) = self.members.get_mut(&id) else {
            return false;
        };
        if m.expelled {
            return false;
        }
        m.strikes += 1;
        if m.strikes >= self.strike_limit {
            m.expelled = true;
            return true;
        }
        false
    }

    /// Whether a member is in good standing.
    pub fn in_good_standing(&self, id: MemberId) -> bool {
        self.members.get(&id).is_some_and(|m| !m.expelled)
    }

    /// A member's node, if in good standing.
    pub fn node_of(&self, id: MemberId) -> Option<NodeId> {
        self.members
            .get(&id)
            .filter(|m| !m.expelled)
            .map(|m| m.node)
    }

    /// Waypoints available to `client` (every other member in good
    /// standing).
    pub fn waypoints_for(&self, client: MemberId) -> Vec<(MemberId, NodeId)> {
        self.members
            .iter()
            .filter(|(&id, m)| id != client && !m.expelled)
            .map(|(&id, m)| (id, m.node))
            .collect()
    }

    /// Members in good standing.
    pub fn active_count(&self) -> usize {
        self.members.values().filter(|m| !m.expelled).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        // NodeIds are opaque; build them through a topology.
        use hpop_netsim::topology::TopologyBuilder;
        let mut b = TopologyBuilder::new();
        let mut last = b.add_node("n0");
        for k in 1..=i {
            last = b.add_node(format!("n{k}"));
        }
        last
    }

    #[test]
    fn join_and_waypoints() {
        let mut c = DetourCollective::new();
        let a = c.join(node(0));
        let b = c.join(node(1));
        let d = c.join(node(2));
        assert_eq!(c.active_count(), 3);
        let wps = c.waypoints_for(a);
        assert_eq!(wps.len(), 2);
        assert!(wps.iter().all(|(id, _)| *id == b || *id == d));
    }

    #[test]
    fn strikes_lead_to_expulsion() {
        let mut c = DetourCollective::new();
        let a = c.join(node(0));
        assert!(!c.strike(a));
        assert!(!c.strike(a));
        assert!(c.strike(a)); // third strike expels
        assert!(!c.in_good_standing(a));
        assert_eq!(c.node_of(a), None);
        assert_eq!(c.active_count(), 0);
        // Further strikes are no-ops.
        assert!(!c.strike(a));
    }

    #[test]
    fn expelled_members_are_not_waypoints() {
        let mut c = DetourCollective::new().with_strike_limit(1);
        let a = c.join(node(0));
        let b = c.join(node(1));
        assert!(c.strike(b));
        assert!(c.waypoints_for(a).is_empty());
    }

    #[test]
    fn leave_removes() {
        let mut c = DetourCollective::new();
        let a = c.join(node(0));
        assert!(c.leave(a));
        assert!(!c.leave(a));
        assert!(!c.in_good_standing(a));
    }

    #[test]
    #[should_panic(expected = "strike limit must be positive")]
    fn zero_strike_limit_rejected() {
        let _ = DetourCollective::new().with_strike_limit(0);
    }
}
