//! Client↔waypoint tunneling: VPN vs NAT.
//!
//! §IV-C: "VPN adds 36 bytes of per-packet overhead for IP encapsulation
//! and UDP and OpenVPN headers, while NAT adds no extra bytes to a
//! packet"; conversely, "once a client establishes a VPN tunnel with a
//! waypoint, this tunnel may be reused to create a detour for any TCP
//! connection to any server … The NAT mechanism requires signaling with
//! the waypoint for every new server address and port number
//! combination." [`TunnelState`] models exactly that tradeoff
//! (experiment E10), and [`SubnetAllocator`] implements the paper's
//! "/26 from the 10.0.0.0/8 block … 256K non-conflicting waypoints
//! [each serving] 64 clients".

use hpop_netsim::time::SimDuration;
use std::collections::BTreeSet;

/// Which tunneling mechanism a detour uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TunnelType {
    /// OpenVPN-style encapsulation: 36 B/packet, one-time join.
    Vpn,
    /// netfilter NAT rules: 0 B/packet, per-(dst, port) signaling.
    Nat,
}

impl TunnelType {
    /// Per-packet encapsulation overhead in bytes.
    pub fn per_packet_overhead(self) -> u32 {
        match self {
            TunnelType::Vpn => 36,
            TunnelType::Nat => 0,
        }
    }
}

/// Live tunnel state between one client and one waypoint.
#[derive(Clone, Debug)]
pub struct TunnelState {
    kind: TunnelType,
    vpn_joined: bool,
    nat_rules: BTreeSet<(u64, u16)>,
    /// Signaling round trips spent so far (setup cost metric).
    pub signaling_rtts: u32,
}

impl TunnelState {
    /// A fresh (unestablished) tunnel.
    pub fn new(kind: TunnelType) -> TunnelState {
        TunnelState {
            kind,
            vpn_joined: false,
            nat_rules: BTreeSet::new(),
            signaling_rtts: 0,
        }
    }

    /// The mechanism in use.
    pub fn kind(&self) -> TunnelType {
        self.kind
    }

    /// Prepares the tunnel for a connection to `(dst, port)`, returning
    /// the setup delay incurred *this time* given the client↔waypoint
    /// RTT:
    ///
    /// - VPN: 2 RTTs once ever (join VPN + DHCP), then free for any
    ///   destination;
    /// - NAT: 1 RTT per new `(dst, port)` pair, then free for repeats.
    pub fn prepare(&mut self, dst: u64, port: u16, rtt: SimDuration) -> SimDuration {
        match self.kind {
            TunnelType::Vpn => {
                if self.vpn_joined {
                    SimDuration::ZERO
                } else {
                    self.vpn_joined = true;
                    self.signaling_rtts += 2;
                    rtt * 2
                }
            }
            TunnelType::Nat => {
                if self.nat_rules.insert((dst, port)) {
                    self.signaling_rtts += 1;
                    rtt
                } else {
                    SimDuration::ZERO
                }
            }
        }
    }

    /// Number of NAT rules installed (0 for VPN tunnels).
    pub fn nat_rule_count(&self) -> usize {
        self.nat_rules.len()
    }

    /// Total wire bytes for sending `goodput` bytes through this tunnel
    /// with `mss`-sized segments.
    pub fn wire_bytes(&self, goodput: u64, mss: u32) -> u64 {
        let packets = goodput.div_ceil(mss as u64);
        goodput + packets * self.kind.per_packet_overhead() as u64
    }
}

/// A waypoint's private-subnet allocation: `/26`s carved from
/// `10.0.0.0/8`.
#[derive(Clone, Debug, Default)]
pub struct SubnetAllocator {
    next: u32,
    released: BTreeSet<u32>,
}

/// Total allocatable `/26` subnets in `10.0.0.0/8` (2^24 / 2^6).
pub const MAX_SUBNETS: u32 = 1 << 18;

/// Clients addressable within one `/26` (64 addresses; the paper's "64
/// clients simultaneously" — broadcast/network addresses ignored in this
/// model).
pub const CLIENTS_PER_SUBNET: u32 = 64;

/// A waypoint's allocated `/26`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Subnet(u32);

impl Subnet {
    /// The subnet in dotted `10.x.y.z/26` notation.
    pub fn cidr(&self) -> String {
        let base = self.0 << 6;
        format!(
            "10.{}.{}.{}/26",
            (base >> 16) & 0xff,
            (base >> 8) & 0xff,
            base & 0xff
        )
    }

    /// The private address of client slot `idx` within the subnet.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 64`.
    pub fn client_addr(&self, idx: u32) -> String {
        assert!(idx < CLIENTS_PER_SUBNET, "client slot out of range");
        let addr = (self.0 << 6) + idx;
        format!(
            "10.{}.{}.{}",
            (addr >> 16) & 0xff,
            (addr >> 8) & 0xff,
            addr & 0xff
        )
    }
}

impl SubnetAllocator {
    /// A fresh allocator over the whole `10.0.0.0/8` pool.
    pub fn new() -> SubnetAllocator {
        SubnetAllocator::default()
    }

    /// Allocates the next free `/26`; `None` when the pool is exhausted.
    pub fn allocate(&mut self) -> Option<Subnet> {
        if let Some(&r) = self.released.iter().next() {
            self.released.remove(&r);
            return Some(Subnet(r));
        }
        if self.next >= MAX_SUBNETS {
            return None;
        }
        let s = Subnet(self.next);
        self.next += 1;
        Some(s)
    }

    /// Returns a subnet to the pool.
    pub fn release(&mut self, s: Subnet) {
        if s.0 < self.next {
            self.released.insert(s.0);
        }
    }

    /// Subnets currently allocated.
    pub fn allocated_count(&self) -> u32 {
        self.next - self.released.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTT: SimDuration = SimDuration::from_millis(20);

    #[test]
    fn vpn_pays_once_nat_pays_per_destination() {
        let mut vpn = TunnelState::new(TunnelType::Vpn);
        let mut nat = TunnelState::new(TunnelType::Nat);
        // First connection.
        assert_eq!(vpn.prepare(1, 443, RTT), RTT * 2);
        assert_eq!(nat.prepare(1, 443, RTT), RTT);
        // Same destination again: both free.
        assert_eq!(vpn.prepare(1, 443, RTT), SimDuration::ZERO);
        assert_eq!(nat.prepare(1, 443, RTT), SimDuration::ZERO);
        // New destination: VPN free, NAT pays again.
        assert_eq!(vpn.prepare(2, 443, RTT), SimDuration::ZERO);
        assert_eq!(nat.prepare(2, 443, RTT), RTT);
        assert_eq!(vpn.signaling_rtts, 2);
        assert_eq!(nat.signaling_rtts, 2);
        assert_eq!(nat.nat_rule_count(), 2);
        assert_eq!(vpn.nat_rule_count(), 0);
    }

    #[test]
    fn wire_overhead_is_36_bytes_per_packet_for_vpn_only() {
        let vpn = TunnelState::new(TunnelType::Vpn);
        let nat = TunnelState::new(TunnelType::Nat);
        // 1 MB in 1460-byte segments = 685 packets.
        let goodput = 1_000_000u64;
        assert_eq!(nat.wire_bytes(goodput, 1460), goodput);
        assert_eq!(vpn.wire_bytes(goodput, 1460), goodput + 685 * 36);
        assert_eq!(TunnelType::Vpn.per_packet_overhead(), 36);
        assert_eq!(TunnelType::Nat.per_packet_overhead(), 0);
    }

    #[test]
    fn subnet_allocation_and_addressing() {
        let mut alloc = SubnetAllocator::new();
        let s0 = alloc.allocate().unwrap();
        let s1 = alloc.allocate().unwrap();
        assert_eq!(s0.cidr(), "10.0.0.0/26");
        assert_eq!(s1.cidr(), "10.0.0.64/26");
        assert_eq!(s0.client_addr(0), "10.0.0.0");
        assert_eq!(s0.client_addr(63), "10.0.0.63");
        assert_eq!(s1.client_addr(1), "10.0.0.65");
        assert_eq!(alloc.allocated_count(), 2);
    }

    #[test]
    fn release_reuses_lowest_subnet() {
        let mut alloc = SubnetAllocator::new();
        let a = alloc.allocate().unwrap();
        let _b = alloc.allocate().unwrap();
        alloc.release(a);
        assert_eq!(alloc.allocated_count(), 1);
        let c = alloc.allocate().unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn pool_capacity_matches_paper_arithmetic() {
        // 256K waypoints × 64 clients (§IV-C).
        assert_eq!(MAX_SUBNETS, 262_144);
        assert_eq!(CLIENTS_PER_SUBNET, 64);
    }

    #[test]
    #[should_panic(expected = "client slot out of range")]
    fn client_slot_bounds_checked() {
        let mut alloc = SubnetAllocator::new();
        let s = alloc.allocate().unwrap();
        let _ = s.client_addr(64);
    }
}
