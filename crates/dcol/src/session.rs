//! End-to-end DCol transfer sessions.
//!
//! Wires the pieces together the way Fig. 3 shows: the connection starts
//! on the direct path (the paper requires the TLS handshake to complete
//! there before any detour is engaged), tunnels to the chosen waypoints
//! are prepared (VPN join or NAT signaling — each costs its own setup
//! delay), and detour subflows are added as they become ready. A review
//! pass later withdraws subflows that turned out harmful — the
//! trial-and-error loop.

use crate::collective::MemberId;
use crate::tunnel::{TunnelState, TunnelType};
use hpop_netsim::netsim::NetSim;
use hpop_netsim::time::SimDuration;
use hpop_netsim::topology::NodeId;
use hpop_obs::event;
use hpop_transport::mptcp::{MptcpHandle, MptcpStats, MptcpTransfer, Scheduler, SubflowSpec};
use hpop_transport::tcp::TcpConfig;

/// Session parameters.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Tunneling mechanism for every detour.
    pub tunnel: TunnelType,
    /// TCP endpoint parameters.
    pub tcp: TcpConfig,
    /// Server-side subflow scheduler.
    pub scheduler: Scheduler,
    /// Loss-sampling seed.
    pub seed: u64,
    /// When (after launch) to review subflows and withdraw laggards;
    /// `None` disables the review.
    pub review_after: Option<SimDuration>,
    /// A subflow is withdrawn at review if it delivered less than this
    /// fraction of the best subflow's bytes.
    pub withdraw_below: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            tunnel: TunnelType::Vpn,
            tcp: TcpConfig::default(),
            scheduler: Scheduler::MinRtt,
            seed: 0,
            review_after: None,
            withdraw_below: 0.05,
        }
    }
}

/// A DCol-assisted download: direct subflow plus waypoint detours.
#[derive(Debug)]
pub struct DcolSession;

impl DcolSession {
    /// Launches a `bytes` download from `server` to `client` using the
    /// given waypoints. Returns the steering handle (subflow 0 is the
    /// direct path; waypoints follow in order as their tunnels come up).
    ///
    /// # Panics
    ///
    /// Panics if `client` and `server` are disconnected.
    pub fn launch(
        sim: &mut NetSim,
        client: NodeId,
        server: NodeId,
        waypoints: &[(MemberId, NodeId)],
        bytes: u64,
        cfg: SessionConfig,
        on_done: impl FnOnce(&mut NetSim, MptcpStats) + 'static,
    ) -> MptcpHandle {
        let topo = sim.state.net.topology().clone();
        let direct = sim
            .state
            .net
            .routing()
            .route(server, client)
            .expect("client and server must be connected");
        let spans = hpop_obs::spans();
        let root = spans.root();
        let t0_us = sim.now().as_nanos() / 1_000;
        // Tunnel-setup waits, recorded as "queue" children when the
        // session completes (clamped into the root interval so the
        // trace tree stays well-formed even if a tunnel outlives the
        // transfer).
        let queue_intervals: std::rc::Rc<std::cell::RefCell<Vec<(u64, u64)>>> =
            std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let q = queue_intervals.clone();
        let handle = MptcpTransfer::launch(
            sim,
            vec![SubflowSpec::new("direct", direct)],
            bytes,
            cfg.tcp,
            cfg.scheduler,
            cfg.seed,
            move |sim: &mut NetSim, stats: MptcpStats| {
                if root.is_sampled() {
                    let end_us = sim.now().as_nanos() / 1_000;
                    spans.record_child(&root, "dcol", "transfer", t0_us, end_us);
                    for &(qs, qe) in q.borrow().iter() {
                        spans.record_child(&root, "dcol", "queue", qs.min(end_us), qe.min(end_us));
                    }
                    spans.record(&root, "dcol", "request", t0_us, end_us);
                }
                on_done(sim, stats)
            },
        );

        for (i, &(member, node)) in waypoints.iter().enumerate() {
            // Tunnel setup: client↔waypoint signaling before the subflow
            // can exist.
            let leg = sim
                .state
                .net
                .routing()
                .route(client, node)
                .expect("waypoint unreachable");
            let mut tunnel = TunnelState::new(cfg.tunnel);
            let setup = tunnel.prepare(server.index() as u64, 443, leg.rtt(&topo));
            queue_intervals
                .borrow_mut()
                .push((t0_us, t0_us + setup.as_nanos() / 1_000));
            let via = sim
                .state
                .net
                .routing()
                .route_via(server, node, client)
                .expect("detour route exists");
            let spec = SubflowSpec {
                label: format!("via-m{}", member.0),
                path: via,
                ack_delay: SimDuration::ZERO,
                per_packet_overhead: cfg.tunnel.per_packet_overhead(),
            };
            let h = handle.clone();
            sim.schedule_in(setup, move |sim| {
                let label = spec.label.clone();
                let idx = h.add_subflow(sim, spec);
                debug_assert_eq!(idx, i + 1);
                hpop_obs::metrics().counter("dcol.subflows.added").incr();
                event!(
                    hpop_obs::tracer(),
                    sim.now().as_nanos() / 1_000,
                    "dcol",
                    "subflow.add",
                    index = idx as u64,
                    label = label.as_str()
                );
            });
        }

        if let Some(after) = cfg.review_after {
            let h = handle.clone();
            let threshold = cfg.withdraw_below;
            sim.schedule_in(after, move |sim| {
                review_and_withdraw(sim, &h, threshold);
            });
        }
        handle
    }
}

impl DcolSession {
    /// Launches an *upload* (`client → server`) with direct waypoint
    /// exploration: §IV-C — "when the data flows mostly from the client
    /// to the server … the client can directly explore different
    /// waypoints by sending a few data packets over new subflows and
    /// staying with those waypoints that perform well." All candidate
    /// subflows start immediately; at `probe_after` the client keeps the
    /// best `keep_best` subflows and withdraws the rest.
    ///
    /// # Panics
    ///
    /// Panics if `keep_best == 0` or the endpoints are disconnected.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_upload(
        sim: &mut NetSim,
        client: NodeId,
        server: NodeId,
        waypoints: &[(MemberId, NodeId)],
        bytes: u64,
        cfg: SessionConfig,
        keep_best: usize,
        probe_after: SimDuration,
        on_done: impl FnOnce(&mut NetSim, MptcpStats) + 'static,
    ) -> MptcpHandle {
        assert!(keep_best > 0, "must keep at least one subflow");
        let direct = sim
            .state
            .net
            .routing()
            .route(client, server)
            .expect("client and server must be connected");
        let mut subflows = vec![SubflowSpec::new("direct", direct)];
        for &(member, node) in waypoints {
            let via = sim
                .state
                .net
                .routing()
                .route_via(client, node, server)
                .expect("detour route exists");
            subflows.push(SubflowSpec {
                label: format!("via-m{}", member.0),
                path: via,
                ack_delay: SimDuration::ZERO,
                per_packet_overhead: cfg.tunnel.per_packet_overhead(),
            });
        }
        let handle = MptcpTransfer::launch(
            sim,
            subflows,
            bytes,
            cfg.tcp,
            cfg.scheduler,
            cfg.seed,
            on_done,
        );
        let h = handle.clone();
        sim.schedule_in(probe_after, move |sim| {
            keep_top_k(sim, &h, keep_best);
        });
        handle
    }
}

/// Closes all but the `k` best-performing open subflows.
fn keep_top_k(sim: &mut NetSim, handle: &MptcpHandle, k: usize) {
    let n = handle.subflow_count();
    let mut ranked: Vec<(u64, usize)> = (0..n)
        .filter(|&i| handle.is_open(i))
        .map(|i| (handle.delivered(i), i))
        .collect();
    ranked.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
    for &(_, idx) in ranked.iter().skip(k) {
        if handle.open_subflows() > 1 {
            handle.close_subflow(sim, idx);
            note_withdrawn(sim, idx, "probe");
        }
    }
}

fn note_withdrawn(sim: &NetSim, idx: usize, reason: &str) {
    hpop_obs::metrics()
        .counter("dcol.subflows.withdrawn")
        .incr();
    event!(
        hpop_obs::tracer(),
        sim.now().as_nanos() / 1_000,
        "dcol",
        "subflow.withdraw",
        index = idx as u64,
        reason = reason
    );
}

/// Withdraws subflows delivering less than `threshold` of the best
/// subflow's bytes (never the last open one).
fn review_and_withdraw(sim: &mut NetSim, handle: &MptcpHandle, threshold: f64) {
    let n = handle.subflow_count();
    let delivered: Vec<u64> = (0..n).map(|i| handle.delivered(i)).collect();
    let best = delivered.iter().copied().max().unwrap_or(0);
    if best == 0 {
        return;
    }
    for (i, &d) in delivered.iter().enumerate() {
        if (d as f64) < threshold * best as f64 && handle.open_subflows() > 1 && handle.is_open(i) {
            handle.close_subflow(sim, i);
            note_withdrawn(sim, i, "review");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_netsim::presets::{detour_triangle, DetourParams};
    use hpop_netsim::units::MB;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run(waypoint_count: usize, cfg: SessionConfig, bytes: u64) -> MptcpStats {
        let t = detour_triangle(&DetourParams::default());
        let mut sim = NetSim::with_topology(t.topology.clone());
        let wps: Vec<(MemberId, NodeId)> = (0..waypoint_count)
            .map(|i| (MemberId(i as u32), t.waypoint))
            .collect();
        let out: Rc<RefCell<Option<MptcpStats>>> = Rc::new(RefCell::new(None));
        let o2 = out.clone();
        DcolSession::launch(
            &mut sim,
            t.client,
            t.server,
            &wps,
            bytes,
            cfg,
            move |_, s| {
                *o2.borrow_mut() = Some(s);
            },
        );
        sim.run();
        let s = out.borrow_mut().take().expect("session completed");
        s
    }

    #[test]
    fn detour_accelerates_download() {
        let direct_only = run(0, SessionConfig::default(), 100 * MB);
        let with_detour = run(1, SessionConfig::default(), 100 * MB);
        assert!(
            with_detour.duration() < direct_only.duration(),
            "detour {} vs direct {}",
            with_detour.duration(),
            direct_only.duration()
        );
        // The clean gigabit detour carries most bytes.
        assert!(with_detour.share(1) > 0.5, "share {}", with_detour.share(1));
    }

    #[test]
    fn vpn_overhead_shows_on_wire() {
        let cfg = SessionConfig {
            tunnel: TunnelType::Vpn,
            ..SessionConfig::default()
        };
        let s = run(1, cfg, 50 * MB);
        let sf = &s.subflows[1];
        assert!(
            sf.wire_bytes > sf.bytes,
            "VPN subflow must inflate wire bytes"
        );
        let cfg = SessionConfig {
            tunnel: TunnelType::Nat,
            ..SessionConfig::default()
        };
        let s = run(1, cfg, 50 * MB);
        assert_eq!(s.subflows[1].wire_bytes, s.subflows[1].bytes);
    }

    #[test]
    fn review_withdraws_useless_direct_path() {
        // Make the direct path nearly useless (tiny + lossy) and ask the
        // session to review after 2s.
        let params = DetourParams {
            direct_capacity: hpop_netsim::units::Bandwidth::mbps(5.0),
            direct_loss: 0.05,
            ..DetourParams::default()
        };
        let t = detour_triangle(&params);
        let mut sim = NetSim::with_topology(t.topology.clone());
        let out: Rc<RefCell<Option<MptcpStats>>> = Rc::new(RefCell::new(None));
        let o2 = out.clone();
        let cfg = SessionConfig {
            review_after: Some(SimDuration::from_secs(2)),
            withdraw_below: 0.10,
            ..SessionConfig::default()
        };
        DcolSession::launch(
            &mut sim,
            t.client,
            t.server,
            &[(MemberId(0), t.waypoint)],
            200 * MB,
            cfg,
            move |_, s| *o2.borrow_mut() = Some(s),
        );
        sim.run();
        let s = out.borrow_mut().take().unwrap();
        // The direct subflow was withdrawn early: its byte share is tiny.
        assert!(s.share(0) < 0.10, "direct share {}", s.share(0));
        assert_eq!(s.bytes, 200 * MB);
    }

    #[test]
    fn upload_exploration_keeps_the_good_waypoint() {
        // Two candidate waypoints for an upload; one leg is badly
        // degraded. After the probe the client keeps only the best
        // subflow and the upload still completes faster than direct.
        use hpop_netsim::topology::TopologyBuilder;
        use hpop_netsim::units::Bandwidth;
        let mut b = TopologyBuilder::new();
        let client = b.add_node("client");
        let server = b.add_node("server");
        let good = b.add_node("good-wp");
        let bad = b.add_node("bad-wp");
        // Direct: asymmetric residential upload, slow.
        b.add_link_weighted(
            client,
            server,
            Bandwidth::mbps(20.0),
            Bandwidth::mbps(20.0),
            SimDuration::from_millis(60),
            0.0,
            1,
        );
        b.add_link(
            client,
            good,
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(10),
        );
        b.add_link(
            good,
            server,
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(10),
        );
        b.add_link(
            client,
            bad,
            Bandwidth::mbps(2.0),
            SimDuration::from_millis(150),
        );
        b.add_link(
            bad,
            server,
            Bandwidth::mbps(2.0),
            SimDuration::from_millis(150),
        );
        let mut sim = NetSim::with_topology(b.build());
        let out: Rc<RefCell<Option<MptcpStats>>> = Rc::new(RefCell::new(None));
        let o2 = out.clone();
        let handle = DcolSession::launch_upload(
            &mut sim,
            client,
            server,
            &[(MemberId(0), good), (MemberId(1), bad)],
            100 * MB,
            SessionConfig::default(),
            1,
            SimDuration::from_secs(1),
            move |_, s| *o2.borrow_mut() = Some(s),
        );
        sim.run();
        let s = out.borrow_mut().take().unwrap();
        assert_eq!(s.bytes, 100 * MB);
        // After probing, only one subflow remained open.
        assert_eq!(handle.open_subflows(), 1);
        // The good waypoint carried the overwhelming majority.
        assert!(s.share(1) > 0.9, "good-wp share {}", s.share(1));
        // Well faster than the 20 Mbps direct path could ever be
        // (100 MB at 20 Mbps = 40 s).
        assert!(s.duration().as_secs_f64() < 10.0, "{}", s.duration());
    }

    #[test]
    #[should_panic(expected = "at least one subflow")]
    fn upload_keep_zero_rejected() {
        let t = detour_triangle(&DetourParams::default());
        let mut sim = NetSim::with_topology(t.topology.clone());
        DcolSession::launch_upload(
            &mut sim,
            t.client,
            t.server,
            &[],
            MB,
            SessionConfig::default(),
            0,
            SimDuration::from_secs(1),
            |_, _| {},
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(1, SessionConfig::default(), 30 * MB);
        let b = run(1, SessionConfig::default(), 30 * MB);
        assert_eq!(a.completed_at, b.completed_at);
    }
}
