//! # hpop-dcol — the Detour Collective (paper §IV-C)
//!
//! "Our approach — termed the 'Detour Collective' (DCol) — calls for
//! users forming cooperatives in which members agree to serve as
//! waypoints to each other. We leverage multipath TCP (MPTCP) to make
//! detours transparent to applications … The waypoint then mimics an
//! MPTCP subflow to the server, making the server oblivious to the
//! overlay detour."
//!
//! - [`collective`] — cooperative membership: join, leave, and the
//!   expulsion of misbehaving waypoints.
//! - [`tunnel`] — the two client↔waypoint tunneling mechanisms the
//!   prototype explored: VPN (36 bytes/packet overhead, one-time join,
//!   `/26` private subnets from `10.0.0.0/8`) and NAT (zero overhead,
//!   per-destination signaling).
//! - [`explorer`] — "trial and error" detour selection: probe candidate
//!   waypoints, rank by predicted benefit, retain the good ones.
//! - [`session`] — an MPTCP transfer through chosen waypoints, with the
//!   client-side steering (withdraw / ACK-delay) wired up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collective;
pub mod explorer;
pub mod session;
pub mod tunnel;

pub use collective::{DetourCollective, MemberId};
pub use explorer::{rank_waypoints, DetourEstimate};
pub use session::DcolSession;
pub use tunnel::{SubnetAllocator, TunnelState, TunnelType};
