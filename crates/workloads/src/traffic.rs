//! Flow-level session traffic in the CCZ study's shape.
//!
//! §II cites the CCZ measurement study: "CCZ users only exceed a
//! download rate of 10 Mbps 0.1% of the time and a 0.5 Mbps upload rate
//! 1% of the time" — i.e. residential traffic is dominated by idleness
//! and small transfers, with rare large downloads. [`SessionTraffic`]
//! synthesizes that: per-home ON/OFF sessions with exponential think
//! times; each request picks a Zipf-popular object; a small fraction of
//! requests are large "bulk" transfers (software updates, videos).

use crate::zipf::WebUniverse;
use hpop_netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// Direction of a residential flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Internet → home.
    Down,
    /// Home → Internet.
    Up,
}

/// One generated flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowEvent {
    /// Flow start time.
    pub at: SimTime,
    /// Which home generates it.
    pub home: usize,
    /// Transfer direction.
    pub direction: Direction,
    /// Bytes transferred.
    pub bytes: u64,
    /// Universe rank of the requested object (`None` for bulk/upload
    /// flows that are not universe objects).
    pub object_rank: Option<usize>,
}

/// Generator parameters (defaults shaped to the CCZ findings).
#[derive(Clone, Copy, Debug)]
pub struct TrafficParams {
    /// Mean think time between a home's requests, seconds.
    pub mean_think_secs: f64,
    /// Fraction of downloads that are large bulk transfers.
    pub bulk_fraction: f64,
    /// Bulk transfer size bounds (bytes).
    pub bulk_bytes: (u64, u64),
    /// Fraction of flows that are uploads.
    pub upload_fraction: f64,
    /// Upload size bounds (bytes).
    pub upload_bytes: (u64, u64),
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            mean_think_secs: 45.0,
            bulk_fraction: 0.01,
            bulk_bytes: (20_000_000, 400_000_000),
            upload_fraction: 0.10,
            upload_bytes: (2_000, 2_000_000),
        }
    }
}

/// Per-home session traffic over a universe.
#[derive(Clone, Debug)]
pub struct SessionTraffic {
    params: TrafficParams,
}

impl SessionTraffic {
    /// A generator with the given parameters.
    pub fn new(params: TrafficParams) -> SessionTraffic {
        SessionTraffic { params }
    }

    /// Generates all flows for `homes` homes over `duration`, sorted by
    /// start time. Deterministic for a given `rng` state.
    pub fn generate(
        &self,
        homes: usize,
        duration: SimDuration,
        universe: &WebUniverse,
        rng: &mut StdRng,
    ) -> Vec<FlowEvent> {
        let mut events = Vec::new();
        let p = &self.params;
        for home in 0..homes {
            let mut t = SimTime::ZERO + exp_sample(p.mean_think_secs, rng);
            while t < SimTime::ZERO + duration {
                let roll: f64 = rng.gen();
                let ev = if roll < p.upload_fraction {
                    FlowEvent {
                        at: t,
                        home,
                        direction: Direction::Up,
                        bytes: rng.gen_range(p.upload_bytes.0..=p.upload_bytes.1),
                        object_rank: None,
                    }
                } else if roll < p.upload_fraction + p.bulk_fraction {
                    FlowEvent {
                        at: t,
                        home,
                        direction: Direction::Down,
                        bytes: rng.gen_range(p.bulk_bytes.0..=p.bulk_bytes.1),
                        object_rank: None,
                    }
                } else {
                    let rank = universe.sample_rank(rng);
                    FlowEvent {
                        at: t,
                        home,
                        direction: Direction::Down,
                        bytes: universe.object(rank).bytes,
                        object_rank: Some(rank),
                    }
                };
                events.push(ev);
                t += exp_sample(p.mean_think_secs, rng);
            }
        }
        events.sort_by_key(|e| (e.at, e.home));
        events
    }
}

/// An exponential inter-arrival sample with the given mean (seconds).
fn exp_sample(mean_secs: f64, rng: &mut StdRng) -> SimDuration {
    let u: f64 = rng.gen_range(1e-12..1.0);
    SimDuration::from_secs_f64(-mean_secs * u.ln())
}

impl FlowEvent {
    /// One CSV line: `at_ns,home,direction,bytes,object_rank`
    /// (`object_rank` empty for bulk/upload flows).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.at.as_nanos(),
            self.home,
            match self.direction {
                Direction::Down => "down",
                Direction::Up => "up",
            },
            self.bytes,
            self.object_rank.map(|r| r.to_string()).unwrap_or_default()
        )
    }

    /// Parses a line produced by [`FlowEvent::to_csv`].
    pub fn from_csv(line: &str) -> Option<FlowEvent> {
        let mut f = line.split(',');
        let at = SimTime::from_nanos(f.next()?.parse().ok()?);
        let home = f.next()?.parse().ok()?;
        let direction = match f.next()? {
            "down" => Direction::Down,
            "up" => Direction::Up,
            _ => return None,
        };
        let bytes = f.next()?.parse().ok()?;
        let rank_s = f.next()?;
        if f.next().is_some() {
            return None;
        }
        let object_rank = if rank_s.is_empty() {
            None
        } else {
            Some(rank_s.parse().ok()?)
        };
        Some(FlowEvent {
            at,
            home,
            direction,
            bytes,
            object_rank,
        })
    }
}

/// Serializes a generated trace to CSV (header + one line per flow), so
/// an experiment's exact workload can be archived alongside its results.
pub fn export_trace(flows: &[FlowEvent]) -> String {
    let mut out = String::from("at_ns,home,direction,bytes,object_rank\n");
    for f in flows {
        out.push_str(&f.to_csv());
        out.push('\n');
    }
    out
}

/// Parses a trace produced by [`export_trace`]; `None` on any malformed
/// line (a trace is all-or-nothing).
pub fn import_trace(csv: &str) -> Option<Vec<FlowEvent>> {
    let mut lines = csv.lines();
    if lines.next()? != "at_ns,home,direction,bytes,object_rank" {
        return None;
    }
    lines.map(FlowEvent::from_csv).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn universe(rng: &mut StdRng) -> WebUniverse {
        WebUniverse::generate(1000, 1.0, 100_000, rng)
    }

    #[test]
    fn generates_sorted_flows_for_all_homes() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = universe(&mut rng);
        let traffic = SessionTraffic::new(TrafficParams::default());
        let flows = traffic.generate(10, SimDuration::from_secs(3600), &u, &mut rng);
        assert!(!flows.is_empty());
        assert!(flows.windows(2).all(|w| w[0].at <= w[1].at));
        let homes: std::collections::BTreeSet<usize> = flows.iter().map(|f| f.home).collect();
        assert_eq!(homes.len(), 10);
    }

    #[test]
    fn mixes_match_parameters_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = universe(&mut rng);
        let traffic = SessionTraffic::new(TrafficParams::default());
        let flows = traffic.generate(50, SimDuration::from_secs(24 * 3600), &u, &mut rng);
        let n = flows.len() as f64;
        let ups = flows
            .iter()
            .filter(|f| f.direction == Direction::Up)
            .count() as f64;
        let bulk = flows
            .iter()
            .filter(|f| f.direction == Direction::Down && f.object_rank.is_none())
            .count() as f64;
        assert!((ups / n - 0.10).abs() < 0.02, "upload fraction {}", ups / n);
        assert!((bulk / n - 0.01).abs() < 0.01, "bulk fraction {}", bulk / n);
        // Mean think 45s over 24h ⇒ ~1900 flows/home.
        let per_home = n / 50.0;
        assert!(
            (1500.0..2400.0).contains(&per_home),
            "{per_home} flows/home"
        );
    }

    #[test]
    fn most_seconds_are_quiet_ccz_shape() {
        // The headline claim's shape: per-second download demand rarely
        // exceeds 10 Mbps (1.25 MB/s) even before network limits.
        let mut rng = StdRng::seed_from_u64(3);
        let u = universe(&mut rng);
        let traffic = SessionTraffic::new(TrafficParams::default());
        let horizon = 6 * 3600;
        let flows = traffic.generate(1, SimDuration::from_secs(horizon), &u, &mut rng);
        // Rough per-second demand: serve each flow at 100 Mbps (a
        // conservative stand-in for the gigabit link the netsim-based
        // experiment E1 uses) and count seconds above 10 Mbps.
        let mut per_sec = vec![0f64; horizon as usize];
        for f in flows.iter().filter(|f| f.direction == Direction::Down) {
            let start = (f.at.as_secs_f64() as usize).min(per_sec.len() - 1);
            let dur = (f.bytes as f64 / 12.5e6).ceil().max(1.0) as usize;
            for s in start..(start + dur).min(per_sec.len()) {
                per_sec[s] += f.bytes as f64 / dur as f64;
            }
        }
        let busy = per_sec.iter().filter(|&&b| b * 8.0 > 10e6).count() as f64;
        let frac = busy / horizon as f64;
        assert!(frac < 0.02, "fraction of 10Mbps-seconds = {frac}");
    }

    #[test]
    fn trace_export_roundtrips() {
        let mut rng = StdRng::seed_from_u64(5);
        let u = universe(&mut rng);
        let flows = SessionTraffic::new(TrafficParams::default()).generate(
            4,
            SimDuration::from_secs(1200),
            &u,
            &mut rng,
        );
        let csv = export_trace(&flows);
        assert!(csv.starts_with("at_ns,home,direction,bytes,object_rank\n"));
        let back = import_trace(&csv).expect("well-formed trace");
        assert_eq!(back, flows);
        // Malformed traces are rejected wholesale.
        assert!(import_trace("nonsense\n1,2,3").is_none());
        assert!(import_trace(&csv.replace("down", "sideways")).is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let u1 = universe(&mut r1);
        let f1 = SessionTraffic::new(TrafficParams::default()).generate(
            3,
            SimDuration::from_secs(1800),
            &u1,
            &mut r1,
        );
        let mut r2 = StdRng::seed_from_u64(7);
        let u2 = universe(&mut r2);
        let f2 = SessionTraffic::new(TrafficParams::default()).generate(
            3,
            SimDuration::from_secs(1800),
            &u2,
            &mut r2,
        );
        assert_eq!(f1, f2);
    }
}
