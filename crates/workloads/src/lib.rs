//! # hpop-workloads — workload generators for the HPoP experiments
//!
//! The paper's evaluation context is residential traffic: Zipf-popular
//! web objects, bursty per-home sessions (the CCZ measurement study's
//! headline: users exceed 10 Mbps down only 0.1% of seconds), and
//! diurnal demand curves. Real traces are proprietary, so these
//! generators synthesize the equivalents — deterministically from a
//! seed, as everything else in the workspace.
//!
//! - [`zipf`] — Zipf-ranked object universes with heavy-tailed sizes.
//! - [`traffic`] — flow-level session traffic (exponential think times,
//!   object picks from a universe) in the shape the CCZ study reports.
//! - [`diurnal`] — hour-of-day demand weighting.
//! - [`flashcrowd`] — flash-crowd modulation (sudden rate spike, a
//!   rising popularity head of brand-new objects, regional skew)
//!   composed over the diurnal and Zipf generators for E26.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diurnal;
pub mod flashcrowd;
pub mod traffic;
pub mod zipf;

pub use diurnal::DiurnalCurve;
pub use flashcrowd::{FlashCrowd, FlashCrowdParams};
pub use traffic::{FlowEvent, SessionTraffic, TrafficParams};
pub use zipf::{WebObject, WebUniverse, Zipf};
