//! Hour-of-day demand weighting.
//!
//! Residential demand has a strong diurnal rhythm — quiet nights, a
//! daytime plateau, an evening peak. The demand-smoothing experiment
//! (E14) needs both the curve itself and a way to sample request times
//! from it.

use hpop_netsim::time::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

/// A 24-hour demand profile (arbitrary non-negative weights).
#[derive(Clone, Debug, PartialEq)]
pub struct DiurnalCurve {
    weights: [f64; 24],
}

impl DiurnalCurve {
    /// A curve from explicit hourly weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or all are zero.
    pub fn new(weights: [f64; 24]) -> DiurnalCurve {
        assert!(
            weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be non-negative"
        );
        assert!(weights.iter().sum::<f64>() > 0.0, "all-zero curve");
        DiurnalCurve { weights }
    }

    /// The canonical residential curve: night trough, daytime plateau,
    /// 19:00–22:00 evening peak.
    pub fn residential() -> DiurnalCurve {
        let mut w = [0.0f64; 24];
        for (h, slot) in w.iter_mut().enumerate() {
            *slot = match h {
                0..=5 => 0.2,
                6..=8 => 0.7,
                9..=16 => 1.0,
                17..=18 => 1.5,
                19..=22 => 2.5,
                _ => 0.8,
            };
        }
        DiurnalCurve::new(w)
    }

    /// The weight for an hour (0–23).
    pub fn weight(&self, hour: usize) -> f64 {
        self.weights[hour % 24]
    }

    /// The relative demand at a simulated instant.
    pub fn weight_at(&self, t: SimTime) -> f64 {
        let hour = (t.as_nanos() / 1_000_000_000 / 3600) % 24;
        self.weights[hour as usize]
    }

    /// Peak-to-trough ratio of the curve.
    pub fn peak_to_trough(&self) -> f64 {
        let max = self.weights.iter().copied().fold(0.0, f64::max);
        let min = self
            .weights
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(1e-12);
        max / min
    }

    /// Samples an hour of day proportional to the weights.
    pub fn sample_hour(&self, rng: &mut StdRng) -> usize {
        let total: f64 = self.weights.iter().sum();
        let mut x: f64 = rng.gen_range(0.0..total);
        for (h, w) in self.weights.iter().enumerate() {
            if x < *w {
                return h;
            }
            x -= w;
        }
        23
    }

    /// Samples a request instant within day `day` (uniform within the
    /// sampled hour).
    pub fn sample_time(&self, day: u64, rng: &mut StdRng) -> SimTime {
        let hour = self.sample_hour(rng) as u64;
        let sec_in_hour = rng.gen_range(0..3600u64);
        SimTime::from_secs(day * 86_400 + hour * 3600 + sec_in_hour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn residential_shape() {
        let c = DiurnalCurve::residential();
        assert!(c.weight(20) > c.weight(12));
        assert!(c.weight(12) > c.weight(3));
        assert!((c.peak_to_trough() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn weight_at_maps_instants_to_hours() {
        let c = DiurnalCurve::residential();
        assert_eq!(c.weight_at(SimTime::from_secs(3 * 3600)), 0.2);
        assert_eq!(c.weight_at(SimTime::from_secs(20 * 3600)), 2.5);
        // Day two, 20:00.
        assert_eq!(c.weight_at(SimTime::from_secs(86_400 + 20 * 3600)), 2.5);
    }

    #[test]
    fn sampling_follows_weights() {
        let c = DiurnalCurve::residential();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 24];
        const N: u32 = 24_000;
        for _ in 0..N {
            counts[c.sample_hour(&mut rng)] += 1;
        }
        // Evening hour sampled ~12.5x as often as a night hour.
        let ratio = counts[20] as f64 / counts[3].max(1) as f64;
        assert!((8.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sample_time_lands_in_requested_day() {
        let c = DiurnalCurve::residential();
        let mut rng = StdRng::seed_from_u64(2);
        for day in 0..3u64 {
            let t = c.sample_time(day, &mut rng);
            assert!(t >= SimTime::from_secs(day * 86_400));
            assert!(t < SimTime::from_secs((day + 1) * 86_400));
        }
    }

    #[test]
    #[should_panic(expected = "all-zero curve")]
    fn zero_curve_rejected() {
        let _ = DiurnalCurve::new([0.0; 24]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let mut w = [1.0; 24];
        w[5] = -1.0;
        let _ = DiurnalCurve::new(w);
    }
}
