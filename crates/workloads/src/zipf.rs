//! Zipf-ranked object universes.
//!
//! Web popularity is famously Zipf-like; the cooperative-cache and
//! prefetch experiments depend on that concentration (a small top slice
//! of objects covers most requests). Sizes follow a log-normal-ish
//! heavy tail: most objects are small, a few are enormous.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n` (rank 0 most popular).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "universe must be non-empty");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the constructor rejects empty universes).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let x: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }

    /// The probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

/// One object in the universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WebObject {
    /// Stable path (`"/obj/000042"`).
    pub path: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Freshness lifetime in seconds.
    pub ttl_secs: u64,
}

/// A ranked universe of web objects with a popularity law.
#[derive(Clone, Debug)]
pub struct WebUniverse {
    objects: Vec<WebObject>,
    zipf: Zipf,
}

impl WebUniverse {
    /// Generates a universe of `n` objects with Zipf(`alpha`) popularity.
    /// Sizes are heavy-tailed around `median_bytes` (roughly log-normal,
    /// σ ≈ 1.5 in log-space); TTLs are uniform in 10 min..=24 h. Fully
    /// deterministic for a given `rng` state.
    pub fn generate(n: usize, alpha: f64, median_bytes: u64, rng: &mut StdRng) -> WebUniverse {
        let zipf = Zipf::new(n, alpha);
        let objects = (0..n)
            .map(|i| {
                // Box–Muller for a standard normal.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let bytes = (median_bytes as f64 * (1.5 * z).exp()).max(200.0) as u64;
                WebObject {
                    path: format!("/obj/{i:06}"),
                    bytes,
                    ttl_secs: rng.gen_range(600..=86_400),
                }
            })
            .collect();
        WebUniverse { objects, zipf }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Always false (generation requires `n > 0` via [`Zipf::new`]).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The object at a rank.
    pub fn object(&self, rank: usize) -> &WebObject {
        &self.objects[rank]
    }

    /// All objects in rank order.
    pub fn objects(&self) -> &[WebObject] {
        &self.objects
    }

    /// Samples an object by popularity.
    pub fn sample(&self, rng: &mut StdRng) -> &WebObject {
        &self.objects[self.zipf.sample(rng)]
    }

    /// Samples a rank by popularity.
    pub fn sample_rank(&self, rng: &mut StdRng) -> usize {
        self.zipf.sample(rng)
    }

    /// The popularity mass of the top `k` ranks.
    pub fn top_mass(&self, k: usize) -> f64 {
        (0..k.min(self.len())).map(|r| self.zipf.pmf(r)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_mass_concentrates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut top10 = 0u32;
        const N: u32 = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        let frac = top10 as f64 / N as f64;
        // Analytic: H(10)/H(1000) ≈ 2.93/7.49 ≈ 0.39.
        assert!((0.33..0.46).contains(&frac), "top-10 fraction {frac}");
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(100, 1.2);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let sa: Vec<usize> = (0..50).map(|_| z.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..50).map(|_| z.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn universe_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = WebUniverse::generate(500, 0.9, 50_000, &mut rng);
        assert_eq!(u.len(), 500);
        assert!(u.objects().iter().all(|o| o.bytes >= 200));
        assert!(u
            .objects()
            .iter()
            .all(|o| (600..=86_400).contains(&o.ttl_secs)));
        // Heavy tail: the max object dwarfs the median.
        let mut sizes: Vec<u64> = u.objects().iter().map(|o| o.bytes).collect();
        sizes.sort_unstable();
        let median = sizes[250];
        let max = sizes[499];
        assert!(max > 10 * median, "median {median} max {max}");
        // Top mass sums pmf correctly.
        assert!((u.top_mass(500) - 1.0).abs() < 1e-9);
        assert!(u.top_mass(10) > 0.2);
    }

    #[test]
    fn sample_returns_existing_objects() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = WebUniverse::generate(50, 1.0, 10_000, &mut rng);
        for _ in 0..100 {
            let o = u.sample(&mut rng);
            assert!(o.path.starts_with("/obj/"));
        }
        assert_eq!(u.object(0).path, "/obj/000000");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_universe_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
