//! Flash-crowd demand shaping.
//!
//! A flash crowd is not "more of the same traffic": the overall
//! request rate jumps ~10× in seconds, the popularity head *shifts*
//! (the crowd converges on a handful of objects nobody had cached
//! yesterday — a breaking-news page, a viral clip), and the onset is
//! regionally skewed (it starts where the event is local and spreads).
//! [`FlashCrowd`] models all three as a deterministic modulation
//! *composed with* the existing [`DiurnalCurve`] and Zipf universe, so
//! E26 can drive the same generators the steady-state experiments use
//! and flip only the crowd on and off.
//!
//! The burst envelope is trapezoidal: zero before `start`, a linear
//! ramp over `ramp`, a plateau of `hold` at full `magnitude`, then a
//! linear decay over `decay` back to baseline. The *rising head* is a
//! set of brand-new object ranks appended past the steady-state
//! universe — their novelty (no cache anywhere holds them at onset) is
//! exactly what makes flash crowds hard for a cooperative cache.

use crate::diurnal::DiurnalCurve;
use hpop_netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// Shape of one flash-crowd episode.
#[derive(Clone, Copy, Debug)]
pub struct FlashCrowdParams {
    /// Burst onset.
    pub start: SimTime,
    /// Linear ramp-up duration (seconds-scale: crowds arrive fast).
    pub ramp: SimDuration,
    /// Plateau duration at full magnitude.
    pub hold: SimDuration,
    /// Linear decay back to baseline.
    pub decay: SimDuration,
    /// Peak request-rate multiplier over baseline (the paper-scale
    /// stress case is 10×).
    pub magnitude: f64,
    /// How many brand-new rising-head objects the crowd converges on.
    pub head_size: usize,
    /// Fraction of burst-attributable requests aimed at the rising
    /// head at full intensity.
    pub head_mass: f64,
    /// Number of regions (neighborhoods / aggregation domains).
    pub regions: u32,
    /// Region where the crowd starts.
    pub epicenter: u32,
    /// Fraction of burst-attributable requests originating in the
    /// epicenter region at full intensity (the rest stay uniform).
    pub regional_bias: f64,
}

impl Default for FlashCrowdParams {
    fn default() -> FlashCrowdParams {
        FlashCrowdParams {
            start: SimTime::from_secs(30),
            ramp: SimDuration::from_secs(10),
            hold: SimDuration::from_secs(60),
            decay: SimDuration::from_secs(30),
            magnitude: 10.0,
            head_size: 8,
            head_mass: 0.7,
            regions: 16,
            epicenter: 0,
            regional_bias: 0.5,
        }
    }
}

/// A deterministic flash-crowd modulator over an existing workload.
#[derive(Clone, Debug)]
pub struct FlashCrowd {
    params: FlashCrowdParams,
    /// Rank of the first rising-head object: the steady-state universe
    /// occupies `0..base_ranks`, the crowd's new objects
    /// `base_ranks..base_ranks + head_size`.
    base_ranks: usize,
}

impl FlashCrowd {
    /// A crowd over a steady-state universe of `base_ranks` objects.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical shapes (magnitude < 1, empty head while
    /// `head_mass > 0`, no regions, epicenter out of range).
    pub fn new(params: FlashCrowdParams, base_ranks: usize) -> FlashCrowd {
        assert!(params.magnitude >= 1.0, "magnitude must amplify");
        assert!(params.regions > 0, "need at least one region");
        assert!(params.epicenter < params.regions, "epicenter out of range");
        assert!(
            params.head_size > 0 || params.head_mass == 0.0,
            "head_mass needs a non-empty head"
        );
        assert!(
            (0.0..=1.0).contains(&params.head_mass),
            "head_mass in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&params.regional_bias),
            "regional_bias in [0,1]"
        );
        FlashCrowd { params, base_ranks }
    }

    /// The shape parameters.
    pub fn params(&self) -> &FlashCrowdParams {
        &self.params
    }

    /// Burst intensity at `now` in `[0, 1]`: the trapezoid envelope
    /// (0 outside the episode, 1 on the plateau).
    pub fn intensity(&self, now: SimTime) -> f64 {
        let p = &self.params;
        if now < p.start {
            return 0.0;
        }
        let into = now.since(p.start);
        if into < p.ramp {
            return into.as_secs_f64() / p.ramp.as_secs_f64().max(1e-12);
        }
        let after_ramp = into - p.ramp;
        if after_ramp < p.hold {
            return 1.0;
        }
        let after_hold = after_ramp - p.hold;
        if after_hold < p.decay {
            return 1.0 - after_hold.as_secs_f64() / p.decay.as_secs_f64().max(1e-12);
        }
        0.0
    }

    /// The request-rate multiplier at `now`: 1 at baseline, up to
    /// `magnitude` on the plateau.
    pub fn rate_multiplier(&self, now: SimTime) -> f64 {
        1.0 + (self.params.magnitude - 1.0) * self.intensity(now)
    }

    /// The composed demand weight at `now`: diurnal rhythm × burst
    /// multiplier. This is the one number a request-arrival loop needs.
    pub fn demand_weight(&self, now: SimTime, diurnal: &DiurnalCurve) -> f64 {
        diurnal.weight_at(now) * self.rate_multiplier(now)
    }

    /// Whether `rank` is one of the crowd's rising-head objects.
    pub fn is_head_rank(&self, rank: usize) -> bool {
        rank >= self.base_ranks && rank < self.base_ranks + self.params.head_size
    }

    /// Total ranks including the rising head (size a cache/universe to
    /// this so head objects exist).
    pub fn total_ranks(&self) -> usize {
        self.base_ranks + self.params.head_size
    }

    /// Samples an object rank at `now`: with probability
    /// `head_mass × intensity` one of the rising-head ranks (uniform —
    /// the crowd converges on all of them), otherwise whatever the
    /// steady-state sampler picks via `base`.
    pub fn sample_rank(
        &self,
        now: SimTime,
        rng: &mut StdRng,
        base: impl FnOnce(&mut StdRng) -> usize,
    ) -> usize {
        let p_head = self.params.head_mass * self.intensity(now);
        if p_head > 0.0 && rng.gen::<f64>() < p_head {
            self.base_ranks + rng.gen_range(0..self.params.head_size)
        } else {
            base(rng)
        }
    }

    /// Samples the originating region at `now`: with probability
    /// `regional_bias × intensity` the epicenter, otherwise uniform
    /// over all regions.
    pub fn sample_region(&self, now: SimTime, rng: &mut StdRng) -> u32 {
        let p_epi = self.params.regional_bias * self.intensity(now);
        if p_epi > 0.0 && rng.gen::<f64>() < p_epi {
            self.params.epicenter
        } else {
            rng.gen_range(0..self.params.regions)
        }
    }

    /// When the episode is fully over (envelope back to zero).
    pub fn end(&self) -> SimTime {
        self.params.start + self.params.ramp + self.params.hold + self.params.decay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn crowd() -> FlashCrowd {
        FlashCrowd::new(FlashCrowdParams::default(), 1000)
    }

    #[test]
    fn envelope_is_trapezoidal() {
        let c = crowd();
        assert_eq!(c.intensity(SimTime::from_secs(0)), 0.0);
        assert_eq!(c.intensity(SimTime::from_secs(29)), 0.0);
        let mid_ramp = c.intensity(SimTime::from_secs(35));
        assert!((0.0..1.0).contains(&mid_ramp) && mid_ramp > 0.0);
        assert_eq!(c.intensity(SimTime::from_secs(60)), 1.0);
        assert_eq!(c.intensity(SimTime::from_secs(99)), 1.0);
        let mid_decay = c.intensity(SimTime::from_secs(115));
        assert!((0.0..1.0).contains(&mid_decay));
        assert_eq!(c.intensity(c.end()), 0.0);
        assert_eq!(c.intensity(SimTime::from_secs(1000)), 0.0);
    }

    #[test]
    fn rate_multiplier_peaks_at_magnitude() {
        let c = crowd();
        assert_eq!(c.rate_multiplier(SimTime::ZERO), 1.0);
        assert_eq!(c.rate_multiplier(SimTime::from_secs(70)), 10.0);
    }

    #[test]
    fn composes_with_diurnal_curve() {
        let c = crowd();
        let d = DiurnalCurve::residential();
        // Baseline (hour 0, weight 0.2): the burst multiplies it.
        let pre = c.demand_weight(SimTime::from_secs(0), &d);
        let peak = c.demand_weight(SimTime::from_secs(70), &d);
        assert!((pre - 0.2).abs() < 1e-9);
        assert!((peak - 2.0).abs() < 1e-9, "0.2 diurnal × 10 burst");
    }

    #[test]
    fn head_share_rises_during_burst() {
        let c = crowd();
        let mut rng = StdRng::seed_from_u64(7);
        let share = |c: &FlashCrowd, at: SimTime, rng: &mut StdRng| {
            let n = 4000;
            let head = (0..n)
                .filter(|_| {
                    let r = c.sample_rank(at, rng, |rng| rng.gen_range(0..1000));
                    c.is_head_rank(r)
                })
                .count();
            head as f64 / n as f64
        };
        let before = share(&c, SimTime::from_secs(0), &mut rng);
        let during = share(&c, SimTime::from_secs(70), &mut rng);
        assert_eq!(before, 0.0, "no head traffic before onset");
        assert!((0.6..0.8).contains(&during), "head share {during}");
        // Head ranks are all brand-new (past the base universe).
        assert_eq!(c.total_ranks(), 1008);
    }

    #[test]
    fn regional_skew_follows_envelope() {
        let c = crowd();
        let mut rng = StdRng::seed_from_u64(11);
        let epi_share = |at: SimTime, rng: &mut StdRng| {
            let n = 4000;
            let hits = (0..n)
                .filter(|_| c.sample_region(at, rng) == c.params().epicenter)
                .count();
            hits as f64 / n as f64
        };
        let before = epi_share(SimTime::from_secs(0), &mut rng);
        let during = epi_share(SimTime::from_secs(70), &mut rng);
        // 1/16 uniform before; 0.5 + 0.5/16 ≈ 0.53 at full skew.
        assert!((0.03..0.12).contains(&before), "before {before}");
        assert!((0.45..0.62).contains(&during), "during {during}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let c = crowd();
        let at = SimTime::from_secs(70);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let sa: Vec<usize> = (0..64)
            .map(|_| c.sample_rank(at, &mut a, |rng| rng.gen_range(0..1000)))
            .collect();
        let sb: Vec<usize> = (0..64)
            .map(|_| c.sample_rank(at, &mut b, |rng| rng.gen_range(0..1000)))
            .collect();
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "magnitude must amplify")]
    fn sub_unit_magnitude_rejected() {
        let _ = FlashCrowd::new(
            FlashCrowdParams {
                magnitude: 0.5,
                ..FlashCrowdParams::default()
            },
            10,
        );
    }
}
