//! NAT traversal procedures and the HPoP reachability planner.
//!
//! §III prescribes: UPnP for home-NAT-only deployments, STUN hole
//! punching behind carrier-grade NAT ("not all NAT devices have the
//! behavior required for hole-punching to work"), and TURN relaying
//! "with limited functionality" as the fallback. [`hole_punch`] runs the
//! actual STUN rendezvous against behavioral [`NatDevice`] chains, so
//! success and failure emerge from the devices' mapping/filtering rules.

use crate::behavior::NatProfile;
use crate::device::{Endpoint, NatDevice};

/// How an HPoP is reached from the outside.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Traversal {
    /// Public address; no NAT in the way.
    Direct,
    /// UPnP port mapping on the home NAT (§III's first choice).
    UpnpPortMap,
    /// STUN-style hole punching through CGN.
    StunHolePunch,
    /// TURN relay: always works, but costs an extra network leg and
    /// relay capacity ("limited functionality").
    TurnRelay,
}

/// The planner's decision for one home network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReachabilityPlan {
    /// Chosen traversal method.
    pub method: Traversal,
    /// Whether the HPoP gets full inbound functionality (TURN does not:
    /// all traffic transits the relay).
    pub full_functionality: bool,
}

/// Chooses a traversal method for an HPoP behind `chain` (innermost NAT
/// first; empty = publicly addressed). Follows the paper's §III order:
/// UPnP where every translator honors it, then STUN where every
/// translator's mapping allows punching, else TURN.
pub fn plan_reachability(chain: &[NatProfile]) -> ReachabilityPlan {
    if chain.is_empty() {
        return ReachabilityPlan {
            method: Traversal::Direct,
            full_functionality: true,
        };
    }
    if chain.iter().all(|p| p.supports_upnp) {
        return ReachabilityPlan {
            method: Traversal::UpnpPortMap,
            full_functionality: true,
        };
    }
    if chain.iter().all(|p| p.hole_punchable()) {
        return ReachabilityPlan {
            method: Traversal::StunHolePunch,
            full_functionality: true,
        };
    }
    ReachabilityPlan {
        method: Traversal::TurnRelay,
        full_functionality: false,
    }
}

/// The result of a hole-punch attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HolePunchOutcome {
    /// Both directions deliver after the given number of send rounds.
    Success {
        /// Rounds of simultaneous sends needed (1 = first packets passed,
        /// 2 = first packets opened the filters for the second round).
        rounds: u32,
    },
    /// The rendezvous cannot succeed with these NATs.
    Failure,
}

impl HolePunchOutcome {
    /// True on success.
    pub fn succeeded(&self) -> bool {
        matches!(self, HolePunchOutcome::Success { .. })
    }
}

/// One host behind a chain of NATs (innermost first).
struct NattedHost {
    internal: Endpoint,
    chain: Vec<NatDevice>,
}

impl NattedHost {
    fn new(internal: Endpoint, profiles: &[NatProfile], first_public_host: u64) -> NattedHost {
        let chain = profiles
            .iter()
            .enumerate()
            .map(|(i, &p)| NatDevice::new(p, first_public_host + i as u64))
            .collect();
        NattedHost { internal, chain }
    }

    /// Sends a packet to `dst`, installing bindings along the chain;
    /// returns the source endpoint the destination observes.
    fn send(&mut self, dst: Endpoint) -> Endpoint {
        let mut src = self.internal;
        for nat in &mut self.chain {
            src = nat.outbound(src, dst);
        }
        src
    }

    /// Delivers a packet from `src` addressed to `ext`; returns whether
    /// it reaches the internal host.
    fn receive(&self, src: Endpoint, ext: Endpoint) -> bool {
        // Outermost NAT first on the way in.
        let mut addr = ext;
        for nat in self.chain.iter().rev() {
            if nat.public_host() != addr.host {
                return false;
            }
            match nat.inbound(src, addr.port) {
                Some(inner) => addr = inner,
                None => return false,
            }
        }
        addr == self.internal
    }
}

/// Runs the STUN rendezvous between two NATed hosts:
///
/// 1. both contact the STUN server, learning their external mappings;
/// 2. mappings are exchanged out of band (the collective's signaling);
/// 3. both sides send to the learned endpoints simultaneously, up to two
///    rounds (round one may be eaten by the peer's filter but opens the
///    sender's own filter).
///
/// Returns how (or whether) connectivity was established.
pub fn hole_punch(a_profiles: &[NatProfile], b_profiles: &[NatProfile]) -> HolePunchOutcome {
    let stun = Endpoint::new(1, 3478);
    let mut a = NattedHost::new(Endpoint::new(100, 5000), a_profiles, 200);
    let mut b = NattedHost::new(Endpoint::new(101, 5000), b_profiles, 300);

    // Step 1: observed external mappings toward the STUN server.
    let a_ext = a.send(stun);
    let b_ext = b.send(stun);

    // Step 2-3: simultaneous sends to the exchanged endpoints. Like ICE
    // connectivity checks, each side re-targets the *observed* source of
    // any packet it receives — this is what lets a cone NAT talk to a
    // symmetric one whose real mapping differs from the advertised one.
    let mut a_target = b_ext;
    let mut b_target = a_ext;
    for round in 1..=3u32 {
        let a_src_toward_b = a.send(a_target);
        let b_src_toward_a = b.send(b_target);
        let a_to_b = b.receive(a_src_toward_b, a_target);
        let b_to_a = a.receive(b_src_toward_a, b_target);
        if a_to_b && b_to_a {
            return HolePunchOutcome::Success { rounds: round };
        }
        if a_to_b {
            b_target = a_src_toward_b;
        }
        if b_to_a {
            a_target = b_src_toward_a;
        }
    }
    HolePunchOutcome::Failure
}

/// Attempts UPnP mappings down a NAT chain for the given internal
/// endpoint; returns the externally reachable endpoint on success.
/// Fails if any device (e.g. a CGN) refuses UPnP.
pub fn upnp_establish(
    profiles: &[NatProfile],
    internal: Endpoint,
    ext_port: u16,
) -> Option<Endpoint> {
    let mut chain: Vec<NatDevice> = profiles
        .iter()
        .enumerate()
        .map(|(i, &p)| NatDevice::new(p, 500 + i as u64))
        .collect();
    let mut hop = internal;
    for nat in &mut chain {
        if !nat.upnp_map(ext_port, hop) {
            return None;
        }
        hop = Endpoint::new(nat.public_host(), ext_port);
    }
    // Verify an arbitrary outside host can actually get in.
    let outside = Endpoint::new(9999, 1);
    let mut addr = hop;
    for nat in chain.iter().rev() {
        addr = nat.inbound(outside, addr.port)?;
    }
    (addr == internal).then_some(hop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_prefers_direct_then_upnp_then_stun_then_turn() {
        assert_eq!(plan_reachability(&[]).method, Traversal::Direct);
        assert_eq!(
            plan_reachability(&[NatProfile::full_cone()]).method,
            Traversal::UpnpPortMap
        );
        assert_eq!(
            plan_reachability(&[NatProfile::full_cone(), NatProfile::carrier_grade()]).method,
            Traversal::StunHolePunch
        );
        let plan = plan_reachability(&[
            NatProfile::full_cone(),
            NatProfile::carrier_grade_symmetric(),
        ]);
        assert_eq!(plan.method, Traversal::TurnRelay);
        assert!(!plan.full_functionality);
    }

    #[test]
    fn cone_to_cone_punches() {
        for a in [
            NatProfile::full_cone(),
            NatProfile::restricted_cone(),
            NatProfile::port_restricted_cone(),
        ] {
            for b in [
                NatProfile::full_cone(),
                NatProfile::restricted_cone(),
                NatProfile::port_restricted_cone(),
            ] {
                let out = hole_punch(&[a], &[b]);
                assert!(out.succeeded(), "{a} <-> {b} failed: {out:?}");
            }
        }
    }

    #[test]
    fn symmetric_to_port_restricted_fails() {
        let out = hole_punch(
            &[NatProfile::symmetric()],
            &[NatProfile::port_restricted_cone()],
        );
        assert_eq!(out, HolePunchOutcome::Failure);
    }

    #[test]
    fn symmetric_to_full_cone_succeeds() {
        // The full-cone side accepts any source, so even the symmetric
        // side's unpredictable mapping gets through; replies then pass
        // the symmetric filter because the symmetric host sent first.
        let out = hole_punch(&[NatProfile::symmetric()], &[NatProfile::full_cone()]);
        assert!(out.succeeded(), "{out:?}");
    }

    #[test]
    fn symmetric_both_sides_fails() {
        assert_eq!(
            hole_punch(&[NatProfile::symmetric()], &[NatProfile::symmetric()]),
            HolePunchOutcome::Failure
        );
    }

    #[test]
    fn punching_through_double_nat_works_when_both_layers_ei() {
        let chain = [NatProfile::full_cone(), NatProfile::carrier_grade()];
        let out = hole_punch(&chain, &[NatProfile::port_restricted_cone()]);
        assert!(out.succeeded(), "{out:?}");
    }

    #[test]
    fn unnatted_host_reaches_anyone_punchable() {
        let out = hole_punch(&[], &[NatProfile::port_restricted_cone()]);
        assert!(out.succeeded());
    }

    #[test]
    fn upnp_succeeds_on_home_nat_only() {
        let inside = Endpoint::new(10, 8443);
        let ext = upnp_establish(&[NatProfile::port_restricted_cone()], inside, 8443);
        assert!(ext.is_some());
        assert_eq!(ext.unwrap().port, 8443);
    }

    #[test]
    fn upnp_fails_behind_cgn() {
        let inside = Endpoint::new(10, 8443);
        assert_eq!(
            upnp_establish(
                &[NatProfile::full_cone(), NatProfile::carrier_grade()],
                inside,
                8443
            ),
            None
        );
    }

    #[test]
    fn restricted_cones_need_two_rounds() {
        // Port-restricted on both sides: the first simultaneous packets
        // are filtered but open the pinholes; round two passes.
        let out = hole_punch(
            &[NatProfile::port_restricted_cone()],
            &[NatProfile::port_restricted_cone()],
        );
        match out {
            HolePunchOutcome::Success { rounds } => assert!(rounds <= 2),
            HolePunchOutcome::Failure => panic!("should punch"),
        }
    }
}
