//! # hpop-nat — NAT models and HPoP reachability
//!
//! §III: "a preliminary issue that we must address is HPoP reachability
//! in the presence of (potentially multiple levels of) address
//! translation". The paper's plan: UPnP port mapping where the home NAT
//! is the only translator; STUN hole punching through carrier-grade NAT
//! where the NAT behavior allows it; TURN relaying (with reduced
//! functionality) where it does not.
//!
//! - [`behavior`] — RFC 4787 mapping/filtering behaviors and the classic
//!   NAT-type presets (full cone … symmetric, CGN).
//! - [`device`] — a behavioral NAT device: bindings, filtering, port
//!   allocation; traversal outcomes *emerge* from packet simulation
//!   rather than a hard-coded matrix.
//! - [`traversal`] — UPnP/STUN/TURN procedures run against device
//!   chains, and the reachability planner the HPoP appliance uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod proptests;

pub mod behavior;
pub mod device;
pub mod traversal;

pub use behavior::{FilteringBehavior, MappingBehavior, NatProfile};
pub use device::{Endpoint, NatDevice};
pub use traversal::{plan_reachability, HolePunchOutcome, ReachabilityPlan, Traversal};
