//! A behavioral NAT device: bindings, filtering and port allocation.
//!
//! Traversal outcomes in [`crate::traversal`] are derived by actually
//! sending simulated packets through these devices, so the classic
//! "which NAT combinations can hole-punch" matrix is an emergent result,
//! not a lookup table.

use crate::behavior::{FilteringBehavior, MappingBehavior, NatProfile};
use std::collections::{BTreeMap, BTreeSet};

/// A transport endpoint: abstract host id + port.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Endpoint {
    /// Abstract host identifier (an "IP address").
    pub host: u64,
    /// Port number.
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(host: u64, port: u16) -> Endpoint {
        Endpoint { host, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// Key a mapping is stored under, per the device's mapping behavior.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct MapKey {
    internal: Endpoint,
    dst_host: Option<u64>,
    dst_port: Option<u16>,
}

#[derive(Clone, Debug)]
struct Binding {
    internal: Endpoint,
    /// Destinations this binding has sent to (feeds filtering decisions).
    contacted: BTreeSet<Endpoint>,
}

/// A NAT middlebox with a public address, translating between an inside
/// network and the outside.
#[derive(Clone, Debug)]
pub struct NatDevice {
    profile: NatProfile,
    public_host: u64,
    next_port: u16,
    /// mapping key → external port
    mappings: BTreeMap<MapKey, u16>,
    /// external port → binding state
    bindings: BTreeMap<u16, Binding>,
    /// explicit UPnP port forwards: external port → internal endpoint
    forwards: BTreeMap<u16, Endpoint>,
}

impl NatDevice {
    /// Creates a NAT with the given behavior profile and public address.
    pub fn new(profile: NatProfile, public_host: u64) -> NatDevice {
        NatDevice {
            profile,
            public_host,
            next_port: 40_000,
            mappings: BTreeMap::new(),
            bindings: BTreeMap::new(),
            forwards: BTreeMap::new(),
        }
    }

    /// The device's behavior profile.
    pub fn profile(&self) -> NatProfile {
        self.profile
    }

    /// The device's public host id.
    pub fn public_host(&self) -> u64 {
        self.public_host
    }

    fn map_key(&self, internal: Endpoint, dst: Endpoint) -> MapKey {
        match self.profile.mapping {
            MappingBehavior::EndpointIndependent => MapKey {
                internal,
                dst_host: None,
                dst_port: None,
            },
            MappingBehavior::AddressDependent => MapKey {
                internal,
                dst_host: Some(dst.host),
                dst_port: None,
            },
            MappingBehavior::AddressAndPortDependent => MapKey {
                internal,
                dst_host: Some(dst.host),
                dst_port: Some(dst.port),
            },
        }
    }

    /// Translates an outbound packet from `internal` toward `dst`;
    /// returns the external (public) source endpoint the outside world
    /// sees, creating or reusing a binding.
    pub fn outbound(&mut self, internal: Endpoint, dst: Endpoint) -> Endpoint {
        let key = self.map_key(internal, dst);
        let port = match self.mappings.get(&key) {
            Some(&p) => p,
            None => {
                let p = self.alloc_port();
                self.mappings.insert(key, p);
                self.bindings.insert(
                    p,
                    Binding {
                        internal,
                        contacted: BTreeSet::new(),
                    },
                );
                p
            }
        };
        self.bindings
            .get_mut(&port)
            .expect("binding created above")
            .contacted
            .insert(dst);
        Endpoint::new(self.public_host, port)
    }

    /// Processes an inbound packet from `src` addressed to external port
    /// `ext_port`; returns the internal endpoint it is delivered to, or
    /// `None` if the NAT filters it.
    pub fn inbound(&self, src: Endpoint, ext_port: u16) -> Option<Endpoint> {
        if let Some(&fwd) = self.forwards.get(&ext_port) {
            return Some(fwd); // UPnP forwards bypass filtering
        }
        let b = self.bindings.get(&ext_port)?;
        let allowed = match self.profile.filtering {
            FilteringBehavior::EndpointIndependent => true,
            FilteringBehavior::AddressDependent => b.contacted.iter().any(|e| e.host == src.host),
            FilteringBehavior::AddressAndPortDependent => b.contacted.contains(&src),
        };
        allowed.then_some(b.internal)
    }

    /// Requests a UPnP port mapping: external `ext_port` → `internal`.
    /// Returns `false` (and does nothing) if the device does not support
    /// UPnP or the port is taken.
    pub fn upnp_map(&mut self, ext_port: u16, internal: Endpoint) -> bool {
        if !self.profile.supports_upnp
            || self.forwards.contains_key(&ext_port)
            || self.bindings.contains_key(&ext_port)
        {
            return false;
        }
        self.forwards.insert(ext_port, internal);
        true
    }

    /// Removes a UPnP mapping; returns whether one existed.
    pub fn upnp_unmap(&mut self, ext_port: u16) -> bool {
        self.forwards.remove(&ext_port).is_some()
    }

    /// Number of live dynamic bindings.
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    fn alloc_port(&mut self) -> u16 {
        loop {
            let p = self.next_port;
            self.next_port = self.next_port.checked_add(1).unwrap_or(40_000);
            if !self.bindings.contains_key(&p) && !self.forwards.contains_key(&p) {
                return p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVER_A: Endpoint = Endpoint {
        host: 900,
        port: 80,
    };
    const SERVER_B: Endpoint = Endpoint {
        host: 901,
        port: 80,
    };
    const INSIDE: Endpoint = Endpoint {
        host: 10,
        port: 5000,
    };

    #[test]
    fn ei_mapping_reuses_port_across_destinations() {
        let mut nat = NatDevice::new(NatProfile::full_cone(), 77);
        let e1 = nat.outbound(INSIDE, SERVER_A);
        let e2 = nat.outbound(INSIDE, SERVER_B);
        assert_eq!(e1, e2);
        assert_eq!(e1.host, 77);
        assert_eq!(nat.binding_count(), 1);
    }

    #[test]
    fn symmetric_mapping_differs_per_destination() {
        let mut nat = NatDevice::new(NatProfile::symmetric(), 77);
        let e1 = nat.outbound(INSIDE, SERVER_A);
        let e2 = nat.outbound(INSIDE, SERVER_B);
        assert_ne!(e1.port, e2.port);
        assert_eq!(nat.binding_count(), 2);
        // Same destination reuses the same mapping.
        assert_eq!(nat.outbound(INSIDE, SERVER_A), e1);
    }

    #[test]
    fn full_cone_accepts_anyone() {
        let mut nat = NatDevice::new(NatProfile::full_cone(), 77);
        let ext = nat.outbound(INSIDE, SERVER_A);
        let stranger = Endpoint::new(555, 1234);
        assert_eq!(nat.inbound(stranger, ext.port), Some(INSIDE));
    }

    #[test]
    fn restricted_cone_requires_contacted_host() {
        let mut nat = NatDevice::new(NatProfile::restricted_cone(), 77);
        let ext = nat.outbound(INSIDE, SERVER_A);
        // Same host, different port: allowed.
        assert_eq!(
            nat.inbound(Endpoint::new(SERVER_A.host, 9999), ext.port),
            Some(INSIDE)
        );
        // Different host: filtered.
        assert_eq!(nat.inbound(SERVER_B, ext.port), None);
    }

    #[test]
    fn port_restricted_requires_exact_endpoint() {
        let mut nat = NatDevice::new(NatProfile::port_restricted_cone(), 77);
        let ext = nat.outbound(INSIDE, SERVER_A);
        assert_eq!(nat.inbound(SERVER_A, ext.port), Some(INSIDE));
        assert_eq!(
            nat.inbound(Endpoint::new(SERVER_A.host, 9999), ext.port),
            None
        );
    }

    #[test]
    fn unknown_port_is_dropped() {
        let nat = NatDevice::new(NatProfile::full_cone(), 77);
        assert_eq!(nat.inbound(SERVER_A, 40_000), None);
    }

    #[test]
    fn upnp_forward_bypasses_filtering() {
        let mut nat = NatDevice::new(NatProfile::port_restricted_cone(), 77);
        assert!(nat.upnp_map(8443, INSIDE));
        let stranger = Endpoint::new(12345, 999);
        assert_eq!(nat.inbound(stranger, 8443), Some(INSIDE));
        assert!(nat.upnp_unmap(8443));
        assert_eq!(nat.inbound(stranger, 8443), None);
    }

    #[test]
    fn upnp_refused_by_cgn_and_on_conflicts() {
        let mut cgn = NatDevice::new(NatProfile::carrier_grade(), 88);
        assert!(!cgn.upnp_map(8443, INSIDE));
        let mut nat = NatDevice::new(NatProfile::full_cone(), 77);
        assert!(nat.upnp_map(8443, INSIDE));
        assert!(!nat.upnp_map(8443, Endpoint::new(11, 1))); // taken
    }

    #[test]
    fn distinct_internal_endpoints_get_distinct_ports() {
        let mut nat = NatDevice::new(NatProfile::full_cone(), 77);
        let a = nat.outbound(Endpoint::new(10, 1000), SERVER_A);
        let b = nat.outbound(Endpoint::new(11, 1000), SERVER_A);
        assert_ne!(a.port, b.port);
    }
}
