//! NAT mapping and filtering behaviors (RFC 4787 terminology) and the
//! classic NAT-type presets they combine into.

use std::fmt;

/// How a NAT allocates external ports for internal endpoints.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MappingBehavior {
    /// One external port per internal endpoint regardless of destination
    /// — the behavior STUN hole punching requires.
    EndpointIndependent,
    /// A new mapping per destination address.
    AddressDependent,
    /// A new mapping per destination address *and* port ("symmetric").
    AddressAndPortDependent,
}

/// Which inbound packets a NAT lets through an existing mapping.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FilteringBehavior {
    /// Anyone may send to the mapped port ("full cone").
    EndpointIndependent,
    /// Only hosts the internal endpoint has contacted.
    AddressDependent,
    /// Only exact (host, port) pairs the internal endpoint has contacted.
    AddressAndPortDependent,
}

/// A NAT device's observable personality.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NatProfile {
    /// Port-mapping behavior.
    pub mapping: MappingBehavior,
    /// Inbound-filtering behavior.
    pub filtering: FilteringBehavior,
    /// Whether the device honors UPnP port-mapping requests (home
    /// routers commonly do; carrier-grade NATs never do).
    pub supports_upnp: bool,
    /// Whether this is an ISP-operated carrier-grade NAT.
    pub carrier_grade: bool,
}

impl NatProfile {
    /// Classic "full cone": EI mapping and filtering, UPnP available.
    pub fn full_cone() -> NatProfile {
        NatProfile {
            mapping: MappingBehavior::EndpointIndependent,
            filtering: FilteringBehavior::EndpointIndependent,
            supports_upnp: true,
            carrier_grade: false,
        }
    }

    /// "(Address-)restricted cone": EI mapping, address-dependent filter.
    pub fn restricted_cone() -> NatProfile {
        NatProfile {
            mapping: MappingBehavior::EndpointIndependent,
            filtering: FilteringBehavior::AddressDependent,
            supports_upnp: true,
            carrier_grade: false,
        }
    }

    /// "Port-restricted cone": EI mapping, address+port-dependent filter.
    pub fn port_restricted_cone() -> NatProfile {
        NatProfile {
            mapping: MappingBehavior::EndpointIndependent,
            filtering: FilteringBehavior::AddressAndPortDependent,
            supports_upnp: true,
            carrier_grade: false,
        }
    }

    /// "Symmetric": address+port-dependent mapping and filtering — the
    /// NAT type that defeats hole punching.
    pub fn symmetric() -> NatProfile {
        NatProfile {
            mapping: MappingBehavior::AddressAndPortDependent,
            filtering: FilteringBehavior::AddressAndPortDependent,
            supports_upnp: true,
            carrier_grade: false,
        }
    }

    /// A typical carrier-grade NAT: endpoint-independent mapping (per
    /// RFC 6888 REQ-1) but no UPnP control for subscribers.
    pub fn carrier_grade() -> NatProfile {
        NatProfile {
            mapping: MappingBehavior::EndpointIndependent,
            filtering: FilteringBehavior::AddressAndPortDependent,
            supports_upnp: false,
            carrier_grade: true,
        }
    }

    /// A hostile CGN with symmetric mapping (observed in the wild despite
    /// RFC 6888) — forces TURN.
    pub fn carrier_grade_symmetric() -> NatProfile {
        NatProfile {
            mapping: MappingBehavior::AddressAndPortDependent,
            filtering: FilteringBehavior::AddressAndPortDependent,
            supports_upnp: false,
            carrier_grade: true,
        }
    }

    /// Whether STUN-style hole punching can work through this device
    /// (requires endpoint-independent mapping so the externally observed
    /// port is reusable toward a different peer).
    pub fn hole_punchable(&self) -> bool {
        self.mapping == MappingBehavior::EndpointIndependent
    }
}

impl fmt::Display for NatProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match (self.mapping, self.filtering) {
            (MappingBehavior::EndpointIndependent, FilteringBehavior::EndpointIndependent) => {
                "full-cone"
            }
            (MappingBehavior::EndpointIndependent, FilteringBehavior::AddressDependent) => {
                "restricted-cone"
            }
            (MappingBehavior::EndpointIndependent, FilteringBehavior::AddressAndPortDependent) => {
                "port-restricted-cone"
            }
            _ => "symmetric",
        };
        if self.carrier_grade {
            write!(f, "cgn-{kind}")
        } else {
            write!(f, "{kind}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_punchability() {
        assert!(NatProfile::full_cone().hole_punchable());
        assert!(NatProfile::restricted_cone().hole_punchable());
        assert!(NatProfile::port_restricted_cone().hole_punchable());
        assert!(!NatProfile::symmetric().hole_punchable());
        assert!(NatProfile::carrier_grade().hole_punchable());
        assert!(!NatProfile::carrier_grade_symmetric().hole_punchable());
    }

    #[test]
    fn cgn_refuses_upnp() {
        assert!(!NatProfile::carrier_grade().supports_upnp);
        assert!(NatProfile::full_cone().supports_upnp);
    }

    #[test]
    fn display_names() {
        assert_eq!(NatProfile::full_cone().to_string(), "full-cone");
        assert_eq!(NatProfile::symmetric().to_string(), "symmetric");
        assert_eq!(
            NatProfile::carrier_grade().to_string(),
            "cgn-port-restricted-cone"
        );
    }
}
