//! Property-based tests of the NAT traversal machinery.

use crate::behavior::{FilteringBehavior, MappingBehavior, NatProfile};
use crate::device::{Endpoint, NatDevice};
use crate::traversal::{hole_punch, plan_reachability, Traversal};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = NatProfile> {
    let mapping = prop_oneof![
        Just(MappingBehavior::EndpointIndependent),
        Just(MappingBehavior::AddressDependent),
        Just(MappingBehavior::AddressAndPortDependent),
    ];
    let filtering = prop_oneof![
        Just(FilteringBehavior::EndpointIndependent),
        Just(FilteringBehavior::AddressDependent),
        Just(FilteringBehavior::AddressAndPortDependent),
    ];
    (mapping, filtering, any::<bool>(), any::<bool>()).prop_map(
        |(mapping, filtering, supports_upnp, carrier_grade)| NatProfile {
            mapping,
            filtering,
            supports_upnp: supports_upnp && !carrier_grade,
            carrier_grade,
        },
    )
}

proptest! {
    /// Hole punching is symmetric in its arguments: if A can rendezvous
    /// with B, B can rendezvous with A.
    #[test]
    fn hole_punch_is_symmetric(a in profile_strategy(), b in profile_strategy()) {
        prop_assert_eq!(
            hole_punch(&[a], &[b]).succeeded(),
            hole_punch(&[b], &[a]).succeeded()
        );
    }

    /// Both sides endpoint-independent in mapping ⇒ punching always
    /// succeeds (the classic sufficiency condition).
    #[test]
    fn ei_mapping_is_sufficient(
        a in profile_strategy().prop_map(|mut p| {
            p.mapping = MappingBehavior::EndpointIndependent;
            p
        }),
        b in profile_strategy().prop_map(|mut p| {
            p.mapping = MappingBehavior::EndpointIndependent;
            p
        }),
    ) {
        prop_assert!(hole_punch(&[a], &[b]).succeeded());
    }

    /// The planner never strands an HPoP: every chain yields a method,
    /// and only TURN is allowed to limit functionality.
    #[test]
    fn planner_is_total(chain in proptest::collection::vec(profile_strategy(), 0..4)) {
        let plan = plan_reachability(&chain);
        if plan.method != Traversal::TurnRelay {
            prop_assert!(plan.full_functionality);
        }
        if chain.is_empty() {
            prop_assert_eq!(plan.method, Traversal::Direct);
        }
    }

    /// A NAT device's translations are internally consistent: an
    /// outbound packet always yields a mapping on the device's public
    /// host, and the contacted destination can immediately reply
    /// through it.
    #[test]
    fn outbound_then_reply_works(
        profile in profile_strategy(),
        int_port in 1024u16..60_000,
        dst_host in 1u64..1_000,
        dst_port in 1u16..60_000,
    ) {
        let mut nat = NatDevice::new(profile, 42);
        let inside = Endpoint::new(7, int_port);
        let dst = Endpoint::new(dst_host, dst_port);
        let ext = nat.outbound(inside, dst);
        prop_assert_eq!(ext.host, 42);
        // The exact destination just contacted may always reply.
        prop_assert_eq!(nat.inbound(dst, ext.port), Some(inside));
    }
}
