//! Closed-form availability/durability math for peer backup schemes.
//!
//! §IV-A weighs "replicating the entire HPoP to attics belonging to
//! friends and relatives" against "redundantly encoding the contents …
//! and storing pieces with a variety of peers". With independent peer
//! failure probability `p`:
//!
//! - full replication across `r` peers survives unless *all* replicas
//!   fail: `A = 1 - p^r`, at storage overhead `r`;
//! - `RS(n, k)` survives when at least `k` of `n` shards survive:
//!   `A = Σ_{j=k..n} C(n,j) (1-p)^j p^(n-j)`, at overhead `n/k`.
//!
//! Experiment E11 sweeps these against each other.

/// Binomial coefficient as f64 (exact for the small n used here).
fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Availability of `r`-way full replication with independent peer
/// failure probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `r` is zero.
pub fn replication_availability(r: u32, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    assert!(r > 0, "need at least one replica");
    1.0 - p.powi(r as i32)
}

/// Availability of an `RS(n = k + m, k)` code with independent shard
/// (peer) failure probability `p`: the probability that at least `k`
/// shards survive.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `k == 0` or `k > n`.
pub fn erasure_availability(n: u32, k: u32, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    assert!(k > 0 && k <= n, "need 0 < k <= n");
    let q = 1.0 - p;
    let mut a = 0.0;
    for j in k..=n {
        a += binomial(n as u64, j as u64) * q.powi(j as i32) * p.powi((n - j) as i32);
    }
    a.clamp(0.0, 1.0)
}

/// Churn-aware availability: the probability that at least `k` of the
/// holders are up, where holder `i` is up independently with its own
/// probability `uptimes[i]` (the fabric's observed per-peer uptime
/// fraction). This is the Poisson-binomial survival function — the
/// heterogeneous generalization of [`erasure_availability`]: when every
/// uptime equals `u`, it degenerates to `erasure_availability(n, k, 1-u)`.
///
/// Computed by the standard O(n·k) dynamic program over the number of
/// up holders, so it is exact (no sampling) for any mix of uptimes.
///
/// # Panics
///
/// Panics if any uptime is outside `[0, 1]`, or `k == 0`, or
/// `k > uptimes.len()`.
pub fn heterogeneous_availability(uptimes: &[f64], k: usize) -> f64 {
    let n = uptimes.len();
    assert!(k > 0 && k <= n, "need 0 < k <= n (k={k}, n={n})");
    for &u in uptimes {
        assert!((0.0..=1.0).contains(&u), "uptime out of range: {u}");
    }
    // dist[j] = P(exactly j of the holders seen so far are up).
    let mut dist = vec![0.0f64; n + 1];
    dist[0] = 1.0;
    for (i, &u) in uptimes.iter().enumerate() {
        for j in (0..=i + 1).rev() {
            let stay = if j <= i { dist[j] * (1.0 - u) } else { 0.0 };
            let rise = if j > 0 { dist[j - 1] * u } else { 0.0 };
            dist[j] = stay + rise;
        }
    }
    dist[k..].iter().sum::<f64>().clamp(0.0, 1.0)
}

/// "Nines" of availability: `-log10(1 - a)`, capped at 15 for a = 1.
pub fn nines(a: f64) -> f64 {
    if a >= 1.0 {
        15.0
    } else {
        (-(1.0 - a).log10()).clamp(0.0, 15.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 3), 120.0);
        assert_eq!(binomial(3, 4), 0.0);
    }

    #[test]
    fn replication_math() {
        assert!((replication_availability(1, 0.1) - 0.9).abs() < 1e-12);
        assert!((replication_availability(3, 0.1) - 0.999).abs() < 1e-12);
        assert_eq!(replication_availability(2, 0.0), 1.0);
        assert_eq!(replication_availability(2, 1.0), 0.0);
    }

    #[test]
    fn erasure_reduces_to_replication_when_k_is_1() {
        // RS(n,1) is n-way replication.
        for p in [0.0, 0.05, 0.3, 0.9] {
            let a = erasure_availability(4, 1, p);
            let b = replication_availability(4, p);
            assert!((a - b).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn erasure_no_redundancy_needs_all_shards() {
        // RS(k,k): all shards must survive.
        let a = erasure_availability(4, 4, 0.1);
        assert!((a - 0.9f64.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn rs_6_4_beats_2x_replication_overhead_for_same_target() {
        // At p = 0.05: RS(6,4) has overhead 1.5 and availability
        // comparable to 2x replication (overhead 2.0) — the paper's
        // efficiency argument for erasure codes.
        let rs = erasure_availability(6, 4, 0.05);
        let rep2 = replication_availability(2, 0.05);
        assert!(rs > rep2, "rs={rs} rep2={rep2}");
    }

    #[test]
    fn monotonic_in_parity() {
        let mut last = 0.0;
        for m in 1..6 {
            let a = erasure_availability(4 + m, 4, 0.2);
            assert!(a > last);
            last = a;
        }
    }

    #[test]
    fn monotonic_in_failure_probability() {
        let mut last = 1.1;
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            let a = erasure_availability(6, 4, p);
            assert!(a < last + 1e-12);
            last = a;
        }
    }

    #[test]
    fn nines_scale() {
        assert!((nines(0.999) - 3.0).abs() < 1e-9);
        assert_eq!(nines(1.0), 15.0);
        assert_eq!(nines(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_panics() {
        let _ = erasure_availability(4, 2, 1.5);
    }

    #[test]
    fn heterogeneous_degenerates_to_homogeneous_when_uptimes_equal() {
        for (n, k) in [(6usize, 4usize), (3, 1), (5, 5), (8, 2)] {
            for u in [0.0, 0.25, 0.83, 1.0] {
                let het = heterogeneous_availability(&vec![u; n], k);
                let hom = erasure_availability(n as u32, k as u32, 1.0 - u);
                assert!(
                    (het - hom).abs() < 1e-12,
                    "n={n} k={k} u={u}: het={het} hom={hom}"
                );
            }
        }
    }

    #[test]
    fn heterogeneous_replication_is_one_minus_product_of_downtimes() {
        // k = 1: unavailable only when every holder is down.
        let ups = [0.9, 0.6, 0.5];
        let a = heterogeneous_availability(&ups, 1);
        let expect = 1.0 - 0.1 * 0.4 * 0.5;
        assert!((a - expect).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_all_needed_is_product_of_uptimes() {
        // k = n: every holder must be up.
        let ups = [0.9, 0.6, 0.5];
        let a = heterogeneous_availability(&ups, 3);
        assert!((a - 0.9 * 0.6 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn one_flaky_holder_drags_availability_down() {
        // Same mean uptime, but concentrating the flakiness in one
        // holder changes k=n availability (product vs power).
        let even = heterogeneous_availability(&[0.8, 0.8], 2);
        let skew = heterogeneous_availability(&[1.0, 0.6], 2);
        assert!((even - 0.64).abs() < 1e-12);
        assert!((skew - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "uptime out of range")]
    fn bad_uptime_panics() {
        let _ = heterogeneous_availability(&[0.5, 1.2], 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Erasure availability is a probability and never below the
            /// all-shards-required floor nor above the any-shard ceiling.
            #[test]
            fn availability_bounds(n in 1u32..20, k_off in 0u32..19, p in 0.0f64..1.0) {
                let k = 1 + k_off % n;
                let a = erasure_availability(n, k, p);
                prop_assert!((0.0..=1.0).contains(&a));
                let floor = (1.0 - p).powi(n as i32);
                prop_assert!(a >= floor - 1e-12);
            }
        }
    }
}
