//! Small dense matrices over GF(2^8), sufficient for Reed–Solomon
//! encode/decode matrix construction and inversion.

use crate::gf256;
use std::fmt;

/// A row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({}x{})", self.rows, self.cols)?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:02x} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The n×n identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// A Vandermonde matrix: element (r, c) = r^c. Any square submatrix
    /// formed from distinct rows is invertible — the property RS relies
    /// on for reconstruction from any k shards.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf256::pow(r as u8, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// A view of one row.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matrix multiply");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..rhs.cols {
                let mut acc = 0u8;
                for k in 0..self.cols {
                    acc = gf256::add(acc, gf256::mul(self.get(r, k), rhs.get(k, c)));
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// A new matrix from a subset of this one's rows.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            for c in 0..self.cols {
                out.set(i, c, self.get(r, c));
            }
        }
        out
    }

    /// Inverse by Gauss–Jordan elimination; `None` if singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a.get(col, col);
            let pinv = gf256::inv(p);
            for c in 0..n {
                a.set(col, c, gf256::mul(a.get(col, c), pinv));
                inv.set(col, c, gf256::mul(inv.get(col, c), pinv));
            }
            // Eliminate the column elsewhere.
            for r in 0..n {
                if r != col && a.get(r, col) != 0 {
                    let f = a.get(r, col);
                    for c in 0..n {
                        let av = gf256::add(a.get(r, c), gf256::mul(f, a.get(col, c)));
                        a.set(r, c, av);
                        let iv = gf256::add(inv.get(r, c), gf256::mul(f, inv.get(col, c)));
                        inv.set(r, c, iv);
                    }
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let t = self.get(a, c);
            self.set(a, c, self.get(b, c));
            self.set(b, c, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything() {
        let v = Matrix::vandermonde(3, 3);
        let i = Matrix::identity(3);
        assert_eq!(i.mul(&v), v);
        assert_eq!(v.mul(&i), v);
    }

    #[test]
    fn vandermonde_values() {
        let v = Matrix::vandermonde(3, 3);
        assert_eq!(v.row(0), &[1, 0, 0]); // 0^0=1, 0^1=0, 0^2=0
        assert_eq!(v.row(1), &[1, 1, 1]);
        assert_eq!(v.row(2), &[1, 2, 4]);
    }

    #[test]
    fn inverse_roundtrip() {
        // Vandermonde rows 1..n are distinct and nonzero → invertible.
        let v = Matrix::vandermonde(5, 4).select_rows(&[1, 2, 3, 4]);
        let inv = v.inverse().expect("invertible");
        let prod = v.mul(&inv);
        assert_eq!(prod, Matrix::identity(4));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let mut m = Matrix::zero(2, 2);
        m.set(0, 0, 3);
        m.set(0, 1, 5);
        m.set(1, 0, 3);
        m.set(1, 1, 5);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn select_rows_picks() {
        let v = Matrix::vandermonde(4, 2);
        let s = v.select_rows(&[3, 1]);
        assert_eq!(s.row(0), v.row(3));
        assert_eq!(s.row(1), v.row(1));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mul_shape_checked() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_rejected() {
        let _ = Matrix::zero(0, 3);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any set of distinct Vandermonde rows is invertible — the
            /// exact property Reed–Solomon reconstruction depends on.
            #[test]
            fn distinct_vandermonde_rows_invert(rows in proptest::collection::btree_set(0usize..20, 3)) {
                let rows: Vec<usize> = rows.iter().copied().collect();
                let v = Matrix::vandermonde(20, 3).select_rows(&rows);
                let inv = v.inverse().expect("distinct Vandermonde rows must invert");
                prop_assert_eq!(v.mul(&inv), Matrix::identity(3));
            }
        }
    }
}
