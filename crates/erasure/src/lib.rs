//! # hpop-erasure — Reed–Solomon erasure coding for attic peer backup
//!
//! §IV-A ("Data Availability") proposes "redundantly encoding the
//! contents — e.g., using erasure codes — and storing pieces with a
//! variety of peers". This crate provides that substrate:
//!
//! - [`gf256`] — arithmetic in GF(2^8) with the AES/RS polynomial 0x11d.
//! - [`matrix`] — small dense matrices over GF(2^8) with inversion.
//! - [`rs`] — a systematic Reed–Solomon erasure code: `k` data shards,
//!   `m` parity shards, any `k` of the `n = k + m` reconstruct the data.
//! - [`availability`] — closed-form durability math used by experiment
//!   E11 (availability vs peer-failure probability, replication vs RS).
//!
//! ```
//! use hpop_erasure::rs::ReedSolomon;
//!
//! # fn main() -> Result<(), hpop_erasure::rs::RsError> {
//! let code = ReedSolomon::new(4, 2)?;                 // RS(6,4)
//! let mut shards = code.encode_blob(b"family photos 2026")?;
//! shards[0] = None;                                   // two peers offline
//! shards[5] = None;
//! let recovered = code.reconstruct_blob(shards, 18)?;
//! assert_eq!(recovered, b"family photos 2026");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod gf256;
pub mod matrix;
pub mod rs;

pub use availability::{
    erasure_availability, heterogeneous_availability, replication_availability,
};
pub use rs::{ReedSolomon, RsError};
