//! Systematic Reed–Solomon erasure coding.
//!
//! `RS(n = k + m, k)`: a blob is split into `k` data shards; `m` parity
//! shards are computed; **any** `k` surviving shards reconstruct the
//! original. The attic backup service stores one shard per peer, so the
//! data survives the loss of any `m` peers (§IV-A).
//!
//! The encoding matrix is a Vandermonde matrix normalized so its top
//! `k×k` block is the identity (systematic: data shards are stored
//! verbatim). Any `k` rows of the normalized matrix remain invertible,
//! which is what reconstruction relies on.

use crate::gf256;
use crate::matrix::Matrix;
use std::fmt;

/// Errors from Reed–Solomon configuration, encoding or reconstruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RsError {
    /// Shard counts out of range (need `k ≥ 1`, `m ≥ 1`, `k + m ≤ 256`).
    BadShardCounts {
        /// Requested data shards.
        data: usize,
        /// Requested parity shards.
        parity: usize,
    },
    /// The shards passed in differ in length or count.
    ShapeMismatch,
    /// Fewer than `k` shards are present; the data is unrecoverable.
    TooFewShards {
        /// Shards present.
        have: usize,
        /// Shards required.
        need: usize,
    },
    /// Requested blob length exceeds what the shards contain.
    BadBlobLength,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::BadShardCounts { data, parity } => write!(
                f,
                "invalid shard counts: {data} data + {parity} parity (need k>=1, m>=1, k+m<=256)"
            ),
            RsError::ShapeMismatch => write!(f, "shards differ in length or count"),
            RsError::TooFewShards { have, need } => {
                write!(f, "only {have} shards present, {need} required")
            }
            RsError::BadBlobLength => write!(f, "blob length exceeds shard contents"),
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic Reed–Solomon erasure code with fixed `(k, m)`.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    data_shards: usize,
    parity_shards: usize,
    /// n×k encoding matrix whose top k×k block is the identity.
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates an `RS(k + m, k)` code.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::BadShardCounts`] unless `k ≥ 1`, `m ≥ 1` and
    /// `k + m ≤ 256` (the field size bounds the shard count).
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<Self, RsError> {
        if data_shards == 0 || parity_shards == 0 || data_shards + parity_shards > 256 {
            return Err(RsError::BadShardCounts {
                data: data_shards,
                parity: parity_shards,
            });
        }
        let n = data_shards + parity_shards;
        let v = Matrix::vandermonde(n, data_shards);
        let top = v.select_rows(&(0..data_shards).collect::<Vec<_>>());
        let top_inv = top
            .inverse()
            .expect("leading Vandermonde block is always invertible");
        let encode_matrix = v.mul(&top_inv);
        Ok(ReedSolomon {
            data_shards,
            parity_shards,
            encode_matrix,
        })
    }

    /// Number of data shards (`k`).
    pub fn data_shards(&self) -> usize {
        self.data_shards
    }

    /// Number of parity shards (`m`).
    pub fn parity_shards(&self) -> usize {
        self.parity_shards
    }

    /// Total shards (`n = k + m`).
    pub fn total_shards(&self) -> usize {
        self.data_shards + self.parity_shards
    }

    /// Storage overhead factor `n / k` (experiment E11 reports this
    /// against availability).
    pub fn overhead(&self) -> f64 {
        self.total_shards() as f64 / self.data_shards as f64
    }

    /// Computes the `m` parity shards for `k` equal-length data shards.
    ///
    /// # Errors
    ///
    /// [`RsError::ShapeMismatch`] if the count or lengths are wrong.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.data_shards {
            return Err(RsError::ShapeMismatch);
        }
        let shard_len = data[0].len();
        if data.iter().any(|s| s.len() != shard_len) {
            return Err(RsError::ShapeMismatch);
        }
        let mut parity = vec![vec![0u8; shard_len]; self.parity_shards];
        for (p, out) in parity.iter_mut().enumerate() {
            let row = self.encode_matrix.row(self.data_shards + p);
            for (coef, shard) in row.iter().zip(data.iter()) {
                gf256::mul_slice(*coef, shard, out);
            }
        }
        Ok(parity)
    }

    /// Reconstructs **all** `n` shards from any `k` survivors.
    ///
    /// `shards[i]` is `Some` if shard `i` survived. On success every entry
    /// of the returned vector is filled in.
    ///
    /// # Errors
    ///
    /// [`RsError::TooFewShards`] if fewer than `k` survive;
    /// [`RsError::ShapeMismatch`] on inconsistent lengths/counts.
    pub fn reconstruct(&self, shards: Vec<Option<Vec<u8>>>) -> Result<Vec<Vec<u8>>, RsError> {
        if shards.len() != self.total_shards() {
            return Err(RsError::ShapeMismatch);
        }
        let present: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        if present.len() < self.data_shards {
            return Err(RsError::TooFewShards {
                have: present.len(),
                need: self.data_shards,
            });
        }
        let shard_len = shards[present[0]].as_ref().expect("present").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present").len() != shard_len)
        {
            return Err(RsError::ShapeMismatch);
        }

        // Select k surviving rows of the encode matrix; invert; multiply by
        // the surviving shards to recover the data shards.
        let use_rows: Vec<usize> = present.iter().copied().take(self.data_shards).collect();
        let sub = self.encode_matrix.select_rows(&use_rows);
        let dec = sub
            .inverse()
            .expect("any k rows of the systematic Vandermonde matrix are invertible");

        let mut data: Vec<Vec<u8>> = vec![vec![0u8; shard_len]; self.data_shards];
        for (r, out) in data.iter_mut().enumerate() {
            for (c, &src_row) in use_rows.iter().enumerate() {
                let src = shards[src_row].as_ref().expect("present");
                gf256::mul_slice(dec.get(r, c), src, out);
            }
        }

        // Re-derive parity and assemble the full shard set.
        let parity = self.encode(&data)?;
        let mut all = data;
        all.extend(parity);
        Ok(all)
    }

    /// Splits a blob into `k` padded data shards and appends parity:
    /// returns all `n` shards wrapped in `Some` (ready for storage and
    /// selective loss in tests/experiments).
    ///
    /// The shard length is `ceil(len / k)` (minimum 1 so empty blobs work).
    ///
    /// # Errors
    ///
    /// Propagates [`RsError::ShapeMismatch`] (unreachable for this input
    /// construction, but kept honest).
    pub fn encode_blob(&self, blob: &[u8]) -> Result<Vec<Option<Vec<u8>>>, RsError> {
        let shard_len = blob.len().div_ceil(self.data_shards).max(1);
        let mut data: Vec<Vec<u8>> = Vec::with_capacity(self.data_shards);
        for i in 0..self.data_shards {
            let start = (i * shard_len).min(blob.len());
            let end = ((i + 1) * shard_len).min(blob.len());
            let mut shard = blob[start..end].to_vec();
            shard.resize(shard_len, 0);
            data.push(shard);
        }
        let parity = self.encode(&data)?;
        Ok(data.into_iter().chain(parity).map(Some).collect())
    }

    /// Reassembles a blob of `original_len` bytes from (a subset of) its
    /// shards.
    ///
    /// # Errors
    ///
    /// As [`ReedSolomon::reconstruct`], plus [`RsError::BadBlobLength`]
    /// if `original_len` exceeds the reconstructed capacity.
    pub fn reconstruct_blob(
        &self,
        shards: Vec<Option<Vec<u8>>>,
        original_len: usize,
    ) -> Result<Vec<u8>, RsError> {
        let all = self.reconstruct(shards)?;
        let capacity = all[0].len() * self.data_shards;
        if original_len > capacity {
            return Err(RsError::BadBlobLength);
        }
        let mut blob = Vec::with_capacity(original_len);
        for shard in all.iter().take(self.data_shards) {
            blob.extend_from_slice(shard);
        }
        blob.truncate(original_len);
        Ok(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 131 + j * 7) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn encode_produces_parity() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 64);
        let parity = rs.encode(&data).unwrap();
        assert_eq!(parity.len(), 2);
        assert!(parity.iter().all(|p| p.len() == 64));
    }

    #[test]
    fn reconstruct_with_no_loss_is_identity() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 16);
        let parity = rs.encode(&data).unwrap();
        let shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        let all = rs.reconstruct(shards).unwrap();
        assert_eq!(&all[..3], &data[..]);
        assert_eq!(&all[3..], &parity[..]);
    }

    #[test]
    fn survives_any_m_losses() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 32);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        // Try every pair of losses.
        for i in 0..6 {
            for j in (i + 1)..6 {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[i] = None;
                shards[j] = None;
                let rec = rs.reconstruct(shards).unwrap();
                assert_eq!(rec, full, "losing shards {i},{j}");
            }
        }
    }

    #[test]
    fn fails_with_more_than_m_losses() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let shards = rs.encode_blob(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut shards = shards;
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert_eq!(
            rs.reconstruct(shards),
            Err(RsError::TooFewShards { have: 3, need: 4 })
        );
    }

    #[test]
    fn blob_roundtrip_various_sizes() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        for len in [0usize, 1, 4, 5, 23, 100, 1001] {
            let blob: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let mut shards = rs.encode_blob(&blob).unwrap();
            // Drop three arbitrary shards (= m).
            shards[1] = None;
            shards[4] = None;
            shards[7] = None;
            let rec = rs.reconstruct_blob(shards, len).unwrap();
            assert_eq!(rec, blob, "len {len}");
        }
    }

    #[test]
    fn parameter_validation() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(2, 0).is_err());
        assert!(ReedSolomon::new(200, 57).is_err());
        assert!(ReedSolomon::new(200, 56).is_ok());
    }

    #[test]
    fn shape_mismatches_detected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        assert_eq!(rs.encode(&sample_data(3, 8)), Err(RsError::ShapeMismatch));
        let ragged = vec![vec![0u8; 4], vec![0u8; 5]];
        assert_eq!(rs.encode(&ragged), Err(RsError::ShapeMismatch));
        assert_eq!(
            rs.reconstruct(vec![Some(vec![0u8; 4]); 2]),
            Err(RsError::ShapeMismatch)
        );
    }

    #[test]
    fn overhead_factor() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        assert!((rs.overhead() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bad_blob_length_detected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let shards = rs.encode_blob(b"xy").unwrap();
        assert_eq!(
            rs.reconstruct_blob(shards, 100),
            Err(RsError::BadBlobLength)
        );
    }

    #[test]
    fn error_display() {
        let e = RsError::TooFewShards { have: 1, need: 3 };
        assert_eq!(e.to_string(), "only 1 shards present, 3 required");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Round-trip invariant: for random blobs, (k, m) and loss
            /// patterns with ≤ m losses, reconstruction is exact.
            #[test]
            fn rs_roundtrip(
                blob in proptest::collection::vec(any::<u8>(), 0..300),
                k in 1usize..8,
                m in 1usize..5,
                seed in any::<u64>(),
            ) {
                let rs = ReedSolomon::new(k, m).unwrap();
                let mut shards = rs.encode_blob(&blob).unwrap();
                // Deterministically drop up to m shards.
                let n = k + m;
                let mut dropped = 0;
                let mut s = seed;
                while dropped < m {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let idx = (s >> 33) as usize % n;
                    if shards[idx].is_some() {
                        shards[idx] = None;
                        dropped += 1;
                    }
                }
                let rec = rs.reconstruct_blob(shards, blob.len()).unwrap();
                prop_assert_eq!(rec, blob);
            }
        }
    }
}
