//! Arithmetic in GF(2^8) modulo the polynomial x^8 + x^4 + x^3 + x^2 + 1
//! (0x11d), the field conventional for Reed–Solomon codes.
//!
//! Multiplication uses exp/log tables generated at first use from the
//! generator element 2, so all operations are table lookups.

/// Precomputed exp/log tables for GF(2^8).
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        #[allow(clippy::needless_range_loop)] // exp and log fill in lockstep
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11d;
            }
        }
        // Duplicate so exp[a+b] never needs a modulo.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Addition in GF(2^8) (bitwise XOR; identical to subtraction).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication in GF(2^8).
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Fused multiply-accumulate over slices: `dst[i] ^= coef · src[i]`.
///
/// This is the hot loop of Reed–Solomon encode and reconstruct. The
/// scalar path costs two table lookups plus two zero-tests per byte;
/// here the 256-entry product row for `coef` is built once (amortized
/// over the whole slice) and the slices are walked eight bytes per
/// iteration. `coef == 0` is a no-op and `coef == 1` degrades to a
/// pure XOR, so callers need not special-case sparse matrix rows.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_slice(coef: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
    if coef == 0 {
        return;
    }
    if coef == 1 {
        let mut d = dst.chunks_exact_mut(8);
        let mut s = src.chunks_exact(8);
        for (dc, sc) in (&mut d).zip(&mut s) {
            for i in 0..8 {
                dc[i] ^= sc[i];
            }
        }
        for (o, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *o ^= b;
        }
        return;
    }
    // The product row for this coefficient: row[b] = coef · b.
    let t = tables();
    let lc = t.log[coef as usize] as usize;
    let mut row = [0u8; 256];
    for (b, slot) in row.iter_mut().enumerate().skip(1) {
        *slot = t.exp[lc + t.log[b] as usize];
    }
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for i in 0..8 {
            dc[i] ^= row[sc[i] as usize];
        }
    }
    for (o, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *o ^= row[b as usize];
    }
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on zero, which has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division: `a / b`.
///
/// # Panics
///
/// Panics if `b` is zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + 255 - t.log[b as usize] as usize]
}

/// Exponentiation: `base^power` with `0^0 = 1`.
pub fn pow(base: u8, power: usize) -> u8 {
    if power == 0 {
        return 1;
    }
    if base == 0 {
        return 0;
    }
    let t = tables();
    let l = t.log[base as usize] as usize * (power % 255);
    t.exp[l % 255]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        assert_eq!(add(0x53, 0xca), 0x99);
        for a in 0..=255u8 {
            assert_eq!(add(a, a), 0);
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn known_products() {
        // 2 * 2 = 4; 0x80 * 2 = 0x1d (reduction kicks in).
        assert_eq!(mul(2, 2), 4);
        assert_eq!(mul(0x80, 2), 0x1d);
        assert_eq!(mul(0xb6, 0x53), 0xee);
    }

    #[test]
    fn mul_is_commutative_and_associative() {
        for a in [1u8, 3, 7, 0x53, 0xca, 0xff] {
            for b in [2u8, 5, 0x11, 0x80] {
                assert_eq!(mul(a, b), mul(b, a));
                for c in [4u8, 9, 0xfe] {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_law() {
        for a in [3u8, 0x53, 0xff] {
            for b in [5u8, 0x80] {
                for c in [7u8, 0x1d] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn mul_slice_matches_scalar_mul() {
        // Lengths straddling the 8-byte unroll boundary, and the three
        // coefficient classes (zero, one, table row).
        for len in [0usize, 1, 7, 8, 9, 64, 250] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for coef in [0u8, 1, 2, 0x53, 0x80, 0xff] {
                let mut dst: Vec<u8> = (0..len).map(|i| (i * 101 + 5) as u8).collect();
                let expect: Vec<u8> = dst
                    .iter()
                    .zip(&src)
                    .map(|(&d, &s)| add(d, mul(coef, s)))
                    .collect();
                mul_slice(coef, &src, &mut dst);
                assert_eq!(dst, expect, "coef {coef:#x} len {len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mul_slice_rejects_ragged_slices() {
        let mut dst = [0u8; 3];
        mul_slice(2, &[1, 2], &mut dst);
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn div_matches_mul_by_inverse() {
        for a in [0u8, 1, 17, 0x53] {
            for b in [1u8, 2, 0x80, 0xff] {
                assert_eq!(div(a, b), mul(a, inv(b)));
            }
        }
    }

    #[test]
    fn pow_basics() {
        assert_eq!(pow(2, 0), 1);
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(2, 8), 0x1d); // 2^8 reduces by the field polynomial
                                     // Fermat: a^255 = 1 for nonzero a.
        for a in [1u8, 2, 3, 0x53, 0xff] {
            assert_eq!(pow(a, 255), 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_zero_panics() {
        let _ = div(1, 0);
    }
}
