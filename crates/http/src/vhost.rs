//! Virtual hosting: route requests by `Host:` header to handlers.
//!
//! §IV-B: the NoCDN peer runs a reverse proxy "with virtual hosting — to
//! allow a peer to sign up for content delivery with multiple content
//! providers". [`VirtualHosts`] is that dispatch table.

use crate::message::{Request, Response, StatusCode};
use std::collections::BTreeMap;

/// A request handler: anything that turns a request into a response.
///
/// Implemented for closures so tests and services can register handlers
/// inline.
pub trait Handler {
    /// Handles one request.
    fn handle(&mut self, req: &Request) -> Response;
}

impl<F: FnMut(&Request) -> Response> Handler for F {
    fn handle(&mut self, req: &Request) -> Response {
        self(req)
    }
}

/// Routes requests to per-host handlers; unknown hosts get a
/// `502 Bad Gateway` (the proxy has no mapping for them).
#[derive(Default)]
pub struct VirtualHosts {
    hosts: BTreeMap<String, Box<dyn Handler>>,
}

impl std::fmt::Debug for VirtualHosts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualHosts")
            .field("hosts", &self.hosts.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl VirtualHosts {
    /// An empty routing table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the handler for `host`.
    pub fn register(&mut self, host: &str, handler: impl Handler + 'static) {
        self.hosts
            .insert(host.to_ascii_lowercase(), Box::new(handler));
    }

    /// Removes a host's handler; returns whether one existed.
    pub fn unregister(&mut self, host: &str) -> bool {
        self.hosts.remove(&host.to_ascii_lowercase()).is_some()
    }

    /// Hosts currently served.
    pub fn hosts(&self) -> impl Iterator<Item = &str> {
        self.hosts.keys().map(String::as_str)
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when no hosts are registered.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Dispatches a request by its `Host:` header.
    pub fn dispatch(&mut self, req: &Request) -> Response {
        let host = req.host().to_ascii_lowercase();
        match self.hosts.get_mut(&host) {
            Some(h) => h.handle(req),
            None => Response::new(StatusCode::BAD_GATEWAY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Method;
    use crate::url::Url;

    #[test]
    fn dispatch_by_host() {
        let mut v = VirtualHosts::new();
        v.register("a.example", |_req: &Request| Response::ok("from-a"));
        v.register("b.example", |_req: &Request| Response::ok("from-b"));
        let ra = v.dispatch(&Request::get(Url::https("a.example", "/")));
        assert_eq!(&ra.body[..], b"from-a");
        let rb = v.dispatch(&Request::get(Url::https("B.EXAMPLE", "/")));
        assert_eq!(&rb.body[..], b"from-b");
    }

    #[test]
    fn unknown_host_is_bad_gateway() {
        let mut v = VirtualHosts::new();
        let r = v.dispatch(&Request::get(Url::https("nowhere.example", "/")));
        assert_eq!(r.status, StatusCode::BAD_GATEWAY);
    }

    #[test]
    fn register_replace_unregister() {
        let mut v = VirtualHosts::new();
        assert!(v.is_empty());
        v.register("x", |_: &Request| Response::ok("1"));
        v.register("x", |_: &Request| Response::ok("2"));
        assert_eq!(v.len(), 1);
        let r = v.dispatch(&Request::new(Method::Get, Url::https("x", "/")));
        assert_eq!(&r.body[..], b"2");
        assert!(v.unregister("X"));
        assert!(!v.unregister("x"));
    }

    #[test]
    fn handlers_can_be_stateful() {
        let mut v = VirtualHosts::new();
        let mut count = 0u32;
        v.register("counter", move |_: &Request| {
            count += 1;
            Response::ok(count.to_string())
        });
        let u = Url::https("counter", "/");
        v.dispatch(&Request::get(u.clone()));
        let r = v.dispatch(&Request::get(u));
        assert_eq!(&r.body[..], b"2");
    }
}
