//! Byte-range requests (RFC 7233 subset).
//!
//! §IV-B "Leveraging Redundancy": "clients could download objects in
//! chunks (e.g., using HTTP range requests) from disparate peers instead
//! of as entire objects". [`ByteRange`] is the chunking primitive NoCDN's
//! multi-peer fetch uses.

use crate::message::{Response, StatusCode};
use bytes::Bytes;
use std::fmt;

/// An inclusive byte range `start-end` (both bounded, per the chunked
/// multi-peer use case).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ByteRange {
    /// First byte offset (inclusive).
    pub start: u64,
    /// Last byte offset (inclusive).
    pub end: u64,
}

impl ByteRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: u64, end: u64) -> ByteRange {
        assert!(end >= start, "inverted byte range {start}-{end}");
        ByteRange { start, end }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Ranges are never empty (inclusive ends); kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Splits `total` bytes into `n` near-equal contiguous ranges — the
    /// NoCDN chunk map. The last range absorbs the remainder. Returns an
    /// empty vector when `total == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn split(total: u64, n: usize) -> Vec<ByteRange> {
        assert!(n > 0, "cannot split into zero chunks");
        if total == 0 {
            return Vec::new();
        }
        let n = (n as u64).min(total);
        let base = total / n;
        let mut out = Vec::with_capacity(n as usize);
        let mut start = 0;
        for i in 0..n {
            let mut end = start + base - 1;
            if i == n - 1 {
                end = total - 1;
            }
            out.push(ByteRange::new(start, end));
            start = end + 1;
        }
        out
    }

    /// Parses a `Range:` header value of the form `bytes=a-b`.
    pub fn parse(header: &str) -> Option<ByteRange> {
        let spec = header.strip_prefix("bytes=")?;
        let (a, b) = spec.split_once('-')?;
        let start = a.trim().parse().ok()?;
        let end = b.trim().parse().ok()?;
        if end < start {
            return None;
        }
        Some(ByteRange { start, end })
    }

    /// The `Range:` header value for this range.
    pub fn to_header(&self) -> String {
        format!("bytes={}-{}", self.start, self.end)
    }

    /// Slices a body according to this range, producing either a
    /// `206 Partial Content` (with `Content-Range`) or
    /// `416 Range Not Satisfiable`.
    pub fn apply(&self, body: &Bytes) -> Response {
        let total = body.len() as u64;
        if self.start >= total {
            return Response::new(StatusCode::RANGE_NOT_SATISFIABLE)
                .with_header("content-range", format!("bytes */{total}"));
        }
        let end = self.end.min(total - 1);
        let slice = body.slice(self.start as usize..=end as usize);
        Response::new(StatusCode::PARTIAL_CONTENT)
            .with_body(slice)
            .with_header(
                "content-range",
                format!("bytes {}-{}/{}", self.start, end, total),
            )
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_contiguously() {
        for (total, n) in [(100u64, 3usize), (7, 7), (1, 5), (1000, 1)] {
            let ranges = ByteRange::split(total, n);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, total - 1);
            let sum: u64 = ranges.iter().map(ByteRange::len).sum();
            assert_eq!(sum, total, "total={total} n={n}");
            for w in ranges.windows(2) {
                assert_eq!(w[1].start, w[0].end + 1);
            }
        }
    }

    #[test]
    fn split_zero_total() {
        assert!(ByteRange::split(0, 4).is_empty());
    }

    #[test]
    fn split_caps_chunks_at_total() {
        // 3 bytes into 10 chunks: only 3 chunks of 1 byte.
        let r = ByteRange::split(3, 10);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|x| x.len() == 1));
    }

    #[test]
    fn parse_and_format() {
        let r = ByteRange::parse("bytes=0-499").unwrap();
        assert_eq!(r, ByteRange::new(0, 499));
        assert_eq!(r.len(), 500);
        assert_eq!(r.to_header(), "bytes=0-499");
        assert!(ByteRange::parse("bytes=5-2").is_none());
        assert!(ByteRange::parse("items=0-1").is_none());
        assert!(ByteRange::parse("bytes=a-b").is_none());
    }

    #[test]
    fn apply_produces_206() {
        let body = Bytes::from_static(b"0123456789");
        let resp = ByteRange::new(2, 5).apply(&body);
        assert_eq!(resp.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(&resp.body[..], b"2345");
        assert_eq!(resp.headers.get("content-range"), Some("bytes 2-5/10"));
    }

    #[test]
    fn apply_clamps_overlong_end() {
        let body = Bytes::from_static(b"0123456789");
        let resp = ByteRange::new(8, 100).apply(&body);
        assert_eq!(&resp.body[..], b"89");
        assert_eq!(resp.headers.get("content-range"), Some("bytes 8-9/10"));
    }

    #[test]
    fn apply_unsatisfiable() {
        let body = Bytes::from_static(b"abc");
        let resp = ByteRange::new(10, 20).apply(&body);
        assert_eq!(resp.status, StatusCode::RANGE_NOT_SATISFIABLE);
        assert_eq!(resp.headers.get("content-range"), Some("bytes */3"));
    }

    #[test]
    #[should_panic(expected = "inverted byte range")]
    fn inverted_range_panics() {
        let _ = ByteRange::new(5, 2);
    }
}
