//! HTTP/1.1 wire framing: encode/decode [`Request`] and [`Response`]
//! to and from bytes.
//!
//! The netsim fabric passes message *structs* around; a real socket
//! passes bytes. This module is the boundary the `attic-daemon` adapter
//! sits on: request-line + header block + `Content-Length`-delimited
//! body, CRLF line endings, no chunked transfer (the attic always knows
//! its body sizes up front). Decoders are incremental — they return
//! `Ok(None)` when the buffer does not yet hold a complete message, so
//! a read loop can keep appending bytes and retrying.

use crate::message::{Headers, Method, Request, Response, StatusCode};
use crate::url::Url;
use bytes::Bytes;

/// Why a byte stream failed to parse as HTTP/1.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The start line is not valid HTTP/1.1.
    BadStartLine,
    /// A header line is missing the `:` separator or is not UTF-8.
    BadHeader,
    /// `Content-Length` is present but unparseable.
    BadContentLength,
    /// An unsupported method token.
    BadMethod,
    /// Headers exceed the hard cap (defense against unbounded buffers).
    TooLarge,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FrameError::BadStartLine => "malformed start line",
            FrameError::BadHeader => "malformed header",
            FrameError::BadContentLength => "malformed content-length",
            FrameError::BadMethod => "unsupported method",
            FrameError::TooLarge => "header block too large",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FrameError {}

/// Hard cap on the header block; a home appliance has no business
/// accepting megabyte header sections.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Serializes a request for the wire. `Content-Length` is always
/// emitted (0 for bodiless requests) so the peer never needs
/// read-until-close.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + req.body.len());
    out.extend_from_slice(req.method.as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.url.path().as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\n");
    for (name, value) in req.headers.iter() {
        if name == "content-length" {
            continue;
        }
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(format!("content-length: {}\r\n\r\n", req.body.len()).as_bytes());
    out.extend_from_slice(&req.body);
    out
}

/// Serializes a response for the wire (mirror of [`encode_request`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + resp.body.len());
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", resp.status.0, resp.status.reason()).as_bytes(),
    );
    for (name, value) in resp.headers.iter() {
        if name == "content-length" {
            continue;
        }
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(format!("content-length: {}\r\n\r\n", resp.body.len()).as_bytes());
    out.extend_from_slice(&resp.body);
    out
}

/// Finds the end of the header block (`\r\n\r\n`), if present.
fn header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Parses the header block lines after the start line. Returns the
/// header map and the declared content length.
fn parse_headers(block: &str) -> Result<(Headers, usize), FrameError> {
    let mut headers = Headers::new();
    let mut content_length = 0usize;
    for line in block.split("\r\n").filter(|l| !l.is_empty()) {
        let (name, value) = line.split_once(':').ok_or(FrameError::BadHeader)?;
        let name = name.trim();
        let value = value.trim();
        if name.is_empty() {
            return Err(FrameError::BadHeader);
        }
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| FrameError::BadContentLength)?;
        }
        headers.set(name, value);
    }
    Ok((headers, content_length))
}

/// Attempts to decode one request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a complete message is
/// present, `Ok(None)` when more bytes are needed.
///
/// # Errors
///
/// [`FrameError`] on malformed or oversized input — the connection
/// should be answered `400` and closed.
pub fn decode_request(buf: &[u8]) -> Result<Option<(Request, usize)>, FrameError> {
    let Some(head_len) = header_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(FrameError::TooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_HEADER_BYTES {
        return Err(FrameError::TooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len - 4]).map_err(|_| FrameError::BadHeader)?;
    let (start, rest) = head.split_once("\r\n").unwrap_or((head, ""));
    let mut parts = start.split(' ');
    let method = parts.next().ok_or(FrameError::BadStartLine)?;
    let target = parts.next().ok_or(FrameError::BadStartLine)?;
    let version = parts.next().ok_or(FrameError::BadStartLine)?;
    if parts.next().is_some() || version != "HTTP/1.1" || !target.starts_with('/') {
        return Err(FrameError::BadStartLine);
    }
    let method = Method::parse(method).ok_or(FrameError::BadMethod)?;
    let (headers, content_length) = parse_headers(rest)?;
    let total = head_len + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let host = headers.get("host").unwrap_or("localhost").to_owned();
    let url = Url::new("http", &host, target);
    let mut req = Request::new(method, url);
    req.headers = headers;
    req.body = Bytes::copy_from_slice(&buf[head_len..total]);
    Ok(Some((req, total)))
}

/// Attempts to decode one response from the front of `buf` (mirror of
/// [`decode_request`]).
///
/// # Errors
///
/// [`FrameError`] on malformed or oversized input.
pub fn decode_response(buf: &[u8]) -> Result<Option<(Response, usize)>, FrameError> {
    let Some(head_len) = header_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(FrameError::TooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_HEADER_BYTES {
        return Err(FrameError::TooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len - 4]).map_err(|_| FrameError::BadHeader)?;
    let (start, rest) = head.split_once("\r\n").unwrap_or((head, ""));
    let code = start
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or(FrameError::BadStartLine)?;
    let (headers, content_length) = parse_headers(rest)?;
    let total = head_len + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let mut resp = Response::new(StatusCode(code));
    resp.headers = headers;
    resp.body = Bytes::copy_from_slice(&buf[head_len..total]);
    Ok(Some((resp, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(p: &str) -> Url {
        Url::new("http", "attic.home", p)
    }

    #[test]
    fn request_round_trips() {
        let req = Request::put(url("/docs/a.txt"), &b"hello"[..])
            .with_header("if-match", "\"abc\"")
            .with_header("depth", "0");
        let wire = encode_request(&req);
        let (back, consumed) = decode_request(&wire).unwrap().expect("complete");
        assert_eq!(consumed, wire.len());
        assert_eq!(back.method, Method::Put);
        assert_eq!(back.url.path(), "/docs/a.txt");
        assert_eq!(back.headers.get("if-match"), Some("\"abc\""));
        assert_eq!(back.headers.get("depth"), Some("0"));
        assert_eq!(&back.body[..], b"hello");
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok("body bytes").with_header("etag", "\"xyz\"");
        let wire = encode_response(&resp);
        let (back, consumed) = decode_response(&wire).unwrap().expect("complete");
        assert_eq!(consumed, wire.len());
        assert_eq!(back.status, StatusCode::OK);
        assert_eq!(back.headers.get("etag"), Some("\"xyz\""));
        assert_eq!(&back.body[..], b"body bytes");
    }

    #[test]
    fn partial_messages_ask_for_more() {
        let wire = encode_request(&Request::put(url("/f"), &b"0123456789"[..]));
        // Any strict prefix is incomplete, never an error.
        for cut in [0, 1, wire.len() / 2, wire.len() - 1] {
            assert!(decode_request(&wire[..cut]).unwrap().is_none());
        }
        // Trailing pipelined bytes are left unconsumed.
        let mut two = wire.clone();
        two.extend_from_slice(&wire);
        let (_, consumed) = decode_request(&two).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(
            decode_request(b"BREW /pot HTTP/1.1\r\n\r\n").unwrap_err(),
            FrameError::BadMethod
        );
        assert_eq!(
            decode_request(b"GET /x HTTP/0.9\r\n\r\n").unwrap_err(),
            FrameError::BadStartLine
        );
        assert_eq!(
            decode_request(b"GET relative HTTP/1.1\r\n\r\n").unwrap_err(),
            FrameError::BadStartLine
        );
        assert_eq!(
            decode_request(b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n").unwrap_err(),
            FrameError::BadHeader
        );
        assert_eq!(
            decode_request(b"GET /x HTTP/1.1\r\ncontent-length: soup\r\n\r\n").unwrap_err(),
            FrameError::BadContentLength
        );
        let huge = vec![b'a'; MAX_HEADER_BYTES + 10];
        assert_eq!(decode_request(&huge).unwrap_err(), FrameError::TooLarge);
    }

    #[test]
    fn webdav_verbs_frame() {
        let req = Request::new(Method::PropFind, url("/d")).with_header("depth", "infinity");
        let wire = encode_request(&req);
        assert!(wire.starts_with(b"PROPFIND /d HTTP/1.1\r\n"));
        let (back, _) = decode_request(&wire).unwrap().unwrap();
        assert_eq!(back.method, Method::PropFind);
    }
}
