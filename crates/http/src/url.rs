//! A minimal URL type: `scheme://host[:port]/path`.
//!
//! Deliberately tiny — the services only need scheme/host/path routing
//! and stable string forms for cache keys and wrapper-page object maps.

use std::fmt;
use std::str::FromStr;

/// A parsed absolute URL.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Url {
    scheme: String,
    host: String,
    port: Option<u16>,
    path: String,
}

/// Error parsing a URL.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParseUrlError;

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid URL syntax")
    }
}

impl std::error::Error for ParseUrlError {}

impl Url {
    /// Builds a URL from parts; the path is normalized to start with `/`.
    ///
    /// # Panics
    ///
    /// Panics if `scheme` or `host` is empty.
    pub fn new(scheme: &str, host: &str, path: &str) -> Url {
        assert!(!scheme.is_empty(), "empty scheme");
        assert!(!host.is_empty(), "empty host");
        let path = if path.starts_with('/') {
            path.to_owned()
        } else {
            format!("/{path}")
        };
        Url {
            scheme: scheme.to_owned(),
            host: host.to_owned(),
            port: None,
            path,
        }
    }

    /// Convenience: an `https` URL.
    pub fn https(host: &str, path: &str) -> Url {
        Url::new("https", host, path)
    }

    /// Convenience: an `http` URL.
    pub fn http(host: &str, path: &str) -> Url {
        Url::new("http", host, path)
    }

    /// The scheme (`http`, `https`).
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The explicit port, if any.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The absolute path (always begins with `/`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Returns a copy with a different path.
    pub fn with_path(&self, path: &str) -> Url {
        let mut u = self.clone();
        u.path = if path.starts_with('/') {
            path.to_owned()
        } else {
            format!("/{path}")
        };
        u
    }

    /// Returns a copy with an explicit port.
    pub fn with_port(&self, port: u16) -> Url {
        let mut u = self.clone();
        u.port = Some(port);
        u
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.port {
            Some(p) => write!(f, "{}://{}:{}{}", self.scheme, self.host, p, self.path),
            None => write!(f, "{}://{}{}", self.scheme, self.host, self.path),
        }
    }
}

impl FromStr for Url {
    type Err = ParseUrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (scheme, rest) = s.split_once("://").ok_or(ParseUrlError)?;
        if scheme.is_empty() {
            return Err(ParseUrlError);
        }
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(ParseUrlError);
        }
        let (host, port) = match authority.split_once(':') {
            Some((h, p)) => {
                if h.is_empty() {
                    return Err(ParseUrlError);
                }
                (h, Some(p.parse::<u16>().map_err(|_| ParseUrlError)?))
            }
            None => (authority, None),
        };
        Ok(Url {
            scheme: scheme.to_owned(),
            host: host.to_owned(),
            port,
            path: path.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "https://example.com/",
            "http://attic.home:8443/records/2026.json",
            "https://nytimes.example/index.html",
        ] {
            let u: Url = s.parse().unwrap();
            assert_eq!(u.to_string(), s);
        }
    }

    #[test]
    fn bare_host_gets_root_path() {
        let u: Url = "https://example.com".parse().unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.to_string(), "https://example.com/");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "nocolon", "://x/", "http://", "http://h:notaport/"] {
            assert!(s.parse::<Url>().is_err(), "{s} parsed");
        }
    }

    #[test]
    fn constructors_normalize_path() {
        let u = Url::https("h", "a/b");
        assert_eq!(u.path(), "/a/b");
        assert_eq!(u.with_path("x").path(), "/x");
        assert_eq!(u.with_port(81).port(), Some(81));
    }

    #[test]
    fn accessors() {
        let u: Url = "https://cdn.example:444/obj/1".parse().unwrap();
        assert_eq!(u.scheme(), "https");
        assert_eq!(u.host(), "cdn.example");
        assert_eq!(u.port(), Some(444));
        assert_eq!(u.path(), "/obj/1");
    }
}
