//! HTTP request/response messages with the WebDAV method set.

use crate::url::Url;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// An HTTP method, including the WebDAV extensions the data attic uses
/// (§IV-A: "WebDAV further mediates access from multiple clients through
/// file locking").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // variants are the method names themselves
pub enum Method {
    Get,
    Head,
    Put,
    Post,
    Delete,
    Options,
    // WebDAV (RFC 4918)
    PropFind,
    PropPatch,
    MkCol,
    Copy,
    Move,
    Lock,
    Unlock,
}

impl Method {
    /// True for methods that cannot modify server state.
    pub fn is_safe(self) -> bool {
        matches!(
            self,
            Method::Get | Method::Head | Method::Options | Method::PropFind
        )
    }

    /// Parses the canonical token (`"PROPFIND"` etc.). Method tokens
    /// are case-sensitive per RFC 9110; `None` for unknown tokens.
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "PUT" => Method::Put,
            "POST" => Method::Post,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            "PROPFIND" => Method::PropFind,
            "PROPPATCH" => Method::PropPatch,
            "MKCOL" => Method::MkCol,
            "COPY" => Method::Copy,
            "MOVE" => Method::Move,
            "LOCK" => Method::Lock,
            "UNLOCK" => Method::Unlock,
            _ => return None,
        })
    }

    /// The canonical token (`"PROPFIND"` etc.).
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Put => "PUT",
            Method::Post => "POST",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::PropFind => "PROPFIND",
            Method::PropPatch => "PROPPATCH",
            Method::MkCol => "MKCOL",
            Method::Copy => "COPY",
            Method::Move => "MOVE",
            Method::Lock => "LOCK",
            Method::Unlock => "UNLOCK",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP status code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StatusCode(pub u16);

#[allow(missing_docs)] // constants mirror the RFC names
impl StatusCode {
    pub const OK: StatusCode = StatusCode(200);
    pub const CREATED: StatusCode = StatusCode(201);
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    pub const PARTIAL_CONTENT: StatusCode = StatusCode(206);
    pub const MULTI_STATUS: StatusCode = StatusCode(207);
    pub const NOT_MODIFIED: StatusCode = StatusCode(304);
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    pub const CONFLICT: StatusCode = StatusCode(409);
    pub const PRECONDITION_FAILED: StatusCode = StatusCode(412);
    pub const UNSUPPORTED_MEDIA_TYPE: StatusCode = StatusCode(415);
    pub const RANGE_NOT_SATISFIABLE: StatusCode = StatusCode(416);
    pub const LOCKED: StatusCode = StatusCode(423);
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// True for 2xx codes.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// The standard reason phrase (a subset; unknown codes say "Unknown").
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            206 => "Partial Content",
            207 => "Multi-Status",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            412 => "Precondition Failed",
            415 => "Unsupported Media Type",
            416 => "Range Not Satisfiable",
            423 => "Locked",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// Case-insensitive header map (names are lower-cased on insert).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Headers {
    map: BTreeMap<String, String>,
}

impl Headers {
    /// An empty header set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a header, replacing any previous value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.map.insert(name.to_ascii_lowercase(), value.into());
    }

    /// Gets a header value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.map.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Removes a header, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<String> {
        self.map.remove(&name.to_ascii_lowercase())
    }

    /// True if the header is present.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterates over `(name, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no headers are set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// An HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// The target URL.
    pub url: Url,
    /// Request headers.
    pub headers: Headers,
    /// Request body.
    pub body: Bytes,
}

impl Request {
    /// Creates a bodiless request; the `Host:` header is set from the URL.
    pub fn new(method: Method, url: Url) -> Request {
        let mut headers = Headers::new();
        headers.set("host", url.host().to_owned());
        Request {
            method,
            url,
            headers,
            body: Bytes::new(),
        }
    }

    /// Convenience: `GET url`.
    pub fn get(url: Url) -> Request {
        Request::new(Method::Get, url)
    }

    /// Convenience: `PUT url` with a body.
    pub fn put(url: Url, body: impl Into<Bytes>) -> Request {
        let mut r = Request::new(Method::Put, url);
        r.body = body.into();
        r
    }

    /// Builder-style header setter.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.set(name, value);
        self
    }

    /// The `Host:` header (present by construction).
    pub fn host(&self) -> &str {
        self.headers.get("host").unwrap_or_else(|| self.url.host())
    }

    /// Total approximate wire size: request line + headers + body. Used
    /// by the simulator to size transfers.
    pub fn wire_size(&self) -> u64 {
        let line = self.method.as_str().len() + self.url.path().len() + 12;
        let hdrs: usize = self
            .headers
            .iter()
            .map(|(k, v)| k.len() + v.len() + 4)
            .sum();
        (line + hdrs + 2) as u64 + self.body.len() as u64
    }
}

/// An HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code.
    pub status: StatusCode,
    /// Response headers.
    pub headers: Headers,
    /// Response body.
    pub body: Bytes,
}

impl Response {
    /// Creates a response with a status and empty body.
    pub fn new(status: StatusCode) -> Response {
        Response {
            status,
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// Convenience: `200 OK` with a body.
    pub fn ok(body: impl Into<Bytes>) -> Response {
        let mut r = Response::new(StatusCode::OK);
        r.body = body.into();
        let len = r.body.len();
        r.headers.set("content-length", len.to_string());
        r
    }

    /// Convenience: `404 Not Found`.
    pub fn not_found() -> Response {
        Response::new(StatusCode::NOT_FOUND)
    }

    /// Builder-style header setter.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.set(name, value);
        self
    }

    /// Builder-style body setter (also sets `Content-Length`).
    pub fn with_body(mut self, body: impl Into<Bytes>) -> Response {
        self.body = body.into();
        let len = self.body.len();
        self.headers.set("content-length", len.to_string());
        self
    }

    /// Total approximate wire size: status line + headers + body.
    pub fn wire_size(&self) -> u64 {
        let line = 15;
        let hdrs: usize = self
            .headers
            .iter()
            .map(|(k, v)| k.len() + v.len() + 4)
            .sum();
        (line + hdrs + 2) as u64 + self.body.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_classified() {
        assert!(Method::Get.is_safe());
        assert!(Method::PropFind.is_safe());
        assert!(!Method::Put.is_safe());
        assert!(!Method::Lock.is_safe());
        assert_eq!(Method::MkCol.as_str(), "MKCOL");
    }

    #[test]
    fn method_parse_round_trips() {
        for m in [
            Method::Get,
            Method::Head,
            Method::Put,
            Method::Post,
            Method::Delete,
            Method::Options,
            Method::PropFind,
            Method::PropPatch,
            Method::MkCol,
            Method::Copy,
            Method::Move,
            Method::Lock,
            Method::Unlock,
        ] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("get"), None);
        assert_eq!(Method::parse("BREW"), None);
    }

    #[test]
    fn status_codes() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::PARTIAL_CONTENT.is_success());
        assert!(!StatusCode::NOT_MODIFIED.is_success());
        assert_eq!(StatusCode::LOCKED.to_string(), "423 Locked");
        assert_eq!(StatusCode(599).reason(), "Unknown");
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.set("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert!(h.contains("CONTENT-TYPE"));
        h.set("content-TYPE", "application/json");
        assert_eq!(h.len(), 1);
        assert_eq!(h.remove("Content-Type"), Some("application/json".into()));
        assert!(h.is_empty());
    }

    #[test]
    fn request_sets_host() {
        let r = Request::get(Url::https("attic.example", "/files/a.txt"));
        assert_eq!(r.host(), "attic.example");
        assert_eq!(r.method, Method::Get);
        assert!(r.wire_size() > 20);
    }

    #[test]
    fn put_carries_body() {
        let r = Request::put(Url::https("h", "/f"), &b"data"[..]);
        assert_eq!(&r.body[..], b"data");
        assert!(r.wire_size() >= 4);
    }

    #[test]
    fn response_builders() {
        let r = Response::ok("hello");
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(r.headers.get("content-length"), Some("5"));
        let r = Response::new(StatusCode::NOT_MODIFIED).with_header("etag", "\"v3\"");
        assert_eq!(r.headers.get("etag"), Some("\"v3\""));
        assert_eq!(Response::not_found().status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn wire_sizes_track_payload() {
        let small = Response::ok("x").wire_size();
        let big = Response::ok(vec![0u8; 1000]).wire_size();
        assert!(big > small + 900);
    }
}
