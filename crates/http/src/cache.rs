//! HTTP caching semantics: freshness, validators, and an LRU object
//! cache driven by simulated time.
//!
//! Internet@home (§IV-D) is built on exactly these mechanics: "whether to
//! keep content fresh by fetching a new copy as a cached version expires"
//! and "decreasing the frequency of content pre-validation". The cache
//! here tracks hits, misses and validations so the prefetch experiments
//! can report the paper's tradeoff curves.

use crate::message::{Request, Response, StatusCode};
use crate::url::Url;
use bytes::Bytes;
use hpop_netsim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Parsed `Cache-Control` directives (the subset the services use).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FreshnessPolicy {
    /// `max-age=N` in seconds.
    pub max_age: Option<SimDuration>,
    /// `no-store`: never cache.
    pub no_store: bool,
    /// `no-cache`: cache but revalidate every use.
    pub no_cache: bool,
}

impl FreshnessPolicy {
    /// Parses a `Cache-Control` header value.
    pub fn parse(header: &str) -> FreshnessPolicy {
        let mut p = FreshnessPolicy::default();
        for directive in header.split(',') {
            let d = directive.trim().to_ascii_lowercase();
            if d == "no-store" {
                p.no_store = true;
            } else if d == "no-cache" {
                p.no_cache = true;
            } else if let Some(v) = d.strip_prefix("max-age=") {
                if let Ok(secs) = v.parse::<u64>() {
                    p.max_age = Some(SimDuration::from_secs(secs));
                }
            }
        }
        p
    }

    /// Renders the directives back to a header value.
    pub fn to_header(&self) -> String {
        let mut parts = Vec::new();
        if self.no_store {
            parts.push("no-store".to_owned());
        }
        if self.no_cache {
            parts.push("no-cache".to_owned());
        }
        if let Some(ma) = self.max_age {
            parts.push(format!("max-age={}", ma.as_nanos() / 1_000_000_000));
        }
        parts.join(", ")
    }
}

/// A cached object.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The object bytes.
    pub body: Bytes,
    /// Entity tag for conditional revalidation.
    pub etag: Option<String>,
    /// Time-to-live from the moment of storage/validation.
    pub ttl: SimDuration,
    /// When the entry was stored or last validated.
    pub validated_at: SimTime,
}

impl CacheEntry {
    /// Creates an entry validated `now`.
    pub fn new(body: impl Into<Bytes>, ttl: SimDuration, now: SimTime) -> CacheEntry {
        CacheEntry {
            body: body.into(),
            etag: None,
            ttl,
            validated_at: now,
        }
    }

    /// Builder-style ETag setter.
    pub fn with_etag(mut self, etag: impl Into<String>) -> CacheEntry {
        self.etag = Some(etag.into());
        self
    }

    /// Whether the entry is still fresh at `now`.
    pub fn is_fresh(&self, now: SimTime) -> bool {
        now.saturating_since(self.validated_at) < self.ttl
    }

    /// When the entry expires.
    pub fn expires_at(&self) -> SimTime {
        self.validated_at + self.ttl
    }
}

/// The outcome of a cache lookup.
#[derive(Clone, Debug)]
pub enum CacheDecision {
    /// Fresh hit: serve locally, no upstream traffic.
    Fresh(CacheEntry),
    /// Stale hit: serve after revalidating upstream (a small conditional
    /// request; `304` re-arms freshness without a body transfer).
    Stale(CacheEntry),
    /// Not cached: full upstream fetch required.
    Miss,
}

/// Hit/miss statistics of an [`HttpCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fresh hits served locally.
    pub hits: u64,
    /// Stale hits needing revalidation.
    pub stale: u64,
    /// Misses needing a full fetch.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Fresh-hit ratio over all lookups; zero with no lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.stale + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A byte-budgeted LRU cache of HTTP objects keyed by URL.
#[derive(Debug)]
pub struct HttpCache {
    capacity_bytes: u64,
    used_bytes: u64,
    entries: HashMap<Url, (CacheEntry, u64)>, // (entry, lru stamp)
    clock: u64,
    stats: CacheStats,
}

impl HttpCache {
    /// Creates a cache bounded to `capacity_bytes` of body data.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_bytes: u64) -> HttpCache {
        assert!(capacity_bytes > 0, "cache capacity must be positive");
        HttpCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks a URL up, classifying the result and recording statistics.
    pub fn lookup(&mut self, url: &Url, now: SimTime) -> CacheDecision {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(url) {
            Some((entry, stamp)) => {
                *stamp = clock;
                if entry.is_fresh(now) {
                    self.stats.hits += 1;
                    CacheDecision::Fresh(entry.clone())
                } else {
                    self.stats.stale += 1;
                    CacheDecision::Stale(entry.clone())
                }
            }
            None => {
                self.stats.misses += 1;
                CacheDecision::Miss
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting LRU entries if the byte
    /// budget would be exceeded. Objects larger than the whole cache are
    /// not stored.
    pub fn insert(&mut self, url: Url, entry: CacheEntry) {
        let size = entry.body.len() as u64;
        if size > self.capacity_bytes {
            return;
        }
        if let Some((old, _)) = self.entries.remove(&url) {
            self.used_bytes -= old.body.len() as u64;
        }
        while self.used_bytes + size > self.capacity_bytes {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("used_bytes > 0 implies entries exist");
            let (old, _) = self.entries.remove(&lru).expect("chosen above");
            self.used_bytes -= old.body.len() as u64;
            self.stats.evictions += 1;
        }
        self.clock += 1;
        self.used_bytes += size;
        self.entries.insert(url, (entry, self.clock));
    }

    /// Marks an entry revalidated at `now` (a `304` came back). No-op for
    /// unknown URLs.
    pub fn revalidate(&mut self, url: &Url, now: SimTime) {
        if let Some((entry, _)) = self.entries.get_mut(url) {
            entry.validated_at = now;
        }
    }

    /// Removes an entry.
    pub fn remove(&mut self, url: &Url) -> Option<CacheEntry> {
        let (entry, _) = self.entries.remove(url)?;
        self.used_bytes -= entry.body.len() as u64;
        Some(entry)
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Server-side conditional-request handling: if the request's
/// `If-None-Match` matches `etag`, answer `304 Not Modified` (tiny);
/// otherwise a full `200` with the body and validators.
pub fn serve_with_validators(
    req: &Request,
    body: &Bytes,
    etag: &str,
    ttl: SimDuration,
) -> Response {
    let policy = FreshnessPolicy {
        max_age: Some(ttl),
        ..FreshnessPolicy::default()
    };
    if req.headers.get("if-none-match") == Some(etag) {
        return Response::new(StatusCode::NOT_MODIFIED)
            .with_header("etag", etag.to_owned())
            .with_header("cache-control", policy.to_header());
    }
    Response::ok(body.clone())
        .with_header("etag", etag.to_owned())
        .with_header("cache-control", policy.to_header())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Method;

    fn url(p: &str) -> Url {
        Url::https("origin.example", p)
    }

    #[test]
    fn freshness_policy_parse_roundtrip() {
        let p = FreshnessPolicy::parse("max-age=60, no-cache");
        assert_eq!(p.max_age, Some(SimDuration::from_secs(60)));
        assert!(p.no_cache);
        assert!(!p.no_store);
        assert_eq!(FreshnessPolicy::parse(&p.to_header()), p);
        assert!(FreshnessPolicy::parse("no-store").no_store);
        assert_eq!(FreshnessPolicy::parse("max-age=bogus").max_age, None);
    }

    #[test]
    fn entry_freshness() {
        let e = CacheEntry::new("x", SimDuration::from_secs(10), SimTime::ZERO);
        assert!(e.is_fresh(SimTime::from_secs(9)));
        assert!(!e.is_fresh(SimTime::from_secs(10)));
        assert_eq!(e.expires_at(), SimTime::from_secs(10));
    }

    #[test]
    fn lookup_classifies_fresh_stale_miss() {
        let mut c = HttpCache::new(1_000);
        let u = url("/a");
        assert!(matches!(c.lookup(&u, SimTime::ZERO), CacheDecision::Miss));
        c.insert(
            u.clone(),
            CacheEntry::new("aaaa", SimDuration::from_secs(5), SimTime::ZERO),
        );
        assert!(matches!(
            c.lookup(&u, SimTime::from_secs(1)),
            CacheDecision::Fresh(_)
        ));
        assert!(matches!(
            c.lookup(&u, SimTime::from_secs(6)),
            CacheDecision::Stale(_)
        ));
        let s = c.stats();
        assert_eq!((s.hits, s.stale, s.misses), (1, 1, 1));
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn revalidation_re_arms_freshness() {
        let mut c = HttpCache::new(1_000);
        let u = url("/a");
        c.insert(
            u.clone(),
            CacheEntry::new("aaaa", SimDuration::from_secs(5), SimTime::ZERO),
        );
        c.revalidate(&u, SimTime::from_secs(100));
        assert!(matches!(
            c.lookup(&u, SimTime::from_secs(104)),
            CacheDecision::Fresh(_)
        ));
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let mut c = HttpCache::new(10);
        let ttl = SimDuration::from_secs(100);
        c.insert(url("/a"), CacheEntry::new(vec![0u8; 4], ttl, SimTime::ZERO));
        c.insert(url("/b"), CacheEntry::new(vec![0u8; 4], ttl, SimTime::ZERO));
        // Touch /a so /b becomes LRU.
        let _ = c.lookup(&url("/a"), SimTime::ZERO);
        c.insert(url("/c"), CacheEntry::new(vec![0u8; 4], ttl, SimTime::ZERO));
        assert!(c.len() == 2);
        assert!(matches!(
            c.lookup(&url("/b"), SimTime::ZERO),
            CacheDecision::Miss
        ));
        assert!(matches!(
            c.lookup(&url("/a"), SimTime::ZERO),
            CacheDecision::Fresh(_)
        ));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.used_bytes() <= 10);
    }

    #[test]
    fn oversized_objects_not_cached() {
        let mut c = HttpCache::new(10);
        c.insert(
            url("/big"),
            CacheEntry::new(vec![0u8; 100], SimDuration::from_secs(1), SimTime::ZERO),
        );
        assert!(c.is_empty());
    }

    #[test]
    fn replacing_entry_updates_bytes() {
        let mut c = HttpCache::new(100);
        let ttl = SimDuration::from_secs(1);
        c.insert(
            url("/a"),
            CacheEntry::new(vec![0u8; 50], ttl, SimTime::ZERO),
        );
        c.insert(
            url("/a"),
            CacheEntry::new(vec![0u8; 20], ttl, SimTime::ZERO),
        );
        assert_eq!(c.used_bytes(), 20);
        assert_eq!(c.len(), 1);
        assert_eq!(c.remove(&url("/a")).unwrap().body.len(), 20);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn conditional_serving() {
        let body = Bytes::from_static(b"content body");
        let ttl = SimDuration::from_secs(30);
        let plain = Request::new(Method::Get, url("/x"));
        let full = serve_with_validators(&plain, &body, "\"v1\"", ttl);
        assert_eq!(full.status, StatusCode::OK);
        assert_eq!(full.headers.get("etag"), Some("\"v1\""));

        let cond = Request::new(Method::Get, url("/x")).with_header("if-none-match", "\"v1\"");
        let nm = serve_with_validators(&cond, &body, "\"v1\"", ttl);
        assert_eq!(nm.status, StatusCode::NOT_MODIFIED);
        assert!(nm.body.is_empty());
        // A 304 is far smaller on the wire than the full object.
        assert!(nm.wire_size() < full.wire_size());

        let stale_tag = Request::new(Method::Get, url("/x")).with_header("if-none-match", "\"v0\"");
        assert_eq!(
            serve_with_validators(&stale_tag, &body, "\"v1\"", ttl).status,
            StatusCode::OK
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = HttpCache::new(0);
    }
}
