//! Property-based tests of the HTTP substrate.

use crate::cache::FreshnessPolicy;
use crate::message::Headers;
use crate::range::ByteRange;
use crate::url::Url;
use proptest::prelude::*;

proptest! {
    /// Any URL built from sane parts survives a display/parse round trip.
    #[test]
    fn url_roundtrip(
        host in "[a-z][a-z0-9.-]{0,20}[a-z0-9]",
        path in "(/[a-zA-Z0-9._-]{1,12}){0,5}",
        port in proptest::option::of(1u16..),
    ) {
        let mut u = Url::https(&host, if path.is_empty() { "/" } else { &path });
        if let Some(p) = port {
            u = u.with_port(p);
        }
        let parsed: Url = u.to_string().parse().expect("displayed URLs parse");
        prop_assert_eq!(parsed, u);
    }

    /// Range splitting covers `total` exactly, contiguously, in order.
    #[test]
    fn range_split_partitions(total in 1u64..1_000_000, n in 1usize..64) {
        let ranges = ByteRange::split(total, n);
        prop_assert!(!ranges.is_empty());
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().expect("non-empty").end, total - 1);
        let sum: u64 = ranges.iter().map(ByteRange::len).sum();
        prop_assert_eq!(sum, total);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[1].start, w[0].end + 1);
        }
        prop_assert!(ranges.len() <= n);
    }

    /// Range header formatting round-trips.
    #[test]
    fn range_header_roundtrip(start in 0u64..1_000_000, len in 1u64..1_000_000) {
        let r = ByteRange::new(start, start + len - 1);
        prop_assert_eq!(ByteRange::parse(&format!("bytes={r}")), Some(r));
        prop_assert_eq!(ByteRange::parse(&r.to_header()), Some(r));
    }

    /// Header names are case-insensitive and last-write-wins.
    #[test]
    fn headers_case_insensitivity(
        name in "[A-Za-z][A-Za-z0-9-]{0,15}",
        v1 in "[ -~]{0,20}",
        v2 in "[ -~]{0,20}",
    ) {
        let mut h = Headers::new();
        h.set(&name, v1);
        h.set(&name.to_ascii_uppercase(), v2.clone());
        prop_assert_eq!(h.len(), 1);
        prop_assert_eq!(h.get(&name.to_ascii_lowercase()), Some(v2.as_str()));
    }

    /// Cache-Control parse/format round-trips on the supported subset.
    #[test]
    fn freshness_policy_roundtrip(
        max_age in proptest::option::of(0u64..1_000_000),
        no_store in any::<bool>(),
        no_cache in any::<bool>(),
    ) {
        let p = FreshnessPolicy {
            max_age: max_age.map(hpop_netsim::time::SimDuration::from_secs),
            no_store,
            no_cache,
        };
        prop_assert_eq!(FreshnessPolicy::parse(&p.to_header()), p);
    }
}
