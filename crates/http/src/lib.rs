//! # hpop-http — HTTP/1.1 and WebDAV message model
//!
//! The paper builds every service on HTTP: the data attic "chose HTTP(S)
//! as the basis … and implements a data attic as a WebDAV server"
//! (§IV-A); NoCDN peers are reverse proxies with virtual hosting and
//! clients may fetch "objects in chunks (e.g., using HTTP range
//! requests)" (§IV-B); Internet@home lives on cache-control semantics
//! (§IV-D). This crate is that shared substrate:
//!
//! - [`url`] — a minimal URL type (scheme/host/path).
//! - [`message`] — methods (including the WebDAV verbs), status codes,
//!   case-insensitive headers, request/response builders.
//! - [`range`] — byte-range requests and `206 Partial Content`.
//! - [`cache`] — freshness (max-age/TTL), validators (ETag), conditional
//!   revalidation (`304 Not Modified`), and an LRU object cache driven by
//!   simulated time.
//! - [`vhost`] — a virtual-host router mapping `Host:` to handlers (the
//!   NoCDN peer signs up with many content providers on one appliance).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod proptests;

pub mod cache;
pub mod h1;
pub mod message;
pub mod range;
pub mod url;
pub mod vhost;

pub use cache::{CacheDecision, CacheEntry, FreshnessPolicy, HttpCache};
pub use message::{Headers, Method, Request, Response, StatusCode};
pub use range::ByteRange;
pub use url::Url;
pub use vhost::{Handler, VirtualHosts};
