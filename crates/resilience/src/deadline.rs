//! Propagating time budgets.
//!
//! A [`Deadline`] is an *absolute* instant on the simulation clock by
//! which an operation must finish. Nested calls receive the same
//! deadline (or a tighter [`Deadline::child`]), so a slow first hop
//! automatically shrinks what every later hop may spend — the whole
//! call tree shares one budget instead of stacking per-layer timeouts
//! that can add up to more time than the user was promised.

use hpop_netsim::time::{SimDuration, SimTime};

/// An absolute completion budget on the simulation clock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Deadline {
    expires_at: SimTime,
}

impl Deadline {
    /// A deadline `budget` from `now`.
    pub fn after(now: SimTime, budget: SimDuration) -> Deadline {
        Deadline {
            expires_at: SimTime::from_nanos(now.as_nanos().saturating_add(budget.as_nanos())),
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(expires_at: SimTime) -> Deadline {
        Deadline { expires_at }
    }

    /// The never-expiring deadline (for paths without a budget).
    pub const UNBOUNDED: Deadline = Deadline {
        expires_at: SimTime::MAX,
    };

    /// The absolute expiry instant.
    pub fn expires_at(&self) -> SimTime {
        self.expires_at
    }

    /// Whether the budget is spent at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.expires_at
    }

    /// Budget left at `now` (zero once expired).
    pub fn remaining(&self, now: SimTime) -> SimDuration {
        self.expires_at.saturating_since(now)
    }

    /// A nested deadline: at most `budget` from `now`, never later than
    /// the parent. This is how a deadline *propagates*: each nested
    /// call takes `parent.child(now, its_own_cap)` and can only ever
    /// tighten the budget, not extend it.
    pub fn child(&self, now: SimTime, budget: SimDuration) -> Deadline {
        let child = Deadline::after(now, budget);
        Deadline {
            expires_at: child.expires_at.min(self.expires_at),
        }
    }

    /// Whether a pause of `wait` starting at `now` would cross the
    /// deadline (the retry layer asks this before sleeping).
    pub fn allows_wait(&self, now: SimTime, wait: SimDuration) -> bool {
        SimTime::from_nanos(now.as_nanos().saturating_add(wait.as_nanos())) < self.expires_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn expiry_and_remaining() {
        let dl = Deadline::after(t(10), d(5));
        assert!(!dl.expired(t(14)));
        assert!(dl.expired(t(15)));
        assert_eq!(dl.remaining(t(12)), d(3));
        assert_eq!(dl.remaining(t(20)), SimDuration::ZERO);
    }

    #[test]
    fn child_only_tightens() {
        let parent = Deadline::after(t(0), d(10));
        // A generous child cap is clamped to the parent.
        assert_eq!(parent.child(t(8), d(60)).expires_at(), t(10));
        // A tight child cap wins over the parent.
        assert_eq!(parent.child(t(2), d(1)).expires_at(), t(3));
    }

    #[test]
    fn unbounded_never_expires() {
        assert!(!Deadline::UNBOUNDED.expired(SimTime::from_secs(u64::MAX / 2_000_000_000)));
        assert!(Deadline::UNBOUNDED.allows_wait(t(0), SimDuration::from_secs(1_000_000)));
    }

    #[test]
    fn allows_wait_checks_the_sum() {
        let dl = Deadline::after(t(0), d(10));
        assert!(dl.allows_wait(t(4), d(5)));
        assert!(!dl.allows_wait(t(4), d(6))); // lands exactly on expiry
        assert!(!dl.allows_wait(t(11), SimDuration::ZERO));
    }

    #[test]
    fn saturating_construction() {
        let dl = Deadline::after(SimTime::from_nanos(u64::MAX - 5), SimDuration::from_secs(1));
        assert_eq!(dl.expires_at(), SimTime::MAX);
    }
}
