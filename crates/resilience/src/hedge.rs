//! Tail-latency hedging.
//!
//! §IV-B's chunked multi-peer downloads put object delivery at the
//! mercy of the *slowest* peer touched. A [`Hedge`] watches observed
//! fetch latencies and, once a request has been outstanding longer
//! than the p99-informed trigger, tells the caller to launch a second
//! copy of the request against a different peer — whichever answer
//! arrives first wins and the loser's bytes are accounted as waste
//! (`resilience.hedge.wasted_bytes`), the metric E20 budgets.
//!
//! **Overload gate.** Hedging is a load *amplifier*: every fired hedge
//! is a second full request, and under a flash crowd slow responses
//! are caused by saturation — exactly when a doubled request makes
//! things worse. A hedge can therefore be wired to a
//! [`SaturationSignal`] (via [`Hedge::attach_saturation`]): once the
//! published saturation reaches `saturation_gate`, `should_hedge`
//! answers `false` and suppressed hedges are counted under
//! `resilience.hedge.suppressed`. Detached (the default), behavior is
//! unchanged.

use crate::admission::SaturationSignal;
use hpop_netsim::time::{SimDuration, SimTime};

/// Hedge tuning.
#[derive(Clone, Copy, Debug)]
pub struct HedgeConfig {
    /// Trigger quantile on the observed latency distribution (0.99 =
    /// fire when the request outlives the p99).
    pub quantile: f64,
    /// Trigger floor: never hedge earlier than this.
    pub min_trigger: SimDuration,
    /// Trigger used until enough samples exist.
    pub cold_trigger: SimDuration,
    /// Samples needed before the measured quantile is trusted.
    pub min_samples: usize,
    /// Saturation at or above which hedging is suppressed (only
    /// effective once a [`SaturationSignal`] is attached).
    pub saturation_gate: f64,
}

impl Default for HedgeConfig {
    fn default() -> HedgeConfig {
        HedgeConfig {
            quantile: 0.99,
            min_trigger: SimDuration::from_millis(20),
            cold_trigger: SimDuration::from_millis(500),
            min_samples: 32,
            saturation_gate: 0.7,
        }
    }
}

/// Observed-latency tracker with a p99-informed hedge trigger.
#[derive(Clone, Debug)]
pub struct Hedge {
    cfg: HedgeConfig,
    /// Completed-fetch latencies in nanoseconds (kept sorted).
    samples_ns: Vec<u64>,
    /// Published system saturation; hedging suppressed at the gate.
    saturation: Option<SaturationSignal>,
}

impl Hedge {
    /// A cold hedge (uses `cold_trigger` until warmed up).
    pub fn new(cfg: HedgeConfig) -> Hedge {
        Hedge {
            cfg,
            samples_ns: Vec::new(),
            saturation: None,
        }
    }

    /// Wires the hedge to a shared saturation signal: once the
    /// published value reaches `cfg.saturation_gate`,
    /// [`should_hedge`](Hedge::should_hedge) answers `false` — the
    /// amplification fix for flash crowds.
    pub fn attach_saturation(&mut self, signal: SaturationSignal) {
        self.saturation = Some(signal);
    }

    /// Whether hedging is currently suppressed by the overload gate.
    pub fn gated(&self) -> bool {
        self.saturation
            .as_ref()
            .is_some_and(|s| s.get() >= self.cfg.saturation_gate)
    }

    /// The saturation threshold at which hedging stands down.
    pub fn saturation_gate(&self) -> f64 {
        self.cfg.saturation_gate
    }

    /// Gate check at fire time: may a hedge launch given
    /// `extra_saturation` (a locally-measured signal — e.g. the
    /// caller's breaker-bank or admission saturation — combined with
    /// any attached [`SaturationSignal`])? Suppressions are counted
    /// under `resilience.hedge.suppressed`.
    pub fn allow_fire(&self, extra_saturation: f64) -> bool {
        let attached = self.saturation.as_ref().map_or(0.0, |s| s.get());
        if extra_saturation.max(attached) >= self.cfg.saturation_gate {
            hpop_obs::metrics()
                .counter("resilience.hedge.suppressed")
                .incr();
            false
        } else {
            true
        }
    }

    /// Records one completed fetch's latency.
    pub fn record(&mut self, latency: SimDuration) {
        let ns = latency.as_nanos();
        let at = self.samples_ns.partition_point(|&s| s <= ns);
        self.samples_ns.insert(at, ns);
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> usize {
        self.samples_ns.len()
    }

    /// The current hedge trigger: the configured quantile of observed
    /// latencies once warm, `cold_trigger` before that, never below
    /// `min_trigger`.
    pub fn trigger(&self) -> SimDuration {
        if self.samples_ns.len() < self.cfg.min_samples.max(1) {
            return self.cfg.cold_trigger.max(self.cfg.min_trigger);
        }
        let q = self.cfg.quantile.clamp(0.0, 1.0);
        let idx = ((self.samples_ns.len() - 1) as f64 * q).round() as usize;
        SimDuration::from_nanos(self.samples_ns[idx]).max(self.cfg.min_trigger)
    }

    /// Whether a request issued at `issued_at` should be hedged at
    /// `now` (it has outlived the trigger without completing). Always
    /// `false` while the saturation gate is engaged — a hedge is a
    /// second request, and launching extra load into a saturated
    /// system is how retry storms start.
    pub fn should_hedge(&self, issued_at: SimTime, now: SimTime) -> bool {
        if now.saturating_since(issued_at) < self.trigger() {
            return false;
        }
        if self.gated() {
            hpop_obs::metrics()
                .counter("resilience.hedge.suppressed")
                .incr();
            return false;
        }
        true
    }

    /// Accounts a fired hedge whose loser transferred `wasted_bytes`.
    pub fn account_fired(&self, wasted_bytes: u64) {
        let m = hpop_obs::metrics();
        m.counter("resilience.hedge.fired").incr();
        m.counter("resilience.hedge.wasted_bytes").add(wasted_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn cfg() -> HedgeConfig {
        HedgeConfig {
            quantile: 0.99,
            min_trigger: ms(5),
            cold_trigger: ms(200),
            min_samples: 10,
            saturation_gate: 0.7,
        }
    }

    #[test]
    fn cold_hedge_uses_cold_trigger() {
        let h = Hedge::new(cfg());
        assert_eq!(h.trigger(), ms(200));
        assert!(!h.should_hedge(SimTime::ZERO, SimTime::from_nanos(199_000_000)));
        assert!(h.should_hedge(SimTime::ZERO, SimTime::from_nanos(200_000_000)));
    }

    #[test]
    fn warm_trigger_tracks_p99() {
        let mut h = Hedge::new(cfg());
        // 99 fast fetches, one slow straggler.
        for _ in 0..99 {
            h.record(ms(10));
        }
        h.record(ms(400));
        let trig = h.trigger();
        assert!(trig >= ms(10) && trig <= ms(400), "trigger {trig:?}");
        // A request slower than the trigger hedges; a fast one doesn't.
        assert!(h.should_hedge(SimTime::ZERO, SimTime::ZERO + ms(401)));
        assert!(!h.should_hedge(SimTime::ZERO, SimTime::ZERO + ms(1)));
    }

    #[test]
    fn min_trigger_floors_fast_distributions() {
        let mut h = Hedge::new(cfg());
        for _ in 0..50 {
            h.record(SimDuration::from_nanos(10));
        }
        assert_eq!(h.trigger(), ms(5));
    }

    #[test]
    fn saturation_gate_suppresses_hedging() {
        use crate::admission::SaturationSignal;
        let mut h = Hedge::new(HedgeConfig {
            saturation_gate: 0.7,
            ..cfg()
        });
        let sig = SaturationSignal::new();
        h.attach_saturation(sig.clone());
        let late = SimTime::ZERO + ms(500); // well past the cold trigger
        assert!(h.should_hedge(SimTime::ZERO, late), "idle system hedges");
        sig.publish(0.9);
        assert!(h.gated());
        assert!(!h.should_hedge(SimTime::ZERO, late), "saturated: gated");
        sig.publish(0.3);
        assert!(h.should_hedge(SimTime::ZERO, late), "recovered: hedges");
    }

    #[test]
    fn samples_stay_sorted() {
        let mut h = Hedge::new(cfg());
        for v in [30u64, 10, 20, 40, 15] {
            h.record(ms(v));
        }
        assert_eq!(h.samples(), 5);
        let sorted: Vec<u64> = h.samples_ns.clone();
        let mut expect = sorted.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }
}
