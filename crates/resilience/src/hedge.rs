//! Tail-latency hedging.
//!
//! §IV-B's chunked multi-peer downloads put object delivery at the
//! mercy of the *slowest* peer touched. A [`Hedge`] watches observed
//! fetch latencies and, once a request has been outstanding longer
//! than the p99-informed trigger, tells the caller to launch a second
//! copy of the request against a different peer — whichever answer
//! arrives first wins and the loser's bytes are accounted as waste
//! (`resilience.hedge.wasted_bytes`), the metric E20 budgets.

use hpop_netsim::time::{SimDuration, SimTime};

/// Hedge tuning.
#[derive(Clone, Copy, Debug)]
pub struct HedgeConfig {
    /// Trigger quantile on the observed latency distribution (0.99 =
    /// fire when the request outlives the p99).
    pub quantile: f64,
    /// Trigger floor: never hedge earlier than this.
    pub min_trigger: SimDuration,
    /// Trigger used until enough samples exist.
    pub cold_trigger: SimDuration,
    /// Samples needed before the measured quantile is trusted.
    pub min_samples: usize,
}

impl Default for HedgeConfig {
    fn default() -> HedgeConfig {
        HedgeConfig {
            quantile: 0.99,
            min_trigger: SimDuration::from_millis(20),
            cold_trigger: SimDuration::from_millis(500),
            min_samples: 32,
        }
    }
}

/// Observed-latency tracker with a p99-informed hedge trigger.
#[derive(Clone, Debug)]
pub struct Hedge {
    cfg: HedgeConfig,
    /// Completed-fetch latencies in nanoseconds (kept sorted).
    samples_ns: Vec<u64>,
}

impl Hedge {
    /// A cold hedge (uses `cold_trigger` until warmed up).
    pub fn new(cfg: HedgeConfig) -> Hedge {
        Hedge {
            cfg,
            samples_ns: Vec::new(),
        }
    }

    /// Records one completed fetch's latency.
    pub fn record(&mut self, latency: SimDuration) {
        let ns = latency.as_nanos();
        let at = self.samples_ns.partition_point(|&s| s <= ns);
        self.samples_ns.insert(at, ns);
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> usize {
        self.samples_ns.len()
    }

    /// The current hedge trigger: the configured quantile of observed
    /// latencies once warm, `cold_trigger` before that, never below
    /// `min_trigger`.
    pub fn trigger(&self) -> SimDuration {
        if self.samples_ns.len() < self.cfg.min_samples.max(1) {
            return self.cfg.cold_trigger.max(self.cfg.min_trigger);
        }
        let q = self.cfg.quantile.clamp(0.0, 1.0);
        let idx = ((self.samples_ns.len() - 1) as f64 * q).round() as usize;
        SimDuration::from_nanos(self.samples_ns[idx]).max(self.cfg.min_trigger)
    }

    /// Whether a request issued at `issued_at` should be hedged at
    /// `now` (it has outlived the trigger without completing).
    pub fn should_hedge(&self, issued_at: SimTime, now: SimTime) -> bool {
        now.saturating_since(issued_at) >= self.trigger()
    }

    /// Accounts a fired hedge whose loser transferred `wasted_bytes`.
    pub fn account_fired(&self, wasted_bytes: u64) {
        let m = hpop_obs::metrics();
        m.counter("resilience.hedge.fired").incr();
        m.counter("resilience.hedge.wasted_bytes").add(wasted_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn cfg() -> HedgeConfig {
        HedgeConfig {
            quantile: 0.99,
            min_trigger: ms(5),
            cold_trigger: ms(200),
            min_samples: 10,
        }
    }

    #[test]
    fn cold_hedge_uses_cold_trigger() {
        let h = Hedge::new(cfg());
        assert_eq!(h.trigger(), ms(200));
        assert!(!h.should_hedge(SimTime::ZERO, SimTime::from_nanos(199_000_000)));
        assert!(h.should_hedge(SimTime::ZERO, SimTime::from_nanos(200_000_000)));
    }

    #[test]
    fn warm_trigger_tracks_p99() {
        let mut h = Hedge::new(cfg());
        // 99 fast fetches, one slow straggler.
        for _ in 0..99 {
            h.record(ms(10));
        }
        h.record(ms(400));
        let trig = h.trigger();
        assert!(trig >= ms(10) && trig <= ms(400), "trigger {trig:?}");
        // A request slower than the trigger hedges; a fast one doesn't.
        assert!(h.should_hedge(SimTime::ZERO, SimTime::ZERO + ms(401)));
        assert!(!h.should_hedge(SimTime::ZERO, SimTime::ZERO + ms(1)));
    }

    #[test]
    fn min_trigger_floors_fast_distributions() {
        let mut h = Hedge::new(cfg());
        for _ in 0..50 {
            h.record(SimDuration::from_nanos(10));
        }
        assert_eq!(h.trigger(), ms(5));
    }

    #[test]
    fn samples_stay_sorted() {
        let mut h = Hedge::new(cfg());
        for v in [30u64, 10, 20, 40, 15] {
            h.record(ms(v));
        }
        assert_eq!(h.samples(), 5);
        let sorted: Vec<u64> = h.samples_ns.clone();
        let mut expect = sorted.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }
}
