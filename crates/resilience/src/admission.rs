//! Admission control: token buckets + AIMD concurrency limits.
//!
//! Every HPoP service used to accept unbounded work; a metro-scale
//! flash crowd (thousands of homes converging on the same rising-head
//! objects) would pile requests into queues until latency — and then
//! memory — blew up. Admission control turns that collapse into a
//! *typed refusal*: callers get [`Overloaded`] with a concrete
//! `retry_after` hint instead of a request that silently waits forever.
//!
//! Two mechanisms compose inside one [`Admission`] controller:
//!
//! - a **token bucket** bounds sustained *rate* (requests/s with a
//!   burst allowance) — the classic front door against flash crowds;
//! - an **AIMD concurrency limit** bounds *inflight work*, probing
//!   upward one permit per success window and multiplicatively backing
//!   off when completions report overload — so the limit converges on
//!   whatever the backend can actually sustain, without configuration.
//!
//! Queue-depth backpressure feeds in through
//! [`Admission::set_queue_pressure`]: a bounded work queue
//! ([`crate::queue::BoundedQueue`]) reports its fill fraction and the
//! controller's [saturation](Admission::saturation) — the scalar the
//! [`Brownout`](crate::brownout::Brownout) ladder and the
//! [`LoadShedder`](crate::shed::LoadShedder) act on — rises with it.
//!
//! All state advances on the simulated clock; nothing here allocates
//! after construction, so per-request admission is metro-tick cheap.

use hpop_netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Typed rejection: the service is saturated; come back later.
///
/// `retry_after` is a *hint* derived from the refusing mechanism — the
/// token refill time when the bucket is dry, a fixed backoff when the
/// concurrency limit is full. The attic daemon surfaces it as an HTTP
/// `Retry-After` header; in-process callers feed it to their
/// [`RetryPolicy`](crate::RetryPolicy) as a floor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Overloaded {
    /// Suggested wait before retrying.
    pub retry_after: SimDuration,
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overloaded; retry after {:.0} ms",
            self.retry_after.as_millis_f64()
        )
    }
}

impl std::error::Error for Overloaded {}

/// Admission tuning.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Sustained request rate the bucket refills at (tokens/second).
    pub rate_per_sec: f64,
    /// Burst allowance: bucket capacity in tokens.
    pub burst: f64,
    /// Initial AIMD concurrency limit (permits).
    pub initial_limit: f64,
    /// Lower bound the multiplicative decrease can never cross.
    pub min_limit: f64,
    /// Upper bound the additive increase can never cross.
    pub max_limit: f64,
    /// Additive increase per fully-successful completion.
    pub add_per_success: f64,
    /// Multiplicative decrease factor applied on an overload signal.
    pub multiply_on_overload: f64,
    /// `retry_after` hint when the concurrency limit (not the bucket)
    /// is the refusing mechanism.
    pub inflight_retry_after: SimDuration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            rate_per_sec: 100.0,
            burst: 50.0,
            initial_limit: 16.0,
            min_limit: 1.0,
            max_limit: 1024.0,
            add_per_success: 1.0,
            multiply_on_overload: 0.5,
            inflight_retry_after: SimDuration::from_millis(100),
        }
    }
}

/// A classic token bucket on the simulated clock.
///
/// Tokens refill continuously at `refill_per_sec` up to `capacity`;
/// [`try_take`](TokenBucket::try_take) either deducts or refuses with
/// the exact time until enough tokens will exist.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// A full bucket at `now`.
    pub fn new(capacity: f64, refill_per_sec: f64, now: SimTime) -> TokenBucket {
        TokenBucket {
            capacity: capacity.max(0.0),
            refill_per_sec: refill_per_sec.max(0.0),
            tokens: capacity.max(0.0),
            last_refill: now,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_refill).as_secs_f64();
        if dt > 0.0 {
            self.tokens = (self.tokens + dt * self.refill_per_sec).min(self.capacity);
            self.last_refill = now;
        }
    }

    /// Takes `n` tokens, or refuses with the wait until they exist.
    pub fn try_take(&mut self, now: SimTime, n: f64) -> Result<(), Overloaded> {
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            Ok(())
        } else {
            Err(Overloaded {
                retry_after: self.eta(n),
            })
        }
    }

    /// Time until `n` tokens would be available if none are spent.
    fn eta(&self, n: f64) -> SimDuration {
        let missing = (n - self.tokens).max(0.0);
        if self.refill_per_sec <= 0.0 {
            SimDuration::MAX
        } else {
            SimDuration::from_secs_f64(missing / self.refill_per_sec)
        }
    }

    /// Tokens currently available (after a virtual refill to `now`).
    pub fn available(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_refill).as_secs_f64();
        (self.tokens + dt * self.refill_per_sec).min(self.capacity)
    }

    /// Bucket capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

/// An AIMD (additive-increase / multiplicative-decrease) concurrency
/// limit, TCP-style: probe capacity upward gently, back off hard on a
/// loss signal. Converges on the backend's true service capacity
/// without knowing it in advance.
#[derive(Clone, Copy, Debug)]
pub struct AimdLimit {
    limit: f64,
    min_limit: f64,
    max_limit: f64,
    add_per_success: f64,
    multiply_on_overload: f64,
    inflight: u32,
}

impl AimdLimit {
    /// A limit starting at `initial`, clamped to `[min, max]`.
    pub fn new(initial: f64, min: f64, max: f64, add: f64, multiply: f64) -> AimdLimit {
        let min = min.max(1.0);
        let max = max.max(min);
        AimdLimit {
            limit: initial.clamp(min, max),
            min_limit: min,
            max_limit: max,
            add_per_success: add.max(0.0),
            multiply_on_overload: multiply.clamp(0.0, 1.0),
            inflight: 0,
        }
    }

    /// Acquires a permit if inflight work is below the current limit.
    pub fn try_acquire(&mut self) -> bool {
        if (self.inflight as f64) < self.limit.floor() {
            self.inflight += 1;
            true
        } else {
            false
        }
    }

    /// Releases a permit. `overloaded` is the completion's verdict on
    /// the backend: `true` shrinks the limit multiplicatively, `false`
    /// grows it additively (scaled down by the current limit so growth
    /// is one permit per round-trip *window*, not per completion).
    pub fn release(&mut self, overloaded: bool) {
        self.inflight = self.inflight.saturating_sub(1);
        if overloaded {
            self.limit = (self.limit * self.multiply_on_overload).max(self.min_limit);
        } else {
            self.limit =
                (self.limit + self.add_per_success / self.limit.max(1.0)).min(self.max_limit);
        }
    }

    /// The current (fractional) limit.
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// Permits currently held.
    pub fn inflight(&self) -> u32 {
        self.inflight
    }

    /// Fill fraction: inflight over limit, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        (self.inflight as f64 / self.limit.max(1.0)).clamp(0.0, 1.0)
    }
}

/// The composed admission controller for one service (or one peer of a
/// service): token-bucket rate gate in front of an AIMD concurrency
/// gate, with queue-depth pressure mixed into the saturation signal.
///
/// Protocol: call [`try_admit`](Admission::try_admit) before doing the
/// work; on `Ok(())` the permit is held and **must** be returned with
/// [`complete`](Admission::complete) (passing the overload verdict).
/// On `Err(Overloaded)` nothing is held.
#[derive(Clone, Debug)]
pub struct Admission {
    bucket: TokenBucket,
    aimd: AimdLimit,
    queue_pressure: f64,
    inflight_retry_after: SimDuration,
    admitted: u64,
    rejected: u64,
}

impl Admission {
    /// A controller at `now` from `cfg`.
    pub fn new(cfg: AdmissionConfig, now: SimTime) -> Admission {
        Admission {
            bucket: TokenBucket::new(cfg.burst, cfg.rate_per_sec, now),
            aimd: AimdLimit::new(
                cfg.initial_limit,
                cfg.min_limit,
                cfg.max_limit,
                cfg.add_per_success,
                cfg.multiply_on_overload,
            ),
            queue_pressure: 0.0,
            inflight_retry_after: cfg.inflight_retry_after,
            admitted: 0,
            rejected: 0,
        }
    }

    /// Tries to admit one request at `now`. `Ok` holds a concurrency
    /// permit that must be released via [`complete`](Admission::complete).
    pub fn try_admit(&mut self, now: SimTime) -> Result<(), Overloaded> {
        if let Err(over) = self.bucket.try_take(now, 1.0) {
            self.rejected += 1;
            hpop_obs::metrics()
                .counter("resilience.admission.reject_rate")
                .incr();
            return Err(over);
        }
        if !self.aimd.try_acquire() {
            // Refund the rate token: the request never ran.
            self.bucket.tokens = (self.bucket.tokens + 1.0).min(self.bucket.capacity);
            self.rejected += 1;
            hpop_obs::metrics()
                .counter("resilience.admission.reject_inflight")
                .incr();
            return Err(Overloaded {
                retry_after: self.inflight_retry_after,
            });
        }
        self.admitted += 1;
        Ok(())
    }

    /// Returns the permit taken by a successful
    /// [`try_admit`](Admission::try_admit). `overloaded` is the
    /// completion's verdict (timed out / shed / refused downstream)
    /// and drives the AIMD window.
    pub fn complete(&mut self, overloaded: bool) {
        self.aimd.release(overloaded);
    }

    /// Feeds the bounded-queue fill fraction (clamped to `[0, 1]`)
    /// into the saturation signal.
    pub fn set_queue_pressure(&mut self, pressure: f64) {
        self.queue_pressure = pressure.clamp(0.0, 1.0);
    }

    /// The scalar saturation signal in `[0, 1]`: the worst of
    /// concurrency utilization, rate-bucket depletion, and queue
    /// pressure. 0 = idle, 1 = refusing work.
    pub fn saturation(&self, now: SimTime) -> f64 {
        let bucket_depletion = if self.bucket.capacity() > 0.0 {
            1.0 - (self.bucket.available(now) / self.bucket.capacity())
        } else {
            0.0
        };
        self.aimd
            .utilization()
            .max(bucket_depletion)
            .max(self.queue_pressure)
    }

    /// The AIMD gate (for inspection / tests).
    pub fn aimd(&self) -> &AimdLimit {
        &self.aimd
    }

    /// Requests admitted since construction.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests rejected since construction.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

/// Keyed admission controllers — one per peer, created on first use.
/// The NoCDN fetcher uses this to cap concurrency *per serving peer*
/// so one hot peer saturating does not stall fetches from others.
#[derive(Clone, Debug)]
pub struct AdmissionBank<K: Ord + Copy> {
    cfg: AdmissionConfig,
    controllers: BTreeMap<K, Admission>,
}

impl<K: Ord + Copy> AdmissionBank<K> {
    /// An empty bank stamping new controllers from `cfg`.
    pub fn new(cfg: AdmissionConfig) -> AdmissionBank<K> {
        AdmissionBank {
            cfg,
            controllers: BTreeMap::new(),
        }
    }

    /// The controller for `key`, created fresh (at `now`) if new.
    pub fn controller(&mut self, key: K, now: SimTime) -> &mut Admission {
        let cfg = self.cfg;
        self.controllers
            .entry(key)
            .or_insert_with(|| Admission::new(cfg, now))
    }

    /// Tries to admit one request against `key`'s controller.
    pub fn try_admit(&mut self, key: K, now: SimTime) -> Result<(), Overloaded> {
        self.controller(key, now).try_admit(now)
    }

    /// Completes a request admitted against `key`.
    pub fn complete(&mut self, key: K, overloaded: bool) {
        if let Some(c) = self.controllers.get_mut(&key) {
            c.complete(overloaded);
        }
    }

    /// The worst saturation across all controllers (0.0 when empty).
    pub fn saturation(&self, now: SimTime) -> f64 {
        self.controllers
            .values()
            .map(|c| c.saturation(now))
            .fold(0.0, f64::max)
    }
}

/// A lock-free shared saturation scalar (f64 bits in an atomic) that
/// decouples the component *measuring* load from the components
/// *reacting* to it — e.g. the coop cache's admission controller
/// publishes here and the NoCDN [`Hedge`](crate::Hedge) gate reads it
/// without holding any lock on the cache.
#[derive(Clone, Debug, Default)]
pub struct SaturationSignal {
    bits: Arc<AtomicU64>,
}

impl SaturationSignal {
    /// A signal starting at 0.0 (idle).
    pub fn new() -> SaturationSignal {
        SaturationSignal::default()
    }

    /// Publishes the current saturation (clamped to `[0, 1]`).
    pub fn publish(&self, saturation: f64) {
        self.bits
            .store(saturation.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    }

    /// The last published saturation.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_ms(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            rate_per_sec: 10.0,
            burst: 5.0,
            initial_limit: 2.0,
            min_limit: 1.0,
            max_limit: 8.0,
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn bucket_enforces_rate_and_reports_eta() {
        let mut b = TokenBucket::new(2.0, 10.0, t_ms(0));
        assert!(b.try_take(t_ms(0), 1.0).is_ok());
        assert!(b.try_take(t_ms(0), 1.0).is_ok());
        let err = b.try_take(t_ms(0), 1.0).unwrap_err();
        // 1 token at 10/s = 100 ms away.
        assert!((err.retry_after.as_millis_f64() - 100.0).abs() < 1.0);
        // After the hinted wait the take succeeds.
        assert!(b.try_take(t_ms(100), 1.0).is_ok());
    }

    #[test]
    fn aimd_grows_on_success_shrinks_on_overload() {
        let mut a = AimdLimit::new(4.0, 1.0, 64.0, 1.0, 0.5);
        assert!(a.try_acquire());
        a.release(false);
        assert!(a.limit() > 4.0);
        assert!(a.try_acquire());
        a.release(true);
        assert!(a.limit() < 4.0, "halved from ~4.25");
        // Floor holds under repeated overload.
        for _ in 0..20 {
            assert!(a.try_acquire());
            a.release(true);
        }
        assert!((a.limit() - 1.0).abs() < f64::EPSILON);
        // With limit at the floor exactly one permit exists.
        assert!(a.try_acquire());
        assert!(!a.try_acquire());
    }

    #[test]
    fn admission_rejects_on_inflight_and_refunds_rate_token() {
        let mut adm = Admission::new(cfg(), t_ms(0));
        assert!(adm.try_admit(t_ms(0)).is_ok());
        assert!(adm.try_admit(t_ms(0)).is_ok());
        // limit=2: third admit refuses on concurrency, not the bucket.
        let err = adm.try_admit(t_ms(0)).unwrap_err();
        assert_eq!(err.retry_after, cfg().inflight_retry_after);
        // The refund means the bucket still holds 3 of its 5 tokens.
        assert!((adm.bucket.available(t_ms(0)) - 3.0).abs() < 1e-9);
        adm.complete(false);
        assert!(adm.try_admit(t_ms(0)).is_ok());
        assert_eq!(adm.admitted(), 3);
        assert_eq!(adm.rejected(), 1);
    }

    #[test]
    fn saturation_tracks_worst_signal() {
        let mut adm = Admission::new(cfg(), t_ms(0));
        assert!(adm.saturation(t_ms(0)) < 0.01);
        adm.try_admit(t_ms(0)).unwrap();
        adm.try_admit(t_ms(0)).unwrap();
        // Concurrency fully utilized.
        assert!(adm.saturation(t_ms(0)) >= 1.0 - 1e-9);
        adm.complete(false);
        adm.complete(false);
        adm.set_queue_pressure(0.7);
        let s = adm.saturation(t_ms(10_000));
        assert!((0.69..=0.71).contains(&s), "queue pressure dominates: {s}");
    }

    #[test]
    fn bank_is_per_key() {
        let mut bank: AdmissionBank<u32> = AdmissionBank::new(cfg());
        assert!(bank.try_admit(1, t_ms(0)).is_ok());
        assert!(bank.try_admit(1, t_ms(0)).is_ok());
        assert!(bank.try_admit(1, t_ms(0)).is_err());
        // Peer 2 is unaffected by peer 1's saturation.
        assert!(bank.try_admit(2, t_ms(0)).is_ok());
        assert!(bank.saturation(t_ms(0)) >= 1.0 - 1e-9);
        bank.complete(1, false);
        assert!(bank.try_admit(1, t_ms(0)).is_ok());
    }

    #[test]
    fn shared_signal_round_trips() {
        let sig = SaturationSignal::new();
        assert_eq!(sig.get(), 0.0);
        let reader = sig.clone();
        sig.publish(0.85);
        assert!((reader.get() - 0.85).abs() < 1e-12);
        sig.publish(7.0);
        assert_eq!(reader.get(), 1.0, "clamped");
    }
}
