//! Budget-aware retry with deterministic backoff.
//!
//! Every retry in the system goes through one policy so behavior under
//! failure is uniform and replayable: exponential backoff, jitter drawn
//! from a *seeded* hash of `(seed, operation key, attempt)` — two runs
//! of the same experiment produce the same retry schedule — and a hard
//! rule that a retry is never scheduled past the operation's
//! [`Deadline`].

use crate::deadline::Deadline;
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_obs::SpanScope;

/// Backoff and attempt limits for one class of operation.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Multiplier applied per attempt (>= 1).
    pub factor: f64,
    /// Cap on any single delay.
    pub max_delay: SimDuration,
    /// Maximum retry attempts after the initial try.
    pub max_retries: u32,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Seed diversifying the jitter stream per deployment.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: SimDuration::from_millis(50),
            factor: 2.0,
            max_delay: SimDuration::from_secs(5),
            max_retries: 3,
            jitter: 0.25,
            seed: 0,
        }
    }
}

/// Why a retried operation gave up.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RetryError<E> {
    /// Every allowed attempt failed; the last error is attached.
    Exhausted(E),
    /// The deadline expired (or the next backoff would cross it).
    DeadlineExceeded(E),
}

impl<E> RetryError<E> {
    /// The underlying last error, whichever way the retry gave up.
    pub fn into_inner(self) -> E {
        match self {
            RetryError::Exhausted(e) | RetryError::DeadlineExceeded(e) => e,
        }
    }
}

/// The accounting of one retried operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryOutcome<T, E> {
    /// The operation result.
    pub result: Result<T, RetryError<E>>,
    /// Total attempts made (>= 1).
    pub attempts: u32,
    /// Simulated time spent waiting between attempts.
    pub backoff_waited: SimDuration,
}

impl<T, E> RetryOutcome<T, E> {
    /// Whether the operation eventually succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// SplitMix64: cheap, high-quality deterministic mixing for jitter.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The pre-jitter backoff envelope before retry `attempt`
    /// (attempt 0 is the first retry). Monotone non-decreasing in
    /// `attempt`, capped at `max_delay`.
    pub fn envelope(&self, attempt: u32) -> SimDuration {
        let factor = self.factor.max(1.0);
        let ns = self.base.as_nanos() as f64 * factor.powi(attempt.min(63) as i32);
        let capped = ns.min(self.max_delay.as_nanos() as f64);
        SimDuration::from_nanos(capped as u64)
    }

    /// The jittered delay before retry `attempt` of the operation
    /// identified by `key`. Deterministic in `(seed, key, attempt)`;
    /// always within `[envelope * (1 - jitter), envelope]`, so it never
    /// exceeds the monotone envelope.
    pub fn delay(&self, key: u64, attempt: u32) -> SimDuration {
        let env = self.envelope(attempt).as_nanos();
        let jitter = self.jitter.clamp(0.0, 1.0);
        if env == 0 || jitter == 0.0 {
            return SimDuration::from_nanos(env);
        }
        let h = mix(self.seed ^ mix(key) ^ (attempt as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let scale = 1.0 - jitter * unit;
        SimDuration::from_nanos((env as f64 * scale) as u64)
    }

    /// Runs `op` under this policy and `deadline`, advancing `*now` by
    /// each backoff pause (simulated sleep). `op` receives the attempt
    /// index (0 = first try) and the current simulated time.
    ///
    /// Gives up when the retry budget is exhausted, or — *before*
    /// wasting a sleep — when the next backoff would cross the
    /// deadline. The caller's clock is left where the operation ended,
    /// so nested calls naturally consume the same budget.
    pub fn run<T, E>(
        &self,
        key: u64,
        deadline: Deadline,
        now: &mut SimTime,
        op: impl FnMut(u32, SimTime) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        self.run_inner(key, deadline, now, None, op)
    }

    /// [`RetryPolicy::run`], additionally recording each backoff pause
    /// as a `"retry"` child span under `scope` — the time a request
    /// spends *waiting to retry* becomes visible to critical-path
    /// attribution instead of vanishing into the gap between attempt
    /// spans. A null scope costs one branch per pause.
    pub fn run_spanned<T, E>(
        &self,
        key: u64,
        deadline: Deadline,
        now: &mut SimTime,
        scope: &SpanScope,
        op: impl FnMut(u32, SimTime) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        self.run_inner(key, deadline, now, Some(scope), op)
    }

    fn run_inner<T, E>(
        &self,
        key: u64,
        deadline: Deadline,
        now: &mut SimTime,
        scope: Option<&SpanScope>,
        mut op: impl FnMut(u32, SimTime) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        let m = hpop_obs::metrics();
        let mut attempts = 0u32;
        let mut waited = SimDuration::ZERO;
        // The first attempt always runs, even on a dead budget, so
        // callers can distinguish "slow" from "impossible"; only the
        // pauses between retries are deadline-gated.
        loop {
            let attempt = attempts;
            attempts += 1;
            match op(attempt, *now) {
                Ok(v) => {
                    if attempt > 0 {
                        m.counter("resilience.retry.recovered").incr();
                    }
                    return RetryOutcome {
                        result: Ok(v),
                        attempts,
                        backoff_waited: waited,
                    };
                }
                Err(e) => {
                    m.counter("resilience.retry.failure").incr();
                    if attempt >= self.max_retries {
                        m.counter("resilience.retry.exhausted").incr();
                        return RetryOutcome {
                            result: Err(RetryError::Exhausted(e)),
                            attempts,
                            backoff_waited: waited,
                        };
                    }
                    let pause = self.delay(key, attempt);
                    if !deadline.allows_wait(*now, pause) {
                        m.counter("resilience.retry.deadline").incr();
                        return RetryOutcome {
                            result: Err(RetryError::DeadlineExceeded(e)),
                            attempts,
                            backoff_waited: waited,
                        };
                    }
                    let pause_start_us = now.as_nanos() / 1_000;
                    *now += pause;
                    waited += pause;
                    if let Some(s) = scope {
                        s.record(
                            "resilience",
                            "retry",
                            pause_start_us,
                            now.as_nanos() / 1_000,
                        );
                    }
                    m.counter("resilience.retry.attempts").incr();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base: SimDuration::from_millis(100),
            factor: 2.0,
            max_delay: SimDuration::from_secs(2),
            max_retries: 4,
            jitter: 0.5,
            seed: 7,
        }
    }

    #[test]
    fn envelope_is_monotone_and_capped() {
        let p = policy();
        let mut prev = SimDuration::ZERO;
        for a in 0..20 {
            let e = p.envelope(a);
            assert!(e >= prev, "attempt {a}");
            assert!(e <= p.max_delay);
            prev = e;
        }
        assert_eq!(p.envelope(0), SimDuration::from_millis(100));
        assert_eq!(p.envelope(10), p.max_delay);
    }

    #[test]
    fn delay_is_deterministic_and_within_envelope() {
        let p = policy();
        for key in [0u64, 1, 99] {
            for a in 0..6 {
                let d1 = p.delay(key, a);
                let d2 = p.delay(key, a);
                assert_eq!(d1, d2);
                assert!(d1 <= p.envelope(a));
                let floor = p.envelope(a).as_nanos() as f64 * 0.5;
                assert!(d1.as_nanos() as f64 >= floor - 1.0);
            }
        }
        // Different keys give different jitter (decorrelated retries).
        assert_ne!(p.delay(1, 2), p.delay(2, 2));
    }

    #[test]
    fn run_recovers_after_failures() {
        let mut now = SimTime::ZERO;
        let out = policy().run(1, Deadline::UNBOUNDED, &mut now, |attempt, _| {
            if attempt < 2 {
                Err("down")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.result, Ok(2));
        assert_eq!(out.attempts, 3);
        assert!(out.backoff_waited > SimDuration::ZERO);
        assert_eq!(now.saturating_since(SimTime::ZERO), out.backoff_waited);
    }

    #[test]
    fn run_exhausts_after_max_retries() {
        let mut now = SimTime::ZERO;
        let out: RetryOutcome<(), _> =
            policy().run(1, Deadline::UNBOUNDED, &mut now, |_, _| Err("down"));
        assert_eq!(out.result, Err(RetryError::Exhausted("down")));
        assert_eq!(out.attempts, 5); // 1 try + 4 retries
    }

    #[test]
    fn run_respects_deadline_without_sleeping_past_it() {
        let mut now = SimTime::ZERO;
        let deadline = Deadline::after(now, SimDuration::from_millis(150));
        let out: RetryOutcome<(), _> = policy().run(1, deadline, &mut now, |_, _| Err("down"));
        assert!(matches!(out.result, Err(RetryError::DeadlineExceeded(_))));
        // The clock never crossed the deadline.
        assert!(!deadline.expired(now) || deadline.remaining(now) == SimDuration::ZERO);
        assert!(now.as_nanos() <= deadline.expires_at().as_nanos());
    }

    #[test]
    fn run_spanned_records_each_backoff_pause() {
        let tracer = hpop_obs::SpanTracer::new(64);
        tracer.enable();
        let root = tracer.root();
        let scope = SpanScope::new(tracer.clone(), root);
        let mut now = SimTime::ZERO;
        let out = policy().run_spanned(9, Deadline::UNBOUNDED, &mut now, &scope, |attempt, _| {
            if attempt < 2 {
                Err("down")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.result, Ok(2));
        let spans = tracer.recent();
        assert_eq!(spans.len(), 2, "{spans:?}"); // two pauses before success
        let mut pause_total = 0u64;
        for s in &spans {
            assert_eq!(s.stage, "retry");
            assert_eq!(s.parent_span_id, root.span_id);
            pause_total += s.duration_us();
        }
        assert_eq!(pause_total, out.backoff_waited.as_nanos() / 1_000);
        // The null scope records nothing.
        let mut now2 = SimTime::ZERO;
        policy().run_spanned(
            9,
            Deadline::UNBOUNDED,
            &mut now2,
            &SpanScope::none(),
            |a, _| {
                if a < 2 {
                    Err("down")
                } else {
                    Ok(a)
                }
            },
        );
        assert_eq!(tracer.recent().len(), 2);
    }

    #[test]
    fn first_attempt_always_runs_even_with_dead_budget() {
        let mut now = SimTime::from_secs(100);
        let deadline = Deadline::after(SimTime::ZERO, SimDuration::from_secs(1));
        let out = policy().run(1, deadline, &mut now, |_, _| Ok::<_, ()>(42));
        assert_eq!(out.result, Ok(42));
        assert_eq!(out.attempts, 1);
    }
}
