//! Bounded work queues whose depth *is* the backpressure signal.
//!
//! An unbounded queue converts overload into latency: work keeps being
//! accepted and simply waits longer, which during a flash crowd means
//! every request eventually misses its deadline — the classic collapse
//! E26 demonstrates with controls off. A [`BoundedQueue`] refuses at a
//! fixed depth instead, and continuously reports its fill fraction
//! ([`pressure`](BoundedQueue::pressure)) so an upstream
//! [`Admission`](crate::Admission) controller starts refusing *before*
//! the queue is full and a [`Brownout`](crate::brownout::Brownout)
//! ladder can start degrading at the configured thresholds.

use std::collections::VecDeque;

/// A FIFO work queue with a hard depth cap.
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    cap: usize,
    /// Pushes refused because the queue was full.
    refused: u64,
    /// High-water mark of the depth.
    peak: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `cap` items (floored at 1).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        let cap = cap.max(1);
        BoundedQueue {
            items: VecDeque::with_capacity(cap),
            cap,
            refused: 0,
            peak: 0,
        }
    }

    /// Enqueues `item`, or hands it back when the queue is at cap —
    /// the caller decides whether that means shed, reject, or retry.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.cap {
            self.refused += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The depth cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Fill fraction in `[0, 1]` — the backpressure signal fed to
    /// [`Admission::set_queue_pressure`](crate::Admission::set_queue_pressure).
    pub fn pressure(&self) -> f64 {
        self.items.len() as f64 / self.cap as f64
    }

    /// Pushes refused at cap since construction.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Deepest the queue has ever been.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Drops everything queued (e.g. entering the `Reject` brownout
    /// rung), returning how many items were discarded.
    pub fn clear(&mut self) -> usize {
        let n = self.items.len();
        self.items.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refuses_at_cap_and_hands_item_back() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.refused(), 1);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
    }

    #[test]
    fn pressure_is_fill_fraction() {
        let mut q = BoundedQueue::new(4);
        assert_eq!(q.pressure(), 0.0);
        q.push(()).unwrap();
        q.push(()).unwrap();
        assert!((q.pressure() - 0.5).abs() < 1e-12);
        q.push(()).unwrap();
        q.push(()).unwrap();
        assert_eq!(q.pressure(), 1.0);
        assert_eq!(q.peak(), 4);
        assert_eq!(q.clear(), 4);
        assert_eq!(q.pressure(), 0.0);
        assert_eq!(q.peak(), 4, "peak survives a clear");
    }

    #[test]
    fn zero_cap_is_floored_to_one() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.cap(), 1);
        assert!(q.push(7).is_ok());
        assert!(q.push(8).is_err());
    }
}
