//! Per-peer circuit breakers fed by reputation.
//!
//! A breaker stops a service from burning its deadline budget on a
//! peer that keeps failing: after enough consecutive failures the
//! circuit *opens* and the peer is skipped outright; after a cooldown
//! it *half-opens* and admits one probe; a probe success closes it
//! again. Unlike raw strike counters (which only ever go up), a
//! breaker always gives a recovered peer a way back in — the
//! [`proptests`](crate::proptests) pin that guarantee.
//!
//! The failure threshold is scaled by the fabric's reputation score
//! ([`CircuitBreaker::set_reputation`]): a peer at score 1.0 gets the
//! full threshold, a known offender trips after proportionally fewer
//! failures (never fewer than one).

use hpop_netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures (at reputation 1.0) that open the circuit.
    pub failure_threshold: u32,
    /// How long an open circuit rejects before half-opening.
    pub open_for: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(30),
        }
    }
}

/// The breaker's gate state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BreakerState {
    /// Traffic flows; failures are counted.
    Closed,
    /// Traffic is rejected until the cooldown elapses.
    Open,
    /// One probe request is admitted to test recovery.
    HalfOpen,
}

/// One peer's circuit breaker.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    consecutive_failures: u32,
    /// Reputation score in `[0, 1]` scaling the effective threshold.
    reputation: f64,
    /// When the circuit opened (None while closed).
    opened_at: Option<SimTime>,
    /// Whether the half-open probe slot has been handed out.
    probe_inflight: bool,
}

impl CircuitBreaker {
    /// A closed breaker with the given config.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            consecutive_failures: 0,
            reputation: 1.0,
            opened_at: None,
            probe_inflight: false,
        }
    }

    /// Effective consecutive-failure threshold under the current
    /// reputation: `ceil(threshold * score)`, floored at 1 so even a
    /// zero-reputation peer is only tripped by an actual failure.
    pub fn effective_threshold(&self) -> u32 {
        let scaled = (self.cfg.failure_threshold as f64 * self.reputation.clamp(0.0, 1.0)).ceil();
        (scaled as u32).max(1)
    }

    /// Feeds the fabric's reputation score (clamped to `[0, 1]`).
    pub fn set_reputation(&mut self, score: f64) {
        self.reputation = score.clamp(0.0, 1.0);
    }

    /// The state at `now`.
    pub fn state(&self, now: SimTime) -> BreakerState {
        match self.opened_at {
            None => BreakerState::Closed,
            Some(at) if now.saturating_since(at) >= self.cfg.open_for => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Whether a request may be sent at `now`. In half-open state only
    /// the first caller gets the probe slot; everyone else keeps being
    /// rejected until the probe reports back.
    pub fn allow(&mut self, now: SimTime) -> bool {
        match self.state(now) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    false
                } else {
                    self.probe_inflight = true;
                    hpop_obs::metrics()
                        .counter("resilience.breaker.probe")
                        .incr();
                    true
                }
            }
        }
    }

    /// Records a successful request: closes the circuit and clears the
    /// failure run.
    pub fn record_success(&mut self, _now: SimTime) {
        if self.opened_at.is_some() {
            hpop_obs::metrics()
                .counter("resilience.breaker.close")
                .incr();
        }
        self.opened_at = None;
        self.probe_inflight = false;
        self.consecutive_failures = 0;
    }

    /// Records a failed request. A failed half-open probe re-opens the
    /// circuit (restarting the cooldown); in closed state the circuit
    /// opens once the effective threshold is hit.
    pub fn record_failure(&mut self, now: SimTime) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let reopen = self.probe_inflight && self.state(now) == BreakerState::HalfOpen;
        self.probe_inflight = false;
        if reopen || self.consecutive_failures >= self.effective_threshold() {
            if self.opened_at.is_none() || reopen {
                hpop_obs::metrics()
                    .counter("resilience.breaker.open")
                    .incr();
            }
            self.opened_at = Some(now);
        }
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

/// A keyed collection of breakers — one per peer, created on first use.
#[derive(Clone, Debug)]
pub struct BreakerBank<K: Ord + Copy> {
    cfg: BreakerConfig,
    breakers: BTreeMap<K, CircuitBreaker>,
}

impl<K: Ord + Copy> BreakerBank<K> {
    /// An empty bank stamping new breakers from `cfg`.
    pub fn new(cfg: BreakerConfig) -> BreakerBank<K> {
        BreakerBank {
            cfg,
            breakers: BTreeMap::new(),
        }
    }

    /// The breaker for `key`, created closed if new.
    pub fn breaker(&mut self, key: K) -> &mut CircuitBreaker {
        let cfg = self.cfg;
        self.breakers
            .entry(key)
            .or_insert_with(|| CircuitBreaker::new(cfg))
    }

    /// Whether `key` may be tried at `now` (unknown keys are allowed:
    /// a breaker materializes on the first recorded outcome).
    pub fn allow(&mut self, key: K, now: SimTime) -> bool {
        self.breaker(key).allow(now)
    }

    /// Records one outcome for `key`.
    pub fn record(&mut self, key: K, now: SimTime, ok: bool) {
        if ok {
            self.breaker(key).record_success(now);
        } else {
            self.breaker(key).record_failure(now);
        }
    }

    /// Feeds the current reputation score for `key`.
    pub fn set_reputation(&mut self, key: K, score: f64) {
        self.breaker(key).set_reputation(score);
    }

    /// The state of `key`'s breaker at `now` (Closed when never seen).
    pub fn state(&self, key: K, now: SimTime) -> BreakerState {
        self.breakers
            .get(&key)
            .map_or(BreakerState::Closed, |b| b.state(now))
    }

    /// The fraction of known peers whose circuit is not closed, in
    /// `[0, 1]` — a cheap saturation proxy: when a third of the
    /// neighborhood's breakers are open, the neighborhood is in
    /// trouble and load amplifiers (hedging, retries) should stand
    /// down. 0.0 when no breakers exist yet.
    pub fn saturation(&self, now: SimTime) -> f64 {
        if self.breakers.is_empty() {
            return 0.0;
        }
        let tripped = self
            .breakers
            .values()
            .filter(|b| b.state(now) != BreakerState::Closed)
            .count();
        tripped as f64 / self.breakers.len() as f64
    }

    /// Keys whose circuit is currently not closed (open or half-open).
    pub fn tripped(&self, now: SimTime) -> Vec<K> {
        self.breakers
            .iter()
            .filter(|(_, b)| b.state(now) != BreakerState::Closed)
            .map(|(&k, _)| k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn opens_after_threshold_and_half_opens_after_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        for i in 0..3 {
            assert!(b.allow(t(i)));
            b.record_failure(t(i));
        }
        assert_eq!(b.state(t(3)), BreakerState::Open);
        assert!(!b.allow(t(3)));
        // Cooldown elapses: half-open, exactly one probe admitted.
        assert_eq!(b.state(t(12)), BreakerState::HalfOpen);
        assert!(b.allow(t(12)));
        assert!(!b.allow(t(12)), "second probe must be rejected");
        // Probe succeeds: closed again, failures cleared.
        b.record_success(t(13));
        assert_eq!(b.state(t(13)), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        for i in 0..3 {
            b.record_failure(t(i));
        }
        assert!(b.allow(t(12)));
        b.record_failure(t(12));
        assert_eq!(b.state(t(13)), BreakerState::Open);
        // The cooldown restarted from the failed probe.
        assert_eq!(b.state(t(21)), BreakerState::Open);
        assert_eq!(b.state(t(22)), BreakerState::HalfOpen);
    }

    #[test]
    fn success_resets_failure_run() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_failure(t(0));
        b.record_failure(t(1));
        b.record_success(t(2));
        b.record_failure(t(3));
        b.record_failure(t(4));
        assert_eq!(b.state(t(5)), BreakerState::Closed);
    }

    #[test]
    fn reputation_lowers_threshold_but_never_below_one() {
        let mut b = CircuitBreaker::new(cfg());
        b.set_reputation(0.4);
        assert_eq!(b.effective_threshold(), 2); // ceil(3 * 0.4)
        b.set_reputation(0.0);
        assert_eq!(b.effective_threshold(), 1);
        b.record_failure(t(0));
        assert_eq!(b.state(t(1)), BreakerState::Open);
        // Even at zero reputation the peer half-opens eventually.
        assert_eq!(b.state(t(11)), BreakerState::HalfOpen);
    }

    #[test]
    fn bank_tracks_independent_peers() {
        let mut bank: BreakerBank<u32> = BreakerBank::new(cfg());
        for i in 0..3 {
            bank.record(7, t(i), false);
        }
        assert!(!bank.allow(7, t(3)));
        assert!(bank.allow(8, t(3)));
        assert_eq!(bank.state(7, t(3)), BreakerState::Open);
        assert_eq!(bank.state(8, t(3)), BreakerState::Closed);
        assert_eq!(bank.tripped(t(3)), vec![7]);
        bank.record(7, t(20), true);
        assert!(bank.tripped(t(20)).is_empty());
    }

    #[test]
    fn bank_saturation_is_tripped_fraction() {
        let mut bank: BreakerBank<u32> = BreakerBank::new(cfg());
        assert_eq!(bank.saturation(t(0)), 0.0, "empty bank is idle");
        bank.record(1, t(0), true);
        bank.record(2, t(0), true);
        for i in 0..3 {
            bank.record(3, t(i), false);
            bank.record(4, t(i), false);
        }
        assert!((bank.saturation(t(3)) - 0.5).abs() < 1e-12);
        bank.record(3, t(20), true);
        assert!((bank.saturation(t(20)) - 0.25).abs() < 1e-12);
    }
}
