//! # hpop-resilience — one failure policy for all four HPoP services
//!
//! The paper's services all run on *other people's home appliances*:
//! erasure-coded backup peers (§IV-A), untrusted NoCDN edges (§IV-B),
//! detour waypoints (§IV-C) and neighborhood caches (§IV-D). Peers are
//! slow, partitioned, corrupt, or gone — and before this crate every
//! service hand-rolled its own answer (nocdn `reassign` walks, dcol
//! strike counters, attic repair loops). This crate is the shared
//! vocabulary they now speak instead:
//!
//! - [`deadline`] — [`Deadline`]: an absolute time budget that
//!   propagates through nested calls; sub-operations carve slices off
//!   the same budget instead of inventing their own timeouts.
//! - [`retry`] — [`RetryPolicy`]: exponential backoff with
//!   deterministic jitter (seeded per operation key, replayable), and
//!   budget awareness — a retry is never scheduled past the deadline.
//! - [`breaker`] — [`CircuitBreaker`] / [`BreakerBank`]: per-peer
//!   closed → open → half-open gating, with the failure threshold fed
//!   by the fabric's reputation score so known offenders trip sooner.
//! - [`hedge`] — [`Hedge`]: launch a second fetch against another peer
//!   when the first has been outstanding longer than the observed p99;
//!   bounds tail latency at a measured duplicate-byte cost.
//!
//! Everything runs on the simulated clock ([`SimTime`]) and is
//! instrumented through `hpop-obs` (`resilience.retry.*`,
//! `resilience.breaker.*`, `resilience.hedge.*`), so experiment E20 can
//! meter exactly how much work each policy performs and wastes.
//!
//! [`SimTime`]: hpop_netsim::time::SimTime

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod deadline;
pub mod hedge;
pub mod retry;

#[cfg(test)]
mod proptests;

pub use breaker::{BreakerBank, BreakerConfig, BreakerState, CircuitBreaker};
pub use deadline::Deadline;
pub use hedge::{Hedge, HedgeConfig};
pub use retry::{RetryError, RetryOutcome, RetryPolicy};
