//! # hpop-resilience — one failure policy for all four HPoP services
//!
//! The paper's services all run on *other people's home appliances*:
//! erasure-coded backup peers (§IV-A), untrusted NoCDN edges (§IV-B),
//! detour waypoints (§IV-C) and neighborhood caches (§IV-D). Peers are
//! slow, partitioned, corrupt, or gone — and before this crate every
//! service hand-rolled its own answer (nocdn `reassign` walks, dcol
//! strike counters, attic repair loops). This crate is the shared
//! vocabulary they now speak instead:
//!
//! - [`deadline`] — [`Deadline`]: an absolute time budget that
//!   propagates through nested calls; sub-operations carve slices off
//!   the same budget instead of inventing their own timeouts.
//! - [`retry`] — [`RetryPolicy`]: exponential backoff with
//!   deterministic jitter (seeded per operation key, replayable), and
//!   budget awareness — a retry is never scheduled past the deadline.
//! - [`breaker`] — [`CircuitBreaker`] / [`BreakerBank`]: per-peer
//!   closed → open → half-open gating, with the failure threshold fed
//!   by the fabric's reputation score so known offenders trip sooner.
//! - [`hedge`] — [`Hedge`]: launch a second fetch against another peer
//!   when the first has been outstanding longer than the observed p99;
//!   bounds tail latency at a measured duplicate-byte cost — and
//!   stands down when the saturation gate reports overload, so hedges
//!   can't amplify a flash crowd.
//!
//! The overload-control layer (this crate's second half) turns
//! saturation into *graceful degradation* instead of collapse:
//!
//! - [`admission`] — [`Admission`] / [`AdmissionBank`]: token-bucket
//!   rate limiting + an AIMD concurrency limit per peer/service;
//!   saturated services refuse with a typed [`Overloaded`]
//!   `{retry_after}` instead of queueing forever.
//! - [`queue`] — [`BoundedQueue`]: bounded work queues whose fill
//!   fraction feeds the admission saturation signal (backpressure).
//! - [`shed`] — [`LoadShedder`] / [`WorkClass`]: priority shedding
//!   with constructor-enforced monotone thresholds — background
//!   repair/prefetch/anti-entropy always sheds before interactive.
//! - [`brownout`] — [`Brownout`]: the degradation ladder full →
//!   stale-allowed → redirect-to-origin → reject, driven by measured
//!   saturation with hysteresis and dwell so it cannot flap.
//!
//! Everything runs on the simulated clock ([`SimTime`]) and is
//! instrumented through `hpop-obs` (`resilience.retry.*`,
//! `resilience.breaker.*`, `resilience.hedge.*`,
//! `resilience.admission.*`, `resilience.shed.*`,
//! `resilience.brownout.*`), so experiments E20 and E26 can meter
//! exactly how much work each policy performs, refuses, and wastes.
//!
//! [`SimTime`]: hpop_netsim::time::SimTime

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod brownout;
pub mod deadline;
pub mod hedge;
pub mod queue;
pub mod retry;
pub mod shed;

#[cfg(test)]
mod proptests;

pub use admission::{
    Admission, AdmissionBank, AdmissionConfig, AimdLimit, Overloaded, SaturationSignal, TokenBucket,
};
pub use breaker::{BreakerBank, BreakerConfig, BreakerState, CircuitBreaker};
pub use brownout::{Brownout, BrownoutConfig, BrownoutLevel};
pub use deadline::Deadline;
pub use hedge::{Hedge, HedgeConfig};
pub use queue::BoundedQueue;
pub use retry::{RetryError, RetryOutcome, RetryPolicy};
pub use shed::{LoadShedder, ShedThresholds, WorkClass};
