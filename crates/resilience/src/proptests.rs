//! Property-based tests of the resilience layer's guarantees.
//!
//! 1. **Backoff sanity**: for every seed/key, the jittered delay
//!    sequence stays under the monotone envelope, the envelope itself
//!    never decreases, and a retried run never advances the clock past
//!    its deadline (budget-respecting).
//! 2. **Breaker liveness**: a circuit breaker never stays open
//!    forever when the peer recovers — whatever failure history and
//!    reputation it accumulated, after the cooldown it half-opens,
//!    admits a probe, and a successful probe closes it.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::deadline::Deadline;
use crate::retry::{RetryError, RetryPolicy};
use hpop_netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (
        1u64..=2_000, // base ms
        1u32..=40,    // factor tenths above 1.0 (1.1 .. 5.0)
        1u64..=30,    // max delay s
        0u32..=8,     // retries
        0u32..=100,   // jitter percent
        any::<u64>(), // seed
    )
        .prop_map(|(base_ms, ft, max_s, retries, jit, seed)| RetryPolicy {
            base: SimDuration::from_millis(base_ms),
            factor: 1.0 + ft as f64 / 10.0,
            max_delay: SimDuration::from_secs(max_s),
            max_retries: retries,
            jitter: jit as f64 / 100.0,
            seed,
        })
}

proptest! {
    /// The pre-jitter envelope is monotone non-decreasing and capped;
    /// the jittered delay never exceeds it, for every (seed, key).
    #[test]
    fn backoff_is_monotone_and_jitter_bounded(
        policy in arb_policy(),
        key in any::<u64>(),
    ) {
        let mut prev = SimDuration::ZERO;
        for attempt in 0..16u32 {
            let env = policy.envelope(attempt);
            prop_assert!(env >= prev, "envelope shrank at attempt {attempt}");
            prop_assert!(env <= policy.max_delay.max(policy.base));
            let jittered = policy.delay(key, attempt);
            prop_assert!(jittered <= env, "jitter exceeded envelope");
            // Jitter is deterministic: same inputs, same delay.
            prop_assert_eq!(jittered, policy.delay(key, attempt));
            prev = env;
        }
    }

    /// A failing retried operation never advances the clock past its
    /// deadline: every pause is checked before it is taken.
    #[test]
    fn retry_run_respects_budget(
        policy in arb_policy(),
        key in any::<u64>(),
        start_s in 0u64..1_000,
        budget_ms in 0u64..60_000,
    ) {
        let start = SimTime::from_secs(start_s);
        let mut now = start;
        let deadline = Deadline::after(start, SimDuration::from_millis(budget_ms));
        let out: crate::retry::RetryOutcome<(), &str> =
            policy.run(key, deadline, &mut now, |_, _| Err("down"));
        prop_assert!(out.result.is_err());
        prop_assert!(
            now.as_nanos() <= deadline.expires_at().as_nanos(),
            "clock {now:?} crossed deadline {:?}", deadline.expires_at()
        );
        prop_assert_eq!(
            now.since(start), out.backoff_waited,
            "clock advance must equal accounted backoff"
        );
        // Attempts never exceed 1 + max_retries.
        prop_assert!(out.attempts <= policy.max_retries + 1);
        if let Err(RetryError::Exhausted(_)) = out.result {
            prop_assert_eq!(out.attempts, policy.max_retries + 1);
        }
    }

    /// However the breaker got opened (any failure pattern, any
    /// reputation), once the peer recovers it always half-opens after
    /// the cooldown, admits a probe, and closes on probe success —
    /// no peer is locked out forever.
    #[test]
    fn breaker_always_half_opens_after_recovery(
        threshold in 1u32..=10,
        open_for_s in 1u64..=120,
        failures in 1usize..=40,
        reputation in 0.0f64..=1.0,
        fail_gap_s in 1u64..=20,
    ) {
        let cfg = BreakerConfig {
            failure_threshold: threshold,
            open_for: SimDuration::from_secs(open_for_s),
        };
        let mut b = CircuitBreaker::new(cfg);
        b.set_reputation(reputation);
        let mut now = SimTime::ZERO;
        let mut last_allowed = SimTime::ZERO;
        for _ in 0..failures {
            if b.allow(now) {
                b.record_failure(now);
                last_allowed = now;
            }
            now += SimDuration::from_secs(fail_gap_s);
        }
        let _ = last_allowed;
        // The peer recovers. Wait out the longest possible cooldown
        // from the last failure instant, then probe.
        let probe_at = now + cfg.open_for;
        let state = b.state(probe_at);
        prop_assert!(
            state == BreakerState::Closed || state == BreakerState::HalfOpen,
            "breaker still hard-open after cooldown: {state:?}"
        );
        prop_assert!(b.allow(probe_at), "recovered peer denied its probe");
        b.record_success(probe_at);
        prop_assert_eq!(b.state(probe_at), BreakerState::Closed);
        prop_assert!(b.allow(probe_at), "closed breaker must admit traffic");
    }
}
