//! Property-based tests of the resilience layer's guarantees.
//!
//! 1. **Backoff sanity**: for every seed/key, the jittered delay
//!    sequence stays under the monotone envelope, the envelope itself
//!    never decreases, and a retried run never advances the clock past
//!    its deadline (budget-respecting).
//! 2. **Breaker liveness**: a circuit breaker never stays open
//!    forever when the peer recovers — whatever failure history and
//!    reputation it accumulated, after the cooldown it half-opens,
//!    admits a probe, and a successful probe closes it.
//! 3. **Admission token conservation**: however requests and time are
//!    interleaved, a token bucket never admits more than
//!    `burst + rate * elapsed` requests, and its token count stays in
//!    `[0, capacity]`.
//! 4. **Admission liveness (no deadlock)**: after any sequence of
//!    admits/completes, draining the inflight permits and advancing
//!    the clock always re-admits — no state is reachable from which
//!    the controller refuses forever.
//! 5. **AIMD convergence**: under a step change in backend capacity,
//!    the limit converges into a band around the true capacity and
//!    stays there.
//! 6. **Shed-order monotonicity**: for every threshold configuration
//!    and saturation, a saturation that sheds a protected class also
//!    sheds every less-protected class — background always sheds
//!    before interactive.

use crate::admission::{Admission, AdmissionConfig, AimdLimit, TokenBucket};
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::deadline::Deadline;
use crate::retry::{RetryError, RetryPolicy};
use crate::shed::{LoadShedder, ShedThresholds, WorkClass};
use hpop_netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (
        1u64..=2_000, // base ms
        1u32..=40,    // factor tenths above 1.0 (1.1 .. 5.0)
        1u64..=30,    // max delay s
        0u32..=8,     // retries
        0u32..=100,   // jitter percent
        any::<u64>(), // seed
    )
        .prop_map(|(base_ms, ft, max_s, retries, jit, seed)| RetryPolicy {
            base: SimDuration::from_millis(base_ms),
            factor: 1.0 + ft as f64 / 10.0,
            max_delay: SimDuration::from_secs(max_s),
            max_retries: retries,
            jitter: jit as f64 / 100.0,
            seed,
        })
}

proptest! {
    /// The pre-jitter envelope is monotone non-decreasing and capped;
    /// the jittered delay never exceeds it, for every (seed, key).
    #[test]
    fn backoff_is_monotone_and_jitter_bounded(
        policy in arb_policy(),
        key in any::<u64>(),
    ) {
        let mut prev = SimDuration::ZERO;
        for attempt in 0..16u32 {
            let env = policy.envelope(attempt);
            prop_assert!(env >= prev, "envelope shrank at attempt {attempt}");
            prop_assert!(env <= policy.max_delay.max(policy.base));
            let jittered = policy.delay(key, attempt);
            prop_assert!(jittered <= env, "jitter exceeded envelope");
            // Jitter is deterministic: same inputs, same delay.
            prop_assert_eq!(jittered, policy.delay(key, attempt));
            prev = env;
        }
    }

    /// A failing retried operation never advances the clock past its
    /// deadline: every pause is checked before it is taken.
    #[test]
    fn retry_run_respects_budget(
        policy in arb_policy(),
        key in any::<u64>(),
        start_s in 0u64..1_000,
        budget_ms in 0u64..60_000,
    ) {
        let start = SimTime::from_secs(start_s);
        let mut now = start;
        let deadline = Deadline::after(start, SimDuration::from_millis(budget_ms));
        let out: crate::retry::RetryOutcome<(), &str> =
            policy.run(key, deadline, &mut now, |_, _| Err("down"));
        prop_assert!(out.result.is_err());
        prop_assert!(
            now.as_nanos() <= deadline.expires_at().as_nanos(),
            "clock {now:?} crossed deadline {:?}", deadline.expires_at()
        );
        prop_assert_eq!(
            now.since(start), out.backoff_waited,
            "clock advance must equal accounted backoff"
        );
        // Attempts never exceed 1 + max_retries.
        prop_assert!(out.attempts <= policy.max_retries + 1);
        if let Err(RetryError::Exhausted(_)) = out.result {
            prop_assert_eq!(out.attempts, policy.max_retries + 1);
        }
    }

    /// However the breaker got opened (any failure pattern, any
    /// reputation), once the peer recovers it always half-opens after
    /// the cooldown, admits a probe, and closes on probe success —
    /// no peer is locked out forever.
    #[test]
    fn breaker_always_half_opens_after_recovery(
        threshold in 1u32..=10,
        open_for_s in 1u64..=120,
        failures in 1usize..=40,
        reputation in 0.0f64..=1.0,
        fail_gap_s in 1u64..=20,
    ) {
        let cfg = BreakerConfig {
            failure_threshold: threshold,
            open_for: SimDuration::from_secs(open_for_s),
        };
        let mut b = CircuitBreaker::new(cfg);
        b.set_reputation(reputation);
        let mut now = SimTime::ZERO;
        let mut last_allowed = SimTime::ZERO;
        for _ in 0..failures {
            if b.allow(now) {
                b.record_failure(now);
                last_allowed = now;
            }
            now += SimDuration::from_secs(fail_gap_s);
        }
        let _ = last_allowed;
        // The peer recovers. Wait out the longest possible cooldown
        // from the last failure instant, then probe.
        let probe_at = now + cfg.open_for;
        let state = b.state(probe_at);
        prop_assert!(
            state == BreakerState::Closed || state == BreakerState::HalfOpen,
            "breaker still hard-open after cooldown: {state:?}"
        );
        prop_assert!(b.allow(probe_at), "recovered peer denied its probe");
        b.record_success(probe_at);
        prop_assert_eq!(b.state(probe_at), BreakerState::Closed);
        prop_assert!(b.allow(probe_at), "closed breaker must admit traffic");
    }

    /// Token conservation: for any interleaving of takes and waits,
    /// total admits never exceed the burst allowance plus what the
    /// refill rate could have minted over the elapsed time, and the
    /// bucket's token count stays within `[0, capacity]`.
    #[test]
    fn token_bucket_conserves_tokens(
        capacity in 1u32..=50,
        rate_x10 in 1u32..=500, // 0.1 .. 50 tokens/s
        steps in proptest::collection::vec((0u64..=2_000, 1u8..=5), 1..60),
    ) {
        let capacity = capacity as f64;
        let rate = rate_x10 as f64 / 10.0;
        let start = SimTime::from_secs(5);
        let mut bucket = TokenBucket::new(capacity, rate, start);
        let mut now = start;
        let mut admitted = 0u64;
        for (advance_ms, takes) in steps {
            now += SimDuration::from_millis(advance_ms);
            for _ in 0..takes {
                let avail = bucket.available(now);
                prop_assert!((0.0..=capacity + 1e-9).contains(&avail));
                if bucket.try_take(now, 1.0).is_ok() {
                    admitted += 1;
                } else {
                    // A refusal carries a finite, honest ETA when the
                    // refill rate is nonzero.
                    let err = bucket.try_take(now, 1.0).unwrap_err();
                    prop_assert!(err.retry_after > SimDuration::ZERO);
                }
            }
            let elapsed = now.since(start).as_secs_f64();
            let ceiling = capacity + rate * elapsed;
            prop_assert!(
                (admitted as f64) <= ceiling + 1e-6,
                "admitted {admitted} > burst+minted {ceiling}"
            );
        }
    }

    /// No deadlock: from any reachable controller state, returning the
    /// held permits and waiting out the bucket always re-admits.
    #[test]
    fn admission_never_deadlocks(
        burst in 1u32..=20,
        rate_x10 in 1u32..=200,
        limit in 1u32..=16,
        ops in proptest::collection::vec((0u64..=500, any::<bool>(), any::<bool>()), 1..80),
    ) {
        let cfg = AdmissionConfig {
            rate_per_sec: rate_x10 as f64 / 10.0,
            burst: burst as f64,
            initial_limit: limit as f64,
            min_limit: 1.0,
            max_limit: 64.0,
            ..AdmissionConfig::default()
        };
        let mut adm = Admission::new(cfg, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut held = 0u32;
        for (advance_ms, try_admit, overloaded) in ops {
            now += SimDuration::from_millis(advance_ms);
            if try_admit {
                if adm.try_admit(now).is_ok() {
                    held += 1;
                }
            } else if held > 0 {
                adm.complete(overloaded);
                held -= 1;
            }
            prop_assert_eq!(adm.aimd().inflight(), held);
        }
        // Drain every held permit (successfully, as a recovered
        // backend would report) and wait out the worst-case refill.
        for _ in 0..held {
            adm.complete(false);
        }
        now += SimDuration::from_secs_f64(cfg.burst / cfg.rate_per_sec + 1.0);
        prop_assert!(
            adm.try_admit(now).is_ok(),
            "drained + refilled controller refused: deadlock"
        );
    }

    /// AIMD convergence under a step change: the backend serves
    /// `cap_before` concurrent requests, then (step change) only
    /// `cap_after`. After enough windows the limit must sit in a band
    /// around the new capacity — above it (still probing) but no more
    /// than one multiplicative backoff plus probe headroom away.
    #[test]
    fn aimd_converges_to_stepped_capacity(
        cap_before in 2u32..=32,
        cap_after in 1u32..=16,
        windows in 50u32..=150,
    ) {
        let mut a = AimdLimit::new(cap_before as f64, 1.0, 256.0, 1.0, 0.5);
        // One "window": acquire as much as the limit grants, then
        // complete each permit — overloaded iff it exceeded capacity.
        let window = |a: &mut AimdLimit, capacity: u32| {
            let mut granted = 0u32;
            while a.try_acquire() {
                granted += 1;
            }
            for i in 0..granted {
                a.release(i >= capacity);
            }
        };
        for _ in 0..windows {
            window(&mut a, cap_before);
        }
        // Step change down (or up — the pair is unordered on purpose).
        for _ in 0..windows {
            window(&mut a, cap_after);
        }
        let cap = cap_after as f64;
        // Upper edge: a limit crossing capacity is halved within one
        // window, so it can never settle above 2*cap (+ the one probe
        // permit additive increase can add before the verdict lands).
        prop_assert!(
            a.limit() <= 2.0 * cap + 2.0,
            "limit {} runaway over capacity {cap}", a.limit()
        );
        // Lower edge: successes below capacity always grow the limit,
        // so it cannot settle below half of what the backend serves.
        prop_assert!(
            a.limit() >= (cap * 0.5).min(cap - 0.5).max(1.0) - 1e-9,
            "limit {} collapsed under capacity {cap}", a.limit()
        );
    }

    /// Shed-order monotonicity: whatever thresholds are requested and
    /// whatever the measured saturation, shedding a more-protected
    /// class implies every less-protected class is shed too. In
    /// particular interactive work is never shed while any background
    /// class is kept.
    #[test]
    fn shed_order_is_monotone(
        t_interactive in 0.0f64..=1.0,
        t_prefetch in 0.0f64..=1.0,
        t_repair in 0.0f64..=1.0,
        t_anti in 0.0f64..=1.0,
        saturation in 0.0f64..=1.5,
    ) {
        let s = LoadShedder::new(ShedThresholds {
            interactive: t_interactive,
            prefetch: t_prefetch,
            repair: t_repair,
            anti_entropy: t_anti,
        });
        // ALL is ordered most-protected first; walk adjacent pairs.
        for pair in WorkClass::ALL.windows(2) {
            let (stronger, weaker) = (pair[0], pair[1]);
            if s.would_shed(stronger, saturation) {
                prop_assert!(
                    s.would_shed(weaker, saturation),
                    "{stronger} shed at {saturation} while {weaker} kept"
                );
            }
        }
        if s.would_shed(WorkClass::Interactive, saturation) {
            for bg in [WorkClass::Prefetch, WorkClass::Repair, WorkClass::AntiEntropy] {
                prop_assert!(s.would_shed(bg, saturation));
            }
        }
    }
}
