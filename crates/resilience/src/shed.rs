//! Priority load shedding: background work yields before interactive.
//!
//! A home appliance under flash-crowd load is doing four kinds of work
//! at once: serving a neighbor's page fetch *right now*, prefetching
//! objects it predicts will be wanted, repairing erasure-coded backup
//! shards, and running gossip anti-entropy. Only the first has a human
//! waiting on it. The [`LoadShedder`] encodes that hierarchy: each
//! [`WorkClass`] has a saturation threshold above which it is shed,
//! and the thresholds are *monotone by construction* — a constructor
//! invariant (pinned by proptest) guarantees background work always
//! sheds before interactive, so E26's "interactive sheds = 0 while
//! background sheds first" budget is a property of the type, not of
//! tuning luck.

use std::fmt;

/// The kinds of work competing for an appliance's capacity, ordered
/// from most protected to most sheddable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum WorkClass {
    /// A user-facing fetch with a human waiting: shed last.
    Interactive = 0,
    /// Speculative cache warming: useful, deferrable.
    Prefetch = 1,
    /// Erasure-shard repair: durability background work.
    Repair = 2,
    /// Gossip digests / index reconciliation: shed first.
    AntiEntropy = 3,
}

impl WorkClass {
    /// All classes, most-protected first.
    pub const ALL: [WorkClass; 4] = [
        WorkClass::Interactive,
        WorkClass::Prefetch,
        WorkClass::Repair,
        WorkClass::AntiEntropy,
    ];

    /// Metric-label name.
    pub fn name(self) -> &'static str {
        match self {
            WorkClass::Interactive => "interactive",
            WorkClass::Prefetch => "prefetch",
            WorkClass::Repair => "repair",
            WorkClass::AntiEntropy => "anti_entropy",
        }
    }

    /// True for everything except interactive work.
    pub fn is_background(self) -> bool {
        self != WorkClass::Interactive
    }
}

impl fmt::Display for WorkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class saturation thresholds. Work of a class is shed while the
/// measured saturation is **strictly above** its threshold — so a
/// threshold of 1.0 means "never shed" (saturation signals are
/// normalized to `[0, 1]`; even a full queue at exactly 1.0 does not
/// silently drop the class, it is refused by typed admission instead).
#[derive(Clone, Copy, Debug)]
pub struct ShedThresholds {
    /// Threshold for [`WorkClass::Interactive`] (highest).
    pub interactive: f64,
    /// Threshold for [`WorkClass::Prefetch`].
    pub prefetch: f64,
    /// Threshold for [`WorkClass::Repair`].
    pub repair: f64,
    /// Threshold for [`WorkClass::AntiEntropy`] (lowest).
    pub anti_entropy: f64,
}

impl Default for ShedThresholds {
    fn default() -> ShedThresholds {
        ShedThresholds {
            // Interactive work is only refused by admission control
            // (saturation pinned at 1.0), never silently shed below it.
            interactive: 1.0,
            prefetch: 0.85,
            repair: 0.7,
            anti_entropy: 0.6,
        }
    }
}

/// The priority shedder: a saturation scalar in, per-class keep/shed
/// verdicts out.
#[derive(Clone, Copy, Debug)]
pub struct LoadShedder {
    thresholds: ShedThresholds,
    shed: [u64; 4],
    kept: [u64; 4],
}

impl LoadShedder {
    /// Builds a shedder, *enforcing* shed-order monotonicity: each
    /// more-protected class's threshold is raised to at least its less
    /// protected neighbor's, so `interactive ≥ prefetch ≥ repair ≥
    /// anti_entropy` holds whatever the caller passed. Background work
    /// therefore always sheds at or before interactive work does.
    pub fn new(mut t: ShedThresholds) -> LoadShedder {
        t.anti_entropy = t.anti_entropy.clamp(0.0, 1.0);
        t.repair = t.repair.clamp(t.anti_entropy, 1.0);
        t.prefetch = t.prefetch.clamp(t.repair, 1.0);
        t.interactive = t.interactive.clamp(t.prefetch, 1.0);
        LoadShedder {
            thresholds: t,
            shed: [0; 4],
            kept: [0; 4],
        }
    }

    /// The (normalized) thresholds in force.
    pub fn thresholds(&self) -> ShedThresholds {
        self.thresholds
    }

    /// The threshold for one class.
    pub fn threshold(&self, class: WorkClass) -> f64 {
        match class {
            WorkClass::Interactive => self.thresholds.interactive,
            WorkClass::Prefetch => self.thresholds.prefetch,
            WorkClass::Repair => self.thresholds.repair,
            WorkClass::AntiEntropy => self.thresholds.anti_entropy,
        }
    }

    /// Pure verdict: would `class` be shed at `saturation`? Strictly
    /// above the threshold, so a threshold of 1.0 never sheds for any
    /// normalized saturation.
    pub fn would_shed(&self, class: WorkClass, saturation: f64) -> bool {
        saturation > self.threshold(class)
    }

    /// Verdict plus accounting: returns `true` when the work should be
    /// **dropped** (shed), bumping the per-class counters and metrics.
    pub fn admit(&mut self, class: WorkClass, saturation: f64) -> bool {
        let shed = self.would_shed(class, saturation);
        let i = class as usize;
        if shed {
            self.shed[i] += 1;
            hpop_obs::metrics()
                .counter(match class {
                    WorkClass::Interactive => "resilience.shed.interactive",
                    WorkClass::Prefetch => "resilience.shed.prefetch",
                    WorkClass::Repair => "resilience.shed.repair",
                    WorkClass::AntiEntropy => "resilience.shed.anti_entropy",
                })
                .incr();
        } else {
            self.kept[i] += 1;
        }
        shed
    }

    /// Work of `class` shed so far.
    pub fn shed_count(&self, class: WorkClass) -> u64 {
        self.shed[class as usize]
    }

    /// Work of `class` kept so far.
    pub fn kept_count(&self, class: WorkClass) -> u64 {
        self.kept[class as usize]
    }

    /// Total background (non-interactive) work shed.
    pub fn background_shed(&self) -> u64 {
        self.shed[1] + self.shed[2] + self.shed[3]
    }
}

impl Default for LoadShedder {
    fn default() -> LoadShedder {
        LoadShedder::new(ShedThresholds::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_sheds_before_interactive() {
        let mut s = LoadShedder::default();
        // At 0.65: anti-entropy shed, everything else kept.
        assert!(s.admit(WorkClass::AntiEntropy, 0.65));
        assert!(!s.admit(WorkClass::Repair, 0.65));
        assert!(!s.admit(WorkClass::Prefetch, 0.65));
        assert!(!s.admit(WorkClass::Interactive, 0.65));
        // At 0.9: all background shed, interactive still served.
        assert!(s.admit(WorkClass::AntiEntropy, 0.9));
        assert!(s.admit(WorkClass::Repair, 0.9));
        assert!(s.admit(WorkClass::Prefetch, 0.9));
        assert!(!s.admit(WorkClass::Interactive, 0.9));
        assert_eq!(s.background_shed(), 4);
        assert_eq!(s.shed_count(WorkClass::Interactive), 0);
        assert_eq!(s.kept_count(WorkClass::Interactive), 2);
    }

    #[test]
    fn constructor_normalizes_inverted_thresholds() {
        // Caller asks for interactive to shed *before* repair — the
        // constructor refuses, raising the protected classes instead.
        let s = LoadShedder::new(ShedThresholds {
            interactive: 0.2,
            prefetch: 0.1,
            repair: 0.9,
            anti_entropy: 0.5,
        });
        let t = s.thresholds();
        assert!(t.interactive >= t.prefetch);
        assert!(t.prefetch >= t.repair);
        assert!(t.repair >= t.anti_entropy);
        // Any saturation shedding interactive sheds background too.
        for sat in [0.0, 0.3, 0.5, 0.9, 1.0] {
            if s.would_shed(WorkClass::Interactive, sat) {
                assert!(s.would_shed(WorkClass::AntiEntropy, sat));
            }
        }
    }

    #[test]
    fn default_never_sheds_interactive_at_normalized_saturation() {
        let s = LoadShedder::default();
        assert!(!s.would_shed(WorkClass::Interactive, 0.999));
        // Even a pegged (full-queue) signal of exactly 1.0 does not
        // silently shed interactive work — typed rejection handles it.
        assert!(!s.would_shed(WorkClass::Interactive, 1.0));
        assert!(s.would_shed(WorkClass::Interactive, 1.1));
    }
}
