//! The brownout ladder: degrade service quality stepwise, not all at
//! once.
//!
//! Between "everything is fine" and "reject with [`Overloaded`]" there
//! are useful intermediate postures a saturated cache can take, each
//! trading a little quality for a lot of capacity:
//!
//! 1. [`Full`](BrownoutLevel::Full) — normal service.
//! 2. [`StaleAllowed`](BrownoutLevel::StaleAllowed) — serve stale
//!    cached copies instead of revalidating / lateral-fetching; the
//!    coop cache's `FetchTier::Stale` becomes a *load-management* tier
//!    here, not only a failure fallback.
//! 3. [`RedirectOrigin`](BrownoutLevel::RedirectOrigin) — stop doing
//!    lateral neighbor work entirely; what isn't cached locally goes
//!    straight to the origin (the CDN absorbs the crowd, which is
//!    exactly what origins are provisioned for).
//! 4. [`Reject`](BrownoutLevel::Reject) — refuse new work with a
//!    `retry_after`, protecting requests already admitted.
//!
//! Transitions are driven by the measured saturation scalar (from
//! [`Admission::saturation`](crate::Admission::saturation)) through
//! [`Brownout::observe`], with two stabilizers so the ladder does not
//! flap: *hysteresis* (stepping down requires saturation below the
//! rung's entry threshold minus a gap) and a *minimum dwell time* per
//! rung.
//!
//! [`Overloaded`]: crate::Overloaded

use hpop_netsim::time::{SimDuration, SimTime};

/// The degradation rungs, in order of increasing severity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum BrownoutLevel {
    /// Normal service: fresh objects, lateral fetches, hedging.
    #[default]
    Full = 0,
    /// Serve stale cached copies to shed revalidation / lateral work.
    StaleAllowed = 1,
    /// Skip lateral fetches; cache misses go straight to the origin.
    RedirectOrigin = 2,
    /// Refuse new work (typed `Overloaded`), finish admitted work.
    Reject = 3,
}

impl BrownoutLevel {
    /// Metric-label name.
    pub fn name(self) -> &'static str {
        match self {
            BrownoutLevel::Full => "full",
            BrownoutLevel::StaleAllowed => "stale_allowed",
            BrownoutLevel::RedirectOrigin => "redirect_origin",
            BrownoutLevel::Reject => "reject",
        }
    }

    fn from_index(i: u8) -> BrownoutLevel {
        match i {
            0 => BrownoutLevel::Full,
            1 => BrownoutLevel::StaleAllowed,
            2 => BrownoutLevel::RedirectOrigin,
            _ => BrownoutLevel::Reject,
        }
    }
}

/// Ladder tuning.
#[derive(Clone, Copy, Debug)]
pub struct BrownoutConfig {
    /// Saturation at which `StaleAllowed` is entered.
    pub stale_at: f64,
    /// Saturation at which `RedirectOrigin` is entered.
    pub redirect_at: f64,
    /// Saturation at which `Reject` is entered.
    pub reject_at: f64,
    /// Hysteresis gap: to leave a rung, saturation must fall below
    /// `entry_threshold - hysteresis`.
    pub hysteresis: f64,
    /// Minimum time on a rung before any transition (up or down).
    pub min_dwell: SimDuration,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            stale_at: 0.7,
            redirect_at: 0.85,
            reject_at: 0.97,
            hysteresis: 0.1,
            min_dwell: SimDuration::from_secs(2),
        }
    }
}

/// The brownout state machine.
#[derive(Clone, Copy, Debug)]
pub struct Brownout {
    cfg: BrownoutConfig,
    level: BrownoutLevel,
    entered_at: SimTime,
    /// Transitions taken (up or down) since construction.
    transitions: u64,
}

impl Brownout {
    /// A ladder at `Full`, with entry thresholds normalized to be
    /// non-decreasing up the rungs.
    pub fn new(mut cfg: BrownoutConfig) -> Brownout {
        cfg.stale_at = cfg.stale_at.clamp(0.0, 1.0);
        cfg.redirect_at = cfg.redirect_at.clamp(cfg.stale_at, 1.0);
        cfg.reject_at = cfg.reject_at.clamp(cfg.redirect_at, 1.0);
        cfg.hysteresis = cfg.hysteresis.clamp(0.0, 1.0);
        Brownout {
            cfg,
            level: BrownoutLevel::Full,
            entered_at: SimTime::ZERO,
            transitions: 0,
        }
    }

    /// Entry threshold of a rung (`Full` is entered below everything).
    fn entry_threshold(&self, level: BrownoutLevel) -> f64 {
        match level {
            BrownoutLevel::Full => 0.0,
            BrownoutLevel::StaleAllowed => self.cfg.stale_at,
            BrownoutLevel::RedirectOrigin => self.cfg.redirect_at,
            BrownoutLevel::Reject => self.cfg.reject_at,
        }
    }

    /// The rung the raw thresholds map `saturation` to, ignoring
    /// hysteresis and dwell.
    fn target_level(&self, saturation: f64) -> BrownoutLevel {
        if saturation >= self.cfg.reject_at {
            BrownoutLevel::Reject
        } else if saturation >= self.cfg.redirect_at {
            BrownoutLevel::RedirectOrigin
        } else if saturation >= self.cfg.stale_at {
            BrownoutLevel::StaleAllowed
        } else {
            BrownoutLevel::Full
        }
    }

    /// Feeds one saturation measurement at `now`, possibly moving one
    /// rung. Escalation jumps straight to the target rung (overload
    /// needs an immediate response); recovery steps down one rung at a
    /// time, each requiring the dwell time and the hysteresis margin —
    /// a ladder that climbed in one tick drains slowly and cannot
    /// flap. Returns the level in force after the observation.
    pub fn observe(&mut self, saturation: f64, now: SimTime) -> BrownoutLevel {
        let dwelled = now.saturating_since(self.entered_at) >= self.cfg.min_dwell;
        let target = self.target_level(saturation);
        if target > self.level {
            // Escalate immediately — dwell only gates *leaving* a
            // calmer rung, and climbing under rising saturation is
            // never flapping.
            self.move_to(target, now);
        } else if target < self.level && dwelled {
            // To step down one rung, saturation must clear the current
            // rung's entry threshold by the hysteresis gap.
            let exit_below = self.entry_threshold(self.level) - self.cfg.hysteresis;
            if saturation < exit_below {
                let down = BrownoutLevel::from_index(self.level as u8 - 1);
                self.move_to(down, now);
            }
        }
        self.level
    }

    fn move_to(&mut self, level: BrownoutLevel, now: SimTime) {
        self.level = level;
        self.entered_at = now;
        self.transitions += 1;
        hpop_obs::metrics()
            .counter(match level {
                BrownoutLevel::Full => "resilience.brownout.enter_full",
                BrownoutLevel::StaleAllowed => "resilience.brownout.enter_stale",
                BrownoutLevel::RedirectOrigin => "resilience.brownout.enter_redirect",
                BrownoutLevel::Reject => "resilience.brownout.enter_reject",
            })
            .incr();
    }

    /// The level in force (without feeding a new measurement).
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// Transitions taken since construction (a flap detector for
    /// tests and experiments).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

impl Default for Brownout {
    fn default() -> Brownout {
        Brownout::new(BrownoutConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn escalates_immediately_and_recovers_stepwise() {
        let mut b = Brownout::default();
        assert_eq!(b.observe(0.5, t(0)), BrownoutLevel::Full);
        // A spike jumps straight to Reject.
        assert_eq!(b.observe(0.99, t(1)), BrownoutLevel::Reject);
        // Saturation collapses — but recovery is one rung per dwell.
        assert_eq!(b.observe(0.1, t(1)), BrownoutLevel::Reject, "dwell");
        assert_eq!(b.observe(0.1, t(4)), BrownoutLevel::RedirectOrigin);
        assert_eq!(b.observe(0.1, t(5)), BrownoutLevel::RedirectOrigin);
        assert_eq!(b.observe(0.1, t(7)), BrownoutLevel::StaleAllowed);
        assert_eq!(b.observe(0.1, t(10)), BrownoutLevel::Full);
        assert_eq!(b.transitions(), 4);
    }

    #[test]
    fn hysteresis_blocks_borderline_recovery() {
        let mut b = Brownout::default();
        b.observe(0.75, t(0));
        assert_eq!(b.level(), BrownoutLevel::StaleAllowed);
        // 0.65 is below stale_at=0.7 but not below 0.7-0.1: stay put.
        assert_eq!(b.observe(0.65, t(10)), BrownoutLevel::StaleAllowed);
        assert_eq!(b.observe(0.55, t(20)), BrownoutLevel::Full);
    }

    #[test]
    fn thresholds_normalize_to_monotone() {
        let b = Brownout::new(BrownoutConfig {
            stale_at: 0.9,
            redirect_at: 0.2,
            reject_at: 0.5,
            ..BrownoutConfig::default()
        });
        assert!(b.cfg.stale_at <= b.cfg.redirect_at);
        assert!(b.cfg.redirect_at <= b.cfg.reject_at);
    }
}
