//! A synchronous topic bus connecting appliance services.
//!
//! §IV-D ("Leveraging the Data Attic"): "the HPoP will provide a generic
//! modular framework such that many forms of information within the data
//! attic can trigger data collection". The bus is that framework: the
//! attic publishes `attic.write` events; Internet@home subscribes and
//! turns them into prefetch hints.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An event on the bus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Dotted topic (`"attic.write"`, `"service.failed"`).
    pub topic: String,
    /// Free-form payload (services define their own mini-schemas).
    pub payload: String,
}

impl Event {
    /// Creates an event.
    pub fn new(topic: impl Into<String>, payload: impl Into<String>) -> Event {
        Event {
            topic: topic.into(),
            payload: payload.into(),
        }
    }
}

type Subscriber = Box<dyn FnMut(&Event) + Send>;

struct BusInner {
    subscribers: BTreeMap<String, Vec<Subscriber>>,
    published: u64,
    delivered: u64,
}

/// A cheaply cloneable synchronous pub/sub bus.
///
/// Delivery is immediate and in subscription order; a subscriber matches
/// an event if its pattern equals the topic or is a `prefix.*` glob.
#[derive(Clone)]
pub struct EventBus {
    inner: Arc<Mutex<BusInner>>,
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("EventBus")
            .field("topics", &inner.subscribers.keys().collect::<Vec<_>>())
            .field("published", &inner.published)
            .finish()
    }
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> Self {
        EventBus {
            inner: Arc::new(Mutex::new(BusInner {
                subscribers: BTreeMap::new(),
                published: 0,
                delivered: 0,
            })),
        }
    }

    /// Subscribes to a topic, or to a subtree with a `prefix.*` pattern.
    pub fn subscribe(&self, pattern: &str, f: impl FnMut(&Event) + Send + 'static) {
        self.inner
            .lock()
            .subscribers
            .entry(pattern.to_owned())
            .or_default()
            .push(Box::new(f));
    }

    /// Publishes an event, delivering synchronously to every matching
    /// subscriber. Returns the number of deliveries.
    pub fn publish(&self, event: Event) -> usize {
        let mut inner = self.inner.lock();
        inner.published += 1;
        // Collect matching patterns first to appease the borrow checker.
        let patterns: Vec<String> = inner
            .subscribers
            .keys()
            .filter(|p| Self::matches(p, &event.topic))
            .cloned()
            .collect();
        let mut count = 0;
        for p in patterns {
            if let Some(subs) = inner.subscribers.get_mut(&p) {
                for s in subs.iter_mut() {
                    s(&event);
                    count += 1;
                }
            }
        }
        inner.delivered += count as u64;
        count
    }

    fn matches(pattern: &str, topic: &str) -> bool {
        if let Some(prefix) = pattern.strip_suffix(".*") {
            topic.starts_with(prefix)
                && topic.len() > prefix.len()
                && topic.as_bytes()[prefix.len()] == b'.'
        } else {
            pattern == topic
        }
    }

    /// (published, delivered) counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.published, inner.delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn exact_topic_delivery() {
        let bus = EventBus::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        bus.subscribe("attic.write", move |e| {
            assert_eq!(e.payload, "records/2026.json");
            h.fetch_add(1, Ordering::SeqCst);
        });
        let n = bus.publish(Event::new("attic.write", "records/2026.json"));
        assert_eq!(n, 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(bus.publish(Event::new("attic.read", "x")), 0);
    }

    #[test]
    fn glob_subscriptions() {
        let bus = EventBus::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        bus.subscribe("attic.*", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        bus.publish(Event::new("attic.write", ""));
        bus.publish(Event::new("attic.lock.acquired", ""));
        bus.publish(Event::new("atticology", "")); // must NOT match
        bus.publish(Event::new("attic", "")); // bare prefix: no dot segment
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn multiple_subscribers_all_fire() {
        let bus = EventBus::new();
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..3 {
            let h = hits.clone();
            bus.subscribe("t", move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(bus.publish(Event::new("t", "")), 3);
    }

    #[test]
    fn stats_track() {
        let bus = EventBus::new();
        bus.subscribe("a", |_| {});
        bus.publish(Event::new("a", ""));
        bus.publish(Event::new("b", ""));
        assert_eq!(bus.stats(), (2, 1));
    }

    #[test]
    fn clones_share_subscribers() {
        let bus = EventBus::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        bus.clone().subscribe("x", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        bus.publish(Event::new("x", ""));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
