//! A synchronous topic bus connecting appliance services.
//!
//! §IV-D ("Leveraging the Data Attic"): "the HPoP will provide a generic
//! modular framework such that many forms of information within the data
//! attic can trigger data collection". The bus is that framework: the
//! attic publishes `attic.write` events; Internet@home subscribes and
//! turns them into prefetch hints.

use hpop_obs::json::Value;
use hpop_obs::{MetricsRegistry, TraceCtx};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An event on the bus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Dotted topic (`"attic.write"`, `"service.failed"`).
    pub topic: String,
    /// Payload; structured events carry a JSON object (see
    /// [`Event::structured`]), legacy ones free-form text.
    pub payload: String,
    /// Causal context of the request that produced this event, if it
    /// is part of a sampled trace. Subscribers that do further work on
    /// behalf of the event should open child spans under it so the
    /// trace tree follows the causal chain across the bus.
    pub ctx: Option<TraceCtx>,
}

impl Event {
    /// Creates an event with a free-form payload.
    pub fn new(topic: impl Into<String>, payload: impl Into<String>) -> Event {
        Event {
            topic: topic.into(),
            payload: payload.into(),
            ctx: None,
        }
    }

    /// Attaches the causal context of the producing request. A null
    /// (unsampled) context is normalized to `None` so subscribers can
    /// test `ctx.is_some()` alone.
    pub fn with_ctx(mut self, ctx: TraceCtx) -> Event {
        self.ctx = ctx.is_sampled().then_some(ctx);
        self
    }

    /// Creates an event whose payload is a JSON object built from
    /// `fields`, so subscribers can parse it instead of scraping text.
    pub fn structured<K, V>(
        topic: impl Into<String>,
        fields: impl IntoIterator<Item = (K, V)>,
    ) -> Event
    where
        K: Into<String>,
        V: Into<Value>,
    {
        let mut obj = Value::obj();
        for (k, v) in fields {
            obj.set(k.into(), v.into());
        }
        Event {
            topic: topic.into(),
            payload: obj.to_json(),
            ctx: None,
        }
    }

    /// Parses the payload as JSON, for structured events.
    pub fn json(&self) -> Option<Value> {
        hpop_obs::json::parse(&self.payload).ok()
    }
}

/// Bus counters returned by [`EventBus::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Events published.
    pub published: u64,
    /// Subscriber deliveries (one publish can deliver many times).
    pub delivered: u64,
    /// Events published with no matching subscriber.
    pub dropped: u64,
}

type Subscriber = Box<dyn FnMut(&Event) + Send>;

struct BusInner {
    subscribers: BTreeMap<String, Vec<Subscriber>>,
    stats: BusStats,
    metrics: MetricsRegistry,
}

/// A cheaply cloneable synchronous pub/sub bus.
///
/// Delivery is immediate and in subscription order; a subscriber matches
/// an event if its pattern equals the topic or is a `prefix.*` glob.
#[derive(Clone)]
pub struct EventBus {
    inner: Arc<Mutex<BusInner>>,
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("EventBus")
            .field("topics", &inner.subscribers.keys().collect::<Vec<_>>())
            .field("published", &inner.stats.published)
            .finish()
    }
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> Self {
        EventBus {
            inner: Arc::new(Mutex::new(BusInner {
                subscribers: BTreeMap::new(),
                stats: BusStats::default(),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// The registry holding the bus's per-topic delivery-latency
    /// histograms (`bus.topic.<topic>.deliver_ns`) and counters.
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner.lock().metrics.clone()
    }

    /// Swaps in a shared registry (e.g. the experiment's). Call before
    /// publishing; earlier metrics stay in the old registry.
    pub fn use_metrics(&self, metrics: MetricsRegistry) {
        self.inner.lock().metrics = metrics;
    }

    /// Subscribes to a topic, or to a subtree with a `prefix.*` pattern.
    pub fn subscribe(&self, pattern: &str, f: impl FnMut(&Event) + Send + 'static) {
        self.inner
            .lock()
            .subscribers
            .entry(pattern.to_owned())
            .or_default()
            .push(Box::new(f));
    }

    /// Publishes an event, delivering synchronously to every matching
    /// subscriber. Returns the number of deliveries.
    pub fn publish(&self, event: Event) -> usize {
        let mut inner = self.inner.lock();
        inner.stats.published += 1;
        // Collect matching patterns first to appease the borrow checker.
        let patterns: Vec<String> = inner
            .subscribers
            .keys()
            .filter(|p| Self::matches(p, &event.topic))
            .cloned()
            .collect();
        let start = std::time::Instant::now();
        let mut count = 0;
        for p in patterns {
            if let Some(subs) = inner.subscribers.get_mut(&p) {
                for s in subs.iter_mut() {
                    s(&event);
                    count += 1;
                }
            }
        }
        inner.stats.delivered += count as u64;
        if count == 0 {
            inner.stats.dropped += 1;
        }
        let m = &inner.metrics;
        m.counter("bus.published").incr();
        m.counter("bus.delivered").add(count as u64);
        if count == 0 {
            m.counter("bus.dropped").incr();
        } else {
            m.histogram(&format!("bus.topic.{}.deliver_ns", event.topic))
                .record(start.elapsed().as_nanos() as u64);
        }
        count
    }

    fn matches(pattern: &str, topic: &str) -> bool {
        if let Some(prefix) = pattern.strip_suffix(".*") {
            topic.starts_with(prefix)
                && topic.len() > prefix.len()
                && topic.as_bytes()[prefix.len()] == b'.'
        } else {
            pattern == topic
        }
    }

    /// Published/delivered/dropped counters.
    pub fn stats(&self) -> BusStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn exact_topic_delivery() {
        let bus = EventBus::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        bus.subscribe("attic.write", move |e| {
            assert_eq!(e.payload, "records/2026.json");
            h.fetch_add(1, Ordering::SeqCst);
        });
        let n = bus.publish(Event::new("attic.write", "records/2026.json"));
        assert_eq!(n, 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(bus.publish(Event::new("attic.read", "x")), 0);
    }

    #[test]
    fn glob_subscriptions() {
        let bus = EventBus::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        bus.subscribe("attic.*", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        bus.publish(Event::new("attic.write", ""));
        bus.publish(Event::new("attic.lock.acquired", ""));
        bus.publish(Event::new("atticology", "")); // must NOT match
        bus.publish(Event::new("attic", "")); // bare prefix: no dot segment
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn multiple_subscribers_all_fire() {
        let bus = EventBus::new();
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..3 {
            let h = hits.clone();
            bus.subscribe("t", move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(bus.publish(Event::new("t", "")), 3);
    }

    #[test]
    fn stats_track() {
        let bus = EventBus::new();
        bus.subscribe("a", |_| {});
        bus.publish(Event::new("a", ""));
        bus.publish(Event::new("b", "")); // nobody listening: dropped
        assert_eq!(
            bus.stats(),
            BusStats {
                published: 2,
                delivered: 1,
                dropped: 1
            }
        );
    }

    #[test]
    fn per_topic_latency_histograms() {
        let bus = EventBus::new();
        bus.subscribe("attic.write", |_| {});
        bus.publish(Event::new("attic.write", "x"));
        bus.publish(Event::new("attic.write", "y"));
        let m = bus.metrics();
        assert_eq!(m.counter("bus.published").get(), 2);
        assert_eq!(m.counter("bus.delivered").get(), 2);
        assert_eq!(m.histogram("bus.topic.attic.write.deliver_ns").count(), 2);
    }

    #[test]
    fn with_ctx_normalizes_unsampled_to_none() {
        let tracer = hpop_obs::SpanTracer::new(8);
        tracer.enable();
        let ctx = tracer.root();
        let e = Event::new("attic.write", "x").with_ctx(ctx);
        assert_eq!(e.ctx, Some(ctx));
        let unsampled = Event::new("attic.write", "x").with_ctx(TraceCtx::NONE);
        assert_eq!(unsampled.ctx, None);
        // Subscribers see the context and can hang children off it.
        let bus = EventBus::new();
        let seen = Arc::new(Mutex::new(None));
        let s = seen.clone();
        bus.subscribe("attic.write", move |e| {
            *s.lock() = e.ctx;
        });
        bus.publish(e);
        assert_eq!(*seen.lock(), Some(ctx));
    }

    #[test]
    fn structured_events_parse_back() {
        let e = Event::structured("service.failed", [("service", "attic"), ("phase", "start")]);
        let v = e.json().expect("structured payload is JSON");
        assert_eq!(v.get("service").and_then(|s| s.as_str()), Some("attic"));
        assert_eq!(v.get("phase").and_then(|s| s.as_str()), Some("start"));
        assert_eq!(Event::new("t", "not json").json(), None);
    }

    #[test]
    fn clones_share_subscribers() {
        let bus = EventBus::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        bus.clone().subscribe("x", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        bus.publish(Event::new("x", ""));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
