//! # hpop-core — the Home Point of Presence appliance platform
//!
//! §III: the HPoP is "an extensible and configurable platform that can
//! also run myriad mundane services for the user and the household",
//! "operational as long as there is power and online as long as there is
//! Internet connectivity". This crate is that platform; the four paper
//! services (attic, NoCDN peer, DCol waypoint, Internet@home) plug into
//! it as [`service::Service`] implementations.
//!
//! - [`clock`] — a time source abstraction so the same appliance code
//!   runs inside the deterministic simulator and in real processes.
//! - [`identity`] — households, users and devices.
//! - [`service`] — the service registry and lifecycle (start/stop/fail,
//!   uptime accounting — the "always-on" property §II leans on).
//! - [`events`] — a synchronous topic bus connecting services (e.g. the
//!   attic notifies Internet@home when new data suggests new content to
//!   gather, §IV-D "Leveraging the Data Attic").
//! - [`vault`] — the encrypted credential vault that lets the HPoP
//!   collect deep-web content on the user's behalf (§IV-D: "the HPoP
//!   will hold user credentials").
//! - [`auth`] — HMAC-signed capability tokens scoping external access
//!   (the mechanism behind the attic's provider grants).
//! - [`appliance`] — the assembled [`Appliance`].
//!
//! ```
//! use hpop_core::{Appliance, HouseholdConfig};
//!
//! let mut hpop = Appliance::new(HouseholdConfig::named("doe-family"));
//! hpop.power_on();
//! assert!(hpop.is_online());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appliance;
pub mod auth;
pub mod clock;
pub mod events;
pub mod identity;
pub mod service;
pub mod vault;

pub use appliance::{Appliance, HouseholdConfig};
pub use auth::{CapabilityToken, Permission, TokenVerifier};
pub use clock::{Clock, ManualClock};
pub use events::{Event, EventBus};
pub use identity::{Device, DeviceId, Household, User, UserId};
pub use service::{Service, ServiceRegistry, ServiceStatus};
pub use vault::{CredentialVault, SiteCredential};
