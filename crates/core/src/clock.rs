//! Time-source abstraction.
//!
//! Appliance code asks a [`Clock`] for the current instant instead of the
//! OS, so the same service logic runs under the deterministic simulator
//! (which advances a [`ManualClock`]) and in ordinary processes.

use hpop_netsim::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A source of the current instant.
pub trait Clock {
    /// The current time.
    fn now(&self) -> SimTime;
}

/// A clock advanced explicitly by its owner (the simulator or a test).
///
/// Cheap to clone; clones share the same underlying time.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at `t`.
    pub fn starting_at(t: SimTime) -> Self {
        let c = Self::new();
        c.set(t);
        c
    }

    /// Sets the time (monotonicity is the caller's responsibility; the
    /// simulator guarantees it).
    pub fn set(&self, t: SimTime) {
        self.nanos.store(t.as_nanos(), Ordering::SeqCst);
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.nanos.fetch_add(d.as_nanos(), Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(5));
        c.set(SimTime::from_secs(100));
        assert_eq!(c.now(), SimTime::from_secs(100));
    }

    #[test]
    fn clones_share_time() {
        let a = ManualClock::starting_at(SimTime::from_secs(1));
        let b = a.clone();
        a.advance(SimDuration::from_secs(1));
        assert_eq!(b.now(), SimTime::from_secs(2));
    }
}
