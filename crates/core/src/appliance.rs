//! The assembled HPoP appliance.
//!
//! §II: "we assume it is operational as long as there is power and online
//! as long as there is Internet connectivity, regardless of which if any
//! end-user devices are connected." [`Appliance`] bundles the household,
//! the service registry, the event bus, the credential vault and the
//! reachability planner into the single box the paper envisions
//! ("built into the home's access router … or co-locate with another
//! resident device").

use crate::auth::TokenVerifier;
use crate::clock::{Clock, ManualClock};
use crate::events::EventBus;
use crate::identity::Household;
use crate::service::ServiceRegistry;
use crate::vault::CredentialVault;
use hpop_crypto::sha256::Sha256;
use hpop_nat::behavior::NatProfile;
use hpop_nat::traversal::{plan_reachability, ReachabilityPlan};
use hpop_netsim::time::{SimDuration, SimTime};

/// Static configuration an appliance is provisioned with.
#[derive(Clone, Debug)]
pub struct HouseholdConfig {
    /// Household display name (also seeds the appliance key).
    pub name: String,
    /// NAT devices between the home and the public Internet, innermost
    /// first (empty = public address).
    pub nat_chain: Vec<NatProfile>,
}

impl HouseholdConfig {
    /// A config with the given name and a typical home NAT.
    pub fn named(name: impl Into<String>) -> HouseholdConfig {
        HouseholdConfig {
            name: name.into(),
            nat_chain: vec![NatProfile::port_restricted_cone()],
        }
    }

    /// Builder-style NAT chain override.
    pub fn with_nat_chain(mut self, chain: Vec<NatProfile>) -> HouseholdConfig {
        self.nat_chain = chain;
        self
    }
}

/// A Home Point of Presence.
#[derive(Debug)]
pub struct Appliance {
    config: HouseholdConfig,
    household: Household,
    clock: ManualClock,
    registry: ServiceRegistry,
    bus: EventBus,
    vault: CredentialVault,
    verifier: TokenVerifier,
    powered_on_at: Option<SimTime>,
    total_uptime: SimDuration,
    reachability: Option<ReachabilityPlan>,
}

impl Appliance {
    /// Provisions an appliance (powered off) for a household.
    pub fn new(config: HouseholdConfig) -> Appliance {
        let key = *Sha256::digest(format!("hpop-appliance:{}", config.name).as_bytes()).as_bytes();
        Appliance {
            household: Household::new(config.name.clone()),
            clock: ManualClock::new(),
            registry: ServiceRegistry::new(),
            bus: EventBus::new(),
            vault: CredentialVault::new(key),
            verifier: TokenVerifier::new(key),
            powered_on_at: None,
            total_uptime: SimDuration::ZERO,
            reachability: None,
            config,
        }
    }

    /// Powers the appliance on: plans reachability, starts every
    /// registered service, and begins accumulating uptime. Idempotent.
    pub fn power_on(&mut self) {
        if self.powered_on_at.is_some() {
            return;
        }
        self.powered_on_at = Some(self.clock.now());
        self.reachability = Some(plan_reachability(&self.config.nat_chain));
        let failed = self.registry.start_all(&self.clock);
        for name in failed {
            self.bus.publish(crate::events::Event::structured(
                "service.failed",
                [
                    ("service", name.as_str()),
                    ("phase", "start"),
                    ("household", self.config.name.as_str()),
                ],
            ));
        }
    }

    /// Powers the appliance off, stopping services and freezing uptime.
    pub fn power_off(&mut self) {
        if let Some(t0) = self.powered_on_at.take() {
            self.total_uptime += self.clock.now().saturating_since(t0);
            self.registry.stop_all(&self.clock);
            self.reachability = None;
        }
    }

    /// Whether the appliance is powered and reachable (§II's "online as
    /// long as there is Internet connectivity").
    pub fn is_online(&self) -> bool {
        self.powered_on_at.is_some() && self.reachability.is_some()
    }

    /// How the HPoP is reached from outside, when online.
    pub fn reachability(&self) -> Option<ReachabilityPlan> {
        self.reachability
    }

    /// Total accumulated uptime.
    pub fn uptime(&self) -> SimDuration {
        let mut up = self.total_uptime;
        if let Some(t0) = self.powered_on_at {
            up += self.clock.now().saturating_since(t0);
        }
        up
    }

    /// The appliance clock (share it with the simulator driving time).
    pub fn clock(&self) -> ManualClock {
        self.clock.clone()
    }

    /// The household this appliance serves.
    pub fn household(&self) -> &Household {
        &self.household
    }

    /// Mutable household access (enroll users/devices).
    pub fn household_mut(&mut self) -> &mut Household {
        &mut self.household
    }

    /// The service registry.
    pub fn services(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// Mutable service registry access (register/start/stop).
    pub fn services_mut(&mut self) -> &mut ServiceRegistry {
        &mut self.registry
    }

    /// The inter-service event bus (cheap to clone).
    pub fn bus(&self) -> EventBus {
        self.bus.clone()
    }

    /// The credential vault.
    pub fn vault_mut(&mut self) -> &mut CredentialVault {
        &mut self.vault
    }

    /// The capability-token issuer/verifier bound to the appliance key.
    pub fn tokens(&self) -> &TokenVerifier {
        &self.verifier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Service, ServiceStatus};
    use hpop_nat::traversal::Traversal;

    struct Dummy;
    impl Service for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
    }

    #[test]
    fn power_cycle_and_uptime() {
        let mut a = Appliance::new(HouseholdConfig::named("doe"));
        assert!(!a.is_online());
        a.power_on();
        assert!(a.is_online());
        a.clock().advance(SimDuration::from_secs(3600));
        assert_eq!(a.uptime(), SimDuration::from_secs(3600));
        a.power_off();
        a.clock().advance(SimDuration::from_secs(100));
        assert_eq!(a.uptime(), SimDuration::from_secs(3600));
        a.power_on();
        a.clock().advance(SimDuration::from_secs(50));
        assert_eq!(a.uptime(), SimDuration::from_secs(3650));
    }

    #[test]
    fn power_on_starts_registered_services() {
        let mut a = Appliance::new(HouseholdConfig::named("doe"));
        a.services_mut().register(Dummy);
        a.power_on();
        assert_eq!(a.services().status("dummy"), Some(ServiceStatus::Running));
        a.power_off();
        assert_eq!(a.services().status("dummy"), Some(ServiceStatus::Stopped));
    }

    #[test]
    fn reachability_follows_nat_chain() {
        let mut a = Appliance::new(HouseholdConfig::named("doe"));
        a.power_on();
        assert_eq!(a.reachability().unwrap().method, Traversal::UpnpPortMap);
        let mut b = Appliance::new(HouseholdConfig::named("cgn-home").with_nat_chain(vec![
            NatProfile::port_restricted_cone(),
            NatProfile::carrier_grade(),
        ]));
        b.power_on();
        assert_eq!(b.reachability().unwrap().method, Traversal::StunHolePunch);
    }

    #[test]
    fn tokens_bound_to_appliance_identity() {
        use crate::auth::Permission;
        let a = Appliance::new(HouseholdConfig::named("doe"));
        let other = Appliance::new(HouseholdConfig::named("smith"));
        let t = a.tokens().issue(
            "clinic",
            "/health",
            Permission::Read,
            SimTime::from_secs(10),
        );
        assert!(a.tokens().verify(&t, SimTime::ZERO));
        assert!(!other.tokens().verify(&t, SimTime::ZERO));
    }

    #[test]
    fn idempotent_power_on() {
        let mut a = Appliance::new(HouseholdConfig::named("doe"));
        a.power_on();
        a.clock().advance(SimDuration::from_secs(10));
        a.power_on(); // must not reset the uptime origin
        assert_eq!(a.uptime(), SimDuration::from_secs(10));
    }
}
