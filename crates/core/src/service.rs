//! Service registry and lifecycle.
//!
//! The HPoP "can run myriad mundane services … a contacts server, a
//! calendar server, or an email inbox" (§III). Services register here;
//! the registry tracks state transitions and accumulates uptime — the
//! "always-on" property the paper's services assume, and the quantity
//! the availability experiments measure.

use crate::clock::Clock;
use hpop_netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// A service's lifecycle state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceStatus {
    /// Registered but never started.
    Stopped,
    /// Running.
    Running,
    /// Crashed/failed; must be restarted explicitly.
    Failed,
}

/// A pluggable appliance service.
pub trait Service {
    /// Stable service name (registry key), e.g. `"data-attic"`.
    fn name(&self) -> &str;

    /// Called when the registry starts the service. Errors leave the
    /// service in [`ServiceStatus::Failed`].
    ///
    /// # Errors
    ///
    /// Implementations return a human-readable reason on startup failure.
    fn start(&mut self) -> Result<(), String> {
        Ok(())
    }

    /// Called when the registry stops the service.
    fn stop(&mut self) {}
}

struct Registered {
    service: Box<dyn Service>,
    status: ServiceStatus,
    started_at: Option<SimTime>,
    accumulated_uptime: SimDuration,
    starts: u32,
    failures: u32,
}

/// The appliance's table of services.
pub struct ServiceRegistry {
    services: BTreeMap<String, Registered>,
}

impl fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("services", &self.services.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for ServiceRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ServiceRegistry {
            services: BTreeMap::new(),
        }
    }

    /// Registers a service (initially stopped). Replaces any service of
    /// the same name, stopping the old one first.
    pub fn register(&mut self, service: impl Service + 'static) {
        let name = service.name().to_owned();
        if let Some(mut old) = self.services.remove(&name) {
            if old.status == ServiceStatus::Running {
                old.service.stop();
            }
        }
        self.services.insert(
            name,
            Registered {
                service: Box::new(service),
                status: ServiceStatus::Stopped,
                started_at: None,
                accumulated_uptime: SimDuration::ZERO,
                starts: 0,
                failures: 0,
            },
        );
    }

    /// Starts a service. Returns `Err` with the failure reason if the
    /// service's `start` failed, or if it is unknown.
    ///
    /// # Errors
    ///
    /// Unknown service names and startup failures are reported as
    /// strings suitable for the appliance log.
    pub fn start(&mut self, name: &str, clock: &dyn Clock) -> Result<(), String> {
        let reg = self
            .services
            .get_mut(name)
            .ok_or_else(|| format!("unknown service '{name}'"))?;
        if reg.status == ServiceStatus::Running {
            return Ok(());
        }
        match reg.service.start() {
            Ok(()) => {
                reg.status = ServiceStatus::Running;
                reg.started_at = Some(clock.now());
                reg.starts += 1;
                Ok(())
            }
            Err(e) => {
                reg.status = ServiceStatus::Failed;
                reg.failures += 1;
                Err(e)
            }
        }
    }

    /// Stops a running service; no-op otherwise. Returns whether the
    /// service exists.
    pub fn stop(&mut self, name: &str, clock: &dyn Clock) -> bool {
        match self.services.get_mut(name) {
            Some(reg) => {
                if reg.status == ServiceStatus::Running {
                    reg.service.stop();
                    reg.status = ServiceStatus::Stopped;
                    if let Some(t0) = reg.started_at.take() {
                        reg.accumulated_uptime += clock.now().saturating_since(t0);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Marks a running service failed (crash injection in experiments).
    /// Returns whether the service exists and was running.
    pub fn fail(&mut self, name: &str, clock: &dyn Clock) -> bool {
        match self.services.get_mut(name) {
            Some(reg) if reg.status == ServiceStatus::Running => {
                reg.service.stop();
                reg.status = ServiceStatus::Failed;
                reg.failures += 1;
                if let Some(t0) = reg.started_at.take() {
                    reg.accumulated_uptime += clock.now().saturating_since(t0);
                }
                true
            }
            _ => false,
        }
    }

    /// A service's current status.
    pub fn status(&self, name: &str) -> Option<ServiceStatus> {
        self.services.get(name).map(|r| r.status)
    }

    /// Total accumulated uptime (including the current run).
    pub fn uptime(&self, name: &str, clock: &dyn Clock) -> Option<SimDuration> {
        let reg = self.services.get(name)?;
        let mut up = reg.accumulated_uptime;
        if let Some(t0) = reg.started_at {
            up += clock.now().saturating_since(t0);
        }
        Some(up)
    }

    /// (starts, failures) counters for a service.
    pub fn counters(&self, name: &str) -> Option<(u32, u32)> {
        self.services.get(name).map(|r| (r.starts, r.failures))
    }

    /// Starts every registered service; returns names that failed.
    pub fn start_all(&mut self, clock: &dyn Clock) -> Vec<String> {
        let names: Vec<String> = self.services.keys().cloned().collect();
        names
            .into_iter()
            .filter(|n| self.start(n, clock).is_err())
            .collect()
    }

    /// Stops every running service.
    pub fn stop_all(&mut self, clock: &dyn Clock) {
        let names: Vec<String> = self.services.keys().cloned().collect();
        for n in names {
            self.stop(&n, clock);
        }
    }

    /// Names of registered services.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.services.keys().map(String::as_str)
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True when no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    struct Dummy {
        name: String,
        fail_start: bool,
    }

    impl Service for Dummy {
        fn name(&self) -> &str {
            &self.name
        }
        fn start(&mut self) -> Result<(), String> {
            if self.fail_start {
                Err("refused".into())
            } else {
                Ok(())
            }
        }
    }

    fn dummy(name: &str) -> Dummy {
        Dummy {
            name: name.into(),
            fail_start: false,
        }
    }

    #[test]
    fn lifecycle_and_uptime() {
        let clock = ManualClock::new();
        let mut reg = ServiceRegistry::new();
        reg.register(dummy("attic"));
        assert_eq!(reg.status("attic"), Some(ServiceStatus::Stopped));
        reg.start("attic", &clock).unwrap();
        assert_eq!(reg.status("attic"), Some(ServiceStatus::Running));
        clock.advance(SimDuration::from_secs(100));
        assert_eq!(
            reg.uptime("attic", &clock),
            Some(SimDuration::from_secs(100))
        );
        reg.stop("attic", &clock);
        clock.advance(SimDuration::from_secs(50));
        // Uptime frozen while stopped.
        assert_eq!(
            reg.uptime("attic", &clock),
            Some(SimDuration::from_secs(100))
        );
        // Restart accumulates.
        reg.start("attic", &clock).unwrap();
        clock.advance(SimDuration::from_secs(10));
        assert_eq!(
            reg.uptime("attic", &clock),
            Some(SimDuration::from_secs(110))
        );
        assert_eq!(reg.counters("attic"), Some((2, 0)));
    }

    #[test]
    fn failed_start_reports_reason() {
        let clock = ManualClock::new();
        let mut reg = ServiceRegistry::new();
        reg.register(Dummy {
            name: "bad".into(),
            fail_start: true,
        });
        assert_eq!(reg.start("bad", &clock), Err("refused".to_owned()));
        assert_eq!(reg.status("bad"), Some(ServiceStatus::Failed));
        assert_eq!(reg.counters("bad"), Some((0, 1)));
    }

    #[test]
    fn unknown_service_errors() {
        let clock = ManualClock::new();
        let mut reg = ServiceRegistry::new();
        assert!(reg.start("ghost", &clock).is_err());
        assert!(!reg.stop("ghost", &clock));
        assert_eq!(reg.status("ghost"), None);
    }

    #[test]
    fn fail_injection() {
        let clock = ManualClock::new();
        let mut reg = ServiceRegistry::new();
        reg.register(dummy("nocdn-peer"));
        assert!(!reg.fail("nocdn-peer", &clock)); // not running yet
        reg.start("nocdn-peer", &clock).unwrap();
        clock.advance(SimDuration::from_secs(5));
        assert!(reg.fail("nocdn-peer", &clock));
        assert_eq!(reg.status("nocdn-peer"), Some(ServiceStatus::Failed));
        assert_eq!(
            reg.uptime("nocdn-peer", &clock),
            Some(SimDuration::from_secs(5))
        );
    }

    #[test]
    fn start_all_and_stop_all() {
        let clock = ManualClock::new();
        let mut reg = ServiceRegistry::new();
        reg.register(dummy("a"));
        reg.register(Dummy {
            name: "b".into(),
            fail_start: true,
        });
        let failed = reg.start_all(&clock);
        assert_eq!(failed, vec!["b".to_owned()]);
        reg.stop_all(&clock);
        assert_eq!(reg.status("a"), Some(ServiceStatus::Stopped));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn idempotent_start_does_not_double_count() {
        let clock = ManualClock::new();
        let mut reg = ServiceRegistry::new();
        reg.register(dummy("x"));
        reg.start("x", &clock).unwrap();
        reg.start("x", &clock).unwrap();
        assert_eq!(reg.counters("x"), Some((1, 0)));
    }
}
