//! Household, user and device identity.
//!
//! §III: the HPoP serves "the users in the house regardless of where they
//! are physically located". A [`Household`] owns users; each [`User`]
//! owns devices which may be at home or roaming — the distinction the
//! reachability planner and the attic's access checks care about.

use std::collections::BTreeMap;
use std::fmt;

/// Identifies a user within a household.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UserId(pub u32);

/// Identifies a device within a household.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DeviceId(pub u32);

/// A household member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct User {
    /// Display name.
    pub name: String,
    /// Whether this user may administer the appliance (grant access,
    /// enroll providers, manage backups).
    pub admin: bool,
}

/// Where a device currently is, relative to the home network.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DeviceLocation {
    /// On the home LAN.
    #[default]
    Home,
    /// Outside; reaches the HPoP through its public presence.
    Roaming,
}

/// A user's device (phone, laptop, set-top box …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Device {
    /// Display name.
    pub name: String,
    /// Owner.
    pub owner: UserId,
    /// Current location.
    pub location: DeviceLocation,
}

/// The household an appliance serves.
#[derive(Clone, Debug, Default)]
pub struct Household {
    name: String,
    users: BTreeMap<UserId, User>,
    devices: BTreeMap<DeviceId, Device>,
    next_user: u32,
    next_device: u32,
}

impl Household {
    /// Creates an empty household.
    pub fn new(name: impl Into<String>) -> Household {
        Household {
            name: name.into(),
            ..Household::default()
        }
    }

    /// The household name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a user; the first user added becomes an admin automatically
    /// (someone must be able to administer a fresh appliance).
    pub fn add_user(&mut self, name: impl Into<String>) -> UserId {
        let id = UserId(self.next_user);
        self.next_user += 1;
        let admin = self.users.is_empty();
        self.users.insert(
            id,
            User {
                name: name.into(),
                admin,
            },
        );
        id
    }

    /// Looks up a user.
    pub fn user(&self, id: UserId) -> Option<&User> {
        self.users.get(&id)
    }

    /// Grants or revokes admin rights. Returns `false` for unknown users
    /// or when revoking would leave no admin.
    pub fn set_admin(&mut self, id: UserId, admin: bool) -> bool {
        if !self.users.contains_key(&id) {
            return false;
        }
        if !admin {
            let other_admins = self
                .users
                .iter()
                .filter(|(uid, u)| **uid != id && u.admin)
                .count();
            if other_admins == 0 {
                return false;
            }
        }
        self.users.get_mut(&id).expect("checked").admin = admin;
        true
    }

    /// Registers a device for a user.
    ///
    /// # Panics
    ///
    /// Panics if the owner is unknown.
    pub fn add_device(&mut self, owner: UserId, name: impl Into<String>) -> DeviceId {
        assert!(self.users.contains_key(&owner), "unknown owner {owner:?}");
        let id = DeviceId(self.next_device);
        self.next_device += 1;
        self.devices.insert(
            id,
            Device {
                name: name.into(),
                owner,
                location: DeviceLocation::Home,
            },
        );
        id
    }

    /// Looks up a device.
    pub fn device(&self, id: DeviceId) -> Option<&Device> {
        self.devices.get(&id)
    }

    /// Moves a device between home and roaming. Returns `false` for
    /// unknown devices.
    pub fn set_location(&mut self, id: DeviceId, location: DeviceLocation) -> bool {
        match self.devices.get_mut(&id) {
            Some(d) => {
                d.location = location;
                true
            }
            None => false,
        }
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Iterates over users.
    pub fn users(&self) -> impl Iterator<Item = (UserId, &User)> {
        self.users.iter().map(|(&id, u)| (id, u))
    }

    /// Iterates over devices.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices.iter().map(|(&id, d)| (id, d))
    }
}

impl fmt::Display for Household {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "household '{}' ({} users, {} devices)",
            self.name,
            self.users.len(),
            self.devices.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_user_is_admin() {
        let mut h = Household::new("doe");
        let alice = h.add_user("alice");
        let bob = h.add_user("bob");
        assert!(h.user(alice).unwrap().admin);
        assert!(!h.user(bob).unwrap().admin);
    }

    #[test]
    fn cannot_remove_last_admin() {
        let mut h = Household::new("doe");
        let alice = h.add_user("alice");
        let bob = h.add_user("bob");
        assert!(!h.set_admin(alice, false));
        assert!(h.set_admin(bob, true));
        assert!(h.set_admin(alice, false));
        assert!(!h.user(alice).unwrap().admin);
    }

    #[test]
    fn devices_belong_to_users_and_roam() {
        let mut h = Household::new("doe");
        let alice = h.add_user("alice");
        let phone = h.add_device(alice, "alice-phone");
        assert_eq!(h.device(phone).unwrap().location, DeviceLocation::Home);
        assert!(h.set_location(phone, DeviceLocation::Roaming));
        assert_eq!(h.device(phone).unwrap().location, DeviceLocation::Roaming);
        assert!(!h.set_location(DeviceId(99), DeviceLocation::Home));
    }

    #[test]
    #[should_panic(expected = "unknown owner")]
    fn device_needs_valid_owner() {
        let mut h = Household::new("doe");
        h.add_device(UserId(3), "ghost-phone");
    }

    #[test]
    fn counts_and_display() {
        let mut h = Household::new("doe");
        let a = h.add_user("a");
        h.add_device(a, "d1");
        h.add_device(a, "d2");
        assert_eq!(h.user_count(), 1);
        assert_eq!(h.device_count(), 2);
        assert_eq!(h.to_string(), "household 'doe' (1 users, 2 devices)");
        assert_eq!(h.users().count(), 1);
        assert_eq!(h.devices().count(), 2);
    }
}
