//! HMAC-signed capability tokens.
//!
//! The attic's provider bootstrap (§IV-A) issues "a QR code that includes
//! all information needed to access the correct portion of the user's
//! data attic — everything from the IP address … to the proper initial
//! credentials to the location of the files within the attic". The
//! credential inside that QR payload is a [`CapabilityToken`]: subject,
//! path scope, permitted methods and expiry, authenticated by
//! HMAC-SHA-256 under the appliance key so the attic can verify it
//! statelessly.

use hpop_crypto::hmac::{hmac_sha256, verify_hmac_sha256, HmacTag};
use hpop_netsim::time::SimTime;

/// Operations a token may permit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Permission {
    /// Read objects under the scope.
    Read,
    /// Write (create/update) objects under the scope.
    Write,
    /// Both.
    ReadWrite,
}

impl Permission {
    /// Whether this permission allows reading.
    pub fn allows_read(self) -> bool {
        matches!(self, Permission::Read | Permission::ReadWrite)
    }

    /// Whether this permission allows writing.
    pub fn allows_write(self) -> bool {
        matches!(self, Permission::Write | Permission::ReadWrite)
    }
}

/// A scoped, expiring, HMAC-authenticated capability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapabilityToken {
    /// Who the capability was issued to (`"st-marys-clinic"`).
    pub subject: String,
    /// Path prefix the capability covers (`"/health/st-marys"`).
    pub scope: String,
    /// Permitted operations.
    pub permission: Permission,
    /// Expiry instant.
    pub expires_at: SimTime,
    tag: HmacTag,
}

impl CapabilityToken {
    fn message(subject: &str, scope: &str, permission: Permission, expires_at: SimTime) -> Vec<u8> {
        let perm = match permission {
            Permission::Read => "r",
            Permission::Write => "w",
            Permission::ReadWrite => "rw",
        };
        format!("{subject}\n{scope}\n{perm}\n{}", expires_at.as_nanos()).into_bytes()
    }

    /// Serializes the token to a compact wire form (the payload embedded
    /// in the attic's QR-code grants).
    pub fn encode(&self) -> String {
        let perm = match self.permission {
            Permission::Read => "r",
            Permission::Write => "w",
            Permission::ReadWrite => "rw",
        };
        let tag_hex: String = self.tag.0.iter().map(|b| format!("{b:02x}")).collect();
        format!(
            "{}|{}|{}|{}|{}",
            self.subject,
            self.scope,
            perm,
            self.expires_at.as_nanos(),
            tag_hex
        )
    }

    /// Parses a token from its wire form. The result still needs
    /// [`TokenVerifier::verify`] — decoding performs no authentication.
    pub fn decode(wire: &str) -> Option<CapabilityToken> {
        let mut parts = wire.split('|');
        let subject = parts.next()?.to_owned();
        let scope = parts.next()?.to_owned();
        let permission = match parts.next()? {
            "r" => Permission::Read,
            "w" => Permission::Write,
            "rw" => Permission::ReadWrite,
            _ => return None,
        };
        let expires_at = SimTime::from_nanos(parts.next()?.parse().ok()?);
        let tag_hex = parts.next()?;
        if tag_hex.len() != 64 || parts.next().is_some() {
            return None;
        }
        let mut tag = [0u8; 32];
        for (i, chunk) in tag_hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            tag[i] = (hi * 16 + lo) as u8;
        }
        Some(CapabilityToken {
            subject,
            scope,
            permission,
            expires_at,
            tag: HmacTag(tag),
        })
    }

    /// Whether a path falls inside this token's scope.
    pub fn covers(&self, path: &str) -> bool {
        path == self.scope
            || (path.starts_with(&self.scope)
                && (self.scope.ends_with('/')
                    || path.as_bytes().get(self.scope.len()) == Some(&b'/')))
    }
}

/// Issues and verifies capability tokens under the appliance key.
#[derive(Clone)]
pub struct TokenVerifier {
    key: [u8; 32],
}

impl std::fmt::Debug for TokenVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenVerifier").finish_non_exhaustive()
    }
}

impl TokenVerifier {
    /// Creates a verifier bound to the appliance key.
    pub fn new(key: [u8; 32]) -> TokenVerifier {
        TokenVerifier { key }
    }

    /// Issues a token.
    pub fn issue(
        &self,
        subject: &str,
        scope: &str,
        permission: Permission,
        expires_at: SimTime,
    ) -> CapabilityToken {
        let msg = CapabilityToken::message(subject, scope, permission, expires_at);
        CapabilityToken {
            subject: subject.to_owned(),
            scope: scope.to_owned(),
            permission,
            expires_at,
            tag: hmac_sha256(&self.key, &msg),
        }
    }

    /// Verifies a token's signature and expiry at `now`.
    pub fn verify(&self, token: &CapabilityToken, now: SimTime) -> bool {
        if now >= token.expires_at {
            return false;
        }
        let msg = CapabilityToken::message(
            &token.subject,
            &token.scope,
            token.permission,
            token.expires_at,
        );
        verify_hmac_sha256(&self.key, &msg, &token.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verifier() -> TokenVerifier {
        TokenVerifier::new([9u8; 32])
    }

    #[test]
    fn issue_verify_roundtrip() {
        let v = verifier();
        let t = v.issue(
            "clinic",
            "/health/clinic",
            Permission::ReadWrite,
            SimTime::from_secs(1000),
        );
        assert!(v.verify(&t, SimTime::from_secs(500)));
    }

    #[test]
    fn expiry_enforced() {
        let v = verifier();
        let t = v.issue("c", "/p", Permission::Read, SimTime::from_secs(10));
        assert!(v.verify(&t, SimTime::from_secs(9)));
        assert!(!v.verify(&t, SimTime::from_secs(10)));
    }

    #[test]
    fn tampering_detected() {
        let v = verifier();
        let mut t = v.issue("c", "/narrow", Permission::Read, SimTime::from_secs(10));
        t.scope = "/".into(); // widen the scope
        assert!(!v.verify(&t, SimTime::from_secs(1)));
        let mut t2 = v.issue("c", "/p", Permission::Read, SimTime::from_secs(10));
        t2.permission = Permission::ReadWrite; // escalate
        assert!(!v.verify(&t2, SimTime::from_secs(1)));
    }

    #[test]
    fn different_key_rejects() {
        let v1 = verifier();
        let v2 = TokenVerifier::new([1u8; 32]);
        let t = v1.issue("c", "/p", Permission::Read, SimTime::from_secs(10));
        assert!(!v2.verify(&t, SimTime::ZERO));
    }

    #[test]
    fn scope_coverage() {
        let v = verifier();
        let t = v.issue("c", "/health/clinic", Permission::Read, SimTime::MAX);
        assert!(t.covers("/health/clinic"));
        assert!(t.covers("/health/clinic/2026/visit.json"));
        assert!(!t.covers("/health/clinic-other/x"));
        assert!(!t.covers("/health"));
        assert!(!t.covers("/finance/tax.pdf"));
    }

    #[test]
    fn wire_roundtrip_preserves_validity() {
        let v = verifier();
        let t = v.issue(
            "clinic",
            "/health/clinic",
            Permission::ReadWrite,
            SimTime::from_secs(99),
        );
        let decoded = CapabilityToken::decode(&t.encode()).unwrap();
        assert_eq!(decoded, t);
        assert!(v.verify(&decoded, SimTime::from_secs(1)));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(CapabilityToken::decode("").is_none());
        assert!(CapabilityToken::decode("a|b|x|1|ff").is_none());
        assert!(CapabilityToken::decode("a|b|r|notanum|ff").is_none());
        assert!(CapabilityToken::decode(&format!("a|b|r|1|{}", "f".repeat(63))).is_none());
        // Tampered wire form decodes but fails verification.
        let v = verifier();
        let t = v.issue("c", "/p", Permission::Read, SimTime::from_secs(10));
        let tampered = t.encode().replace("/p", "/q");
        let dt = CapabilityToken::decode(&tampered).unwrap();
        assert!(!v.verify(&dt, SimTime::ZERO));
    }

    #[test]
    fn permissions() {
        assert!(Permission::Read.allows_read());
        assert!(!Permission::Read.allows_write());
        assert!(Permission::Write.allows_write());
        assert!(!Permission::Write.allows_read());
        assert!(Permission::ReadWrite.allows_read() && Permission::ReadWrite.allows_write());
    }
}
