//! The encrypted credential vault.
//!
//! §IV-D ("Deep Web Content"): "the HPoP will hold user credentials so it
//! can copy deep web content … providing these to a device in a user's
//! own house and ultimately under their control is much more palatable"
//! than giving them to a third party. Credentials are sealed at rest
//! with ChaCha20 under the appliance master key, and every access is
//! recorded in an audit log the household can inspect.

use crate::identity::UserId;
use hpop_crypto::chacha20::ChaCha20;
use hpop_crypto::sha256::Sha256;
use std::collections::BTreeMap;

/// A credential for one external site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteCredential {
    /// Account/login name.
    pub username: String,
    /// Secret (password, token, cookie …).
    pub secret: String,
}

#[derive(Clone)]
struct Sealed {
    owner: UserId,
    username: String,
    ciphertext: Vec<u8>,
    nonce: [u8; 12],
}

/// One audit-log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditEntry {
    /// The site whose credential was touched.
    pub site: String,
    /// What happened (`"store"`, `"access"`, `"revoke"`, `"denied"`).
    pub action: String,
    /// Who (or which service) did it.
    pub actor: String,
}

/// Encrypted-at-rest credential store with per-user ownership and an
/// audit trail.
pub struct CredentialVault {
    master_key: [u8; 32],
    sealed: BTreeMap<String, Sealed>,
    audit: Vec<AuditEntry>,
    nonce_counter: u64,
}

impl std::fmt::Debug for CredentialVault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CredentialVault")
            .field("sites", &self.sealed.keys().collect::<Vec<_>>())
            .field("audit_entries", &self.audit.len())
            .finish()
    }
}

impl CredentialVault {
    /// Creates a vault sealed under `master_key` (derived from the
    /// appliance's identity at provisioning time).
    pub fn new(master_key: [u8; 32]) -> CredentialVault {
        CredentialVault {
            master_key,
            sealed: BTreeMap::new(),
            audit: Vec::new(),
            nonce_counter: 0,
        }
    }

    /// Derives a vault from a passphrase (convenience for examples).
    pub fn from_passphrase(passphrase: &str) -> CredentialVault {
        Self::new(*Sha256::digest(passphrase.as_bytes()).as_bytes())
    }

    fn next_nonce(&mut self) -> [u8; 12] {
        self.nonce_counter += 1;
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&self.nonce_counter.to_le_bytes());
        n
    }

    /// Stores (or replaces) a credential owned by `owner`.
    pub fn store(&mut self, owner: UserId, site: &str, cred: SiteCredential, actor: &str) {
        let nonce = self.next_nonce();
        let ciphertext = ChaCha20::encrypt(&self.master_key, &nonce, cred.secret.as_bytes());
        self.sealed.insert(
            site.to_owned(),
            Sealed {
                owner,
                username: cred.username,
                ciphertext,
                nonce,
            },
        );
        self.audit.push(AuditEntry {
            site: site.to_owned(),
            action: "store".into(),
            actor: actor.to_owned(),
        });
    }

    /// Retrieves a credential on behalf of `requester`. Only the owner
    /// may access it; denials are audited too.
    pub fn access(&mut self, requester: UserId, site: &str, actor: &str) -> Option<SiteCredential> {
        let entry = self.sealed.get(site)?;
        if entry.owner != requester {
            self.audit.push(AuditEntry {
                site: site.to_owned(),
                action: "denied".into(),
                actor: actor.to_owned(),
            });
            return None;
        }
        let plain = ChaCha20::decrypt(&self.master_key, &entry.nonce, &entry.ciphertext);
        let cred = SiteCredential {
            username: entry.username.clone(),
            secret: String::from_utf8(plain).expect("vault stores UTF-8 secrets"),
        };
        self.audit.push(AuditEntry {
            site: site.to_owned(),
            action: "access".into(),
            actor: actor.to_owned(),
        });
        Some(cred)
    }

    /// Removes a credential (owner only). Returns whether it existed and
    /// was removed.
    pub fn revoke(&mut self, requester: UserId, site: &str, actor: &str) -> bool {
        match self.sealed.get(site) {
            Some(e) if e.owner == requester => {
                self.sealed.remove(site);
                self.audit.push(AuditEntry {
                    site: site.to_owned(),
                    action: "revoke".into(),
                    actor: actor.to_owned(),
                });
                true
            }
            _ => false,
        }
    }

    /// Sites with stored credentials.
    pub fn sites(&self) -> impl Iterator<Item = &str> {
        self.sealed.keys().map(String::as_str)
    }

    /// The audit trail, oldest first.
    pub fn audit_log(&self) -> &[AuditEntry] {
        &self.audit
    }

    /// Number of stored credentials.
    pub fn len(&self) -> usize {
        self.sealed.len()
    }

    /// True when the vault is empty.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vault() -> CredentialVault {
        CredentialVault::from_passphrase("household-secret")
    }

    const ALICE: UserId = UserId(0);
    const BOB: UserId = UserId(1);

    fn cred() -> SiteCredential {
        SiteCredential {
            username: "alice@mail.example".into(),
            secret: "hunter2".into(),
        }
    }

    #[test]
    fn store_access_roundtrip() {
        let mut v = vault();
        v.store(ALICE, "mail.example", cred(), "setup");
        let got = v.access(ALICE, "mail.example", "internet-home").unwrap();
        assert_eq!(got, cred());
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut v = vault();
        v.store(ALICE, "mail.example", cred(), "setup");
        let sealed = v.sealed.get("mail.example").unwrap();
        assert_ne!(sealed.ciphertext, b"hunter2".to_vec());
    }

    #[test]
    fn nonces_are_unique_per_store() {
        let mut v = vault();
        v.store(ALICE, "a", cred(), "s");
        v.store(ALICE, "b", cred(), "s");
        let na = v.sealed.get("a").unwrap().nonce;
        let nb = v.sealed.get("b").unwrap().nonce;
        assert_ne!(na, nb);
    }

    #[test]
    fn other_users_are_denied_and_audited() {
        let mut v = vault();
        v.store(ALICE, "mail.example", cred(), "setup");
        assert!(v.access(BOB, "mail.example", "snoop").is_none());
        let last = v.audit_log().last().unwrap();
        assert_eq!(last.action, "denied");
        assert_eq!(last.actor, "snoop");
    }

    #[test]
    fn revoke_requires_ownership() {
        let mut v = vault();
        v.store(ALICE, "mail.example", cred(), "setup");
        assert!(!v.revoke(BOB, "mail.example", "snoop"));
        assert!(v.revoke(ALICE, "mail.example", "alice-phone"));
        assert!(v.is_empty());
        assert!(v.access(ALICE, "mail.example", "x").is_none());
    }

    #[test]
    fn audit_log_orders_events() {
        let mut v = vault();
        v.store(ALICE, "s", cred(), "a1");
        v.access(ALICE, "s", "a2");
        v.revoke(ALICE, "s", "a3");
        let actions: Vec<&str> = v.audit_log().iter().map(|e| e.action.as_str()).collect();
        assert_eq!(actions, ["store", "access", "revoke"]);
    }

    #[test]
    fn unknown_site_is_none_without_audit() {
        let mut v = vault();
        assert!(v.access(ALICE, "ghost", "x").is_none());
        assert!(v.audit_log().is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.sites().count(), 0);
    }
}
