//! Property-based tests of the simulator's core invariants.

use crate::fairshare::{max_min_rates, Demand};
use crate::flow::{FlowId, FlowNet};
use crate::routing::RoutingTable;
use crate::time::{SimDuration, SimTime};
use crate::topology::{DirLinkId, Topology, TopologyBuilder};
use crate::units::Bandwidth;
use proptest::prelude::*;

/// Builds a dumbbell with the given per-pair edge capacities (Mbps) and
/// a shared core, returning per-flow demands crossing the core.
fn dumbbell(edges_mbps: &[u32], core_mbps: u32) -> (Topology, Vec<Demand>) {
    let mut b = TopologyBuilder::new();
    let left = b.add_node("l");
    let right = b.add_node("r");
    let core = b.add_link(
        left,
        right,
        Bandwidth::mbps(core_mbps as f64),
        SimDuration::from_millis(5),
    );
    let mut demands = Vec::new();
    for (i, &e) in edges_mbps.iter().enumerate() {
        let s = b.add_node(format!("s{i}"));
        let d = b.add_node(format!("d{i}"));
        let ls = b.add_link(
            s,
            left,
            Bandwidth::mbps(e as f64),
            SimDuration::from_millis(1),
        );
        let ld = b.add_link(
            right,
            d,
            Bandwidth::mbps(e as f64),
            SimDuration::from_millis(1),
        );
        demands.push(Demand {
            links: vec![ls.forward(), core.forward(), ld.forward()],
            cap: None,
        });
    }
    (b.build(), demands)
}

proptest! {
    /// Max-min fairness never oversubscribes any link, and every flow is
    /// bottlenecked somewhere (work conservation).
    #[test]
    fn fairshare_feasible_and_work_conserving(
        edges in proptest::collection::vec(1u32..2_000, 1..12),
        core in 1u32..20_000,
    ) {
        let (topo, demands) = dumbbell(&edges, core);
        let rates = max_min_rates(&topo, &demands);
        // Feasibility: per-directed-link usage within capacity.
        let mut usage = vec![0.0f64; topo.dir_link_count()];
        for (d, &r) in demands.iter().zip(&rates) {
            for &l in &d.links {
                usage[l.index()] += r;
            }
        }
        for (i, &u) in usage.iter().enumerate() {
            let cap = topo.dir_capacity(crate::topology::DirLinkId(i as u32)).bits_per_sec();
            prop_assert!(u <= cap * (1.0 + 1e-9) + 1.0, "link {i}: {u} > {cap}");
        }
        // Work conservation: every flow saturates at least one of its
        // links (otherwise it could grow — not max-min).
        for (d, &r) in demands.iter().zip(&rates) {
            let saturated = d.links.iter().any(|&l| {
                let cap = topo.dir_capacity(l).bits_per_sec();
                usage[l.index()] >= cap * (1.0 - 1e-6)
            });
            prop_assert!(saturated, "flow at {r} has slack on every link");
        }
    }

    /// Per-flow caps are hard limits, and capping one flow never reduces
    /// another flow's rate.
    #[test]
    fn caps_are_respected_and_never_hurt_others(
        edges in proptest::collection::vec(100u32..1_000, 2..8),
        cap_mbps in 1u32..500,
    ) {
        let (topo, mut demands) = dumbbell(&edges, 1_000);
        let before = max_min_rates(&topo, &demands);
        demands[0].cap = Some(Bandwidth::mbps(cap_mbps as f64));
        let after = max_min_rates(&topo, &demands);
        prop_assert!(after[0] <= cap_mbps as f64 * 1e6 * (1.0 + 1e-9));
        for i in 1..demands.len() {
            prop_assert!(
                after[i] >= before[i] * (1.0 - 1e-6),
                "flow {i} shrank: {} -> {}", before[i], after[i]
            );
        }
    }

    /// The incremental bottleneck-set allocator in [`FlowNet`] produces
    /// the same rates as the global progressive-filling oracle
    /// (`max_min_rates`) after every operation of a random add / cancel /
    /// re-cap sequence over a random topology, within 1e-6 relative.
    #[test]
    fn incremental_allocator_matches_oracle(
        chain in proptest::collection::vec(1u32..10_000, 4..9),
        extra in proptest::collection::vec((0usize..16, 0usize..16, 1u32..10_000), 0..6),
        ops in proptest::collection::vec(
            (0usize..64, 0u8..5, 0usize..16, 0usize..16, 0u32..2_000),
            1..40,
        ),
    ) {
        // Random connected topology: a chain plus random extra links.
        let mut b = TopologyBuilder::new();
        let n = chain.len() + 1;
        let nodes: Vec<_> = (0..n).map(|i| b.add_node(format!("n{i}"))).collect();
        for (i, &c) in chain.iter().enumerate() {
            b.add_link(
                nodes[i],
                nodes[i + 1],
                Bandwidth::mbps(c as f64),
                SimDuration::from_millis(1),
            );
        }
        for &(x, y, c) in &extra {
            let (x, y) = (x % n, y % n);
            if x != y {
                b.add_link(
                    nodes[x],
                    nodes[y],
                    Bandwidth::mbps(c as f64),
                    SimDuration::from_millis(1),
                );
            }
        }
        let topo = b.build();
        let mut rt = RoutingTable::new(&topo);
        let mut net = FlowNet::new(topo.clone());
        // (id, hops, cap) of every flow we believe to be live.
        let mut live: Vec<(FlowId, Vec<DirLinkId>, Option<Bandwidth>)> = Vec::new();
        let mut t_ns = 0u64;
        for &(pick, kind, x, y, c) in &ops {
            t_ns += 1_000_000;
            let now = SimTime::from_nanos(t_ns);
            net.advance(now);
            for (id, _) in net.take_completed() {
                live.retain(|(l, _, _)| *l != id);
            }
            match kind {
                // Start (weighted 3/5; mixes short flows that complete
                // mid-sequence with long ones that persist).
                0..=2 => {
                    let (src, dst) = (nodes[x % n], nodes[y % n]);
                    if src != dst {
                        if let Some(path) = rt.route(src, dst) {
                            let cap = (c % 3 != 0).then(|| Bandwidth::mbps((c + 1) as f64));
                            let bytes = if c % 5 == 0 { 10_000 } else { 1 << 30 };
                            let hops = path.hops().to_vec();
                            let id = net.start(src, dst, bytes, cap, now).unwrap();
                            live.push((id, hops, cap));
                        }
                    }
                }
                3 => {
                    if !live.is_empty() {
                        let (id, _, _) = live.remove(pick % live.len());
                        net.cancel(id, now);
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let k = pick % live.len();
                        let cap = (c % 2 == 0).then(|| Bandwidth::mbps((c + 1) as f64));
                        net.set_cap(live[k].0, cap, now);
                        live[k].2 = cap;
                    }
                }
            }
            for (id, _) in net.take_completed() {
                live.retain(|(l, _, _)| *l != id);
            }
            let demands: Vec<Demand> = live
                .iter()
                .map(|(_, hops, cap)| Demand { links: hops.clone(), cap: *cap })
                .collect();
            let oracle = max_min_rates(&topo, &demands);
            for ((id, _, _), &want) in live.iter().zip(&oracle) {
                let got = net.rate(*id).unwrap().bits_per_sec();
                prop_assert!(
                    (got - want).abs() <= want.abs() * 1e-6 + 1e-3,
                    "flow {id:?}: incremental {got} vs oracle {want}"
                );
            }
        }
    }

    /// Shortest-path routing produces connected, loop-free paths whose
    /// latency is at most any single-link alternative.
    #[test]
    fn routing_paths_are_contiguous(seed_links in proptest::collection::vec((0usize..8, 0usize..8, 1u64..100), 4..20)) {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<_> = (0..8).map(|i| b.add_node(format!("n{i}"))).collect();
        let mut any = false;
        for (x, y, lat) in seed_links {
            if x != y {
                b.add_link(
                    nodes[x],
                    nodes[y],
                    Bandwidth::mbps(100.0),
                    SimDuration::from_millis(lat),
                );
                any = true;
            }
        }
        prop_assume!(any);
        let topo = b.build();
        let mut rt = RoutingTable::new(&topo);
        for &src in &nodes {
            for &dst in &nodes {
                if let Some(p) = rt.route(src, dst) {
                    // Path::new validates contiguity internally; check
                    // endpoints and loop-freedom via hop count bound.
                    prop_assert_eq!(p.src(), src);
                    prop_assert_eq!(p.dst(), dst);
                    prop_assert!(p.hop_count() < topo.node_count());
                }
            }
        }
    }
}
