//! Shortest-path routing and path metrics.
//!
//! "Native IP routing" in the experiments is latency-weighted Dijkstra over
//! the topology. Detour experiments (§IV-C) build composite paths through a
//! waypoint with [`RoutingTable::route_via`] and compare their metrics
//! against the native path — exactly the triangle-inequality-violation
//! setting the detour literature exploits.

use crate::time::SimDuration;
use crate::topology::{DirLinkId, NodeId, Topology};
use crate::units::Bandwidth;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A loop-free directed path through the topology.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Path {
    src: NodeId,
    dst: NodeId,
    hops: Vec<DirLinkId>,
}

impl Path {
    /// Builds a path from explicit directed hops.
    ///
    /// # Panics
    ///
    /// Panics if the hops are not contiguous from `src` or do not end at
    /// `dst`.
    pub fn new(topo: &Topology, src: NodeId, dst: NodeId, hops: Vec<DirLinkId>) -> Self {
        let mut at = src;
        for &h in &hops {
            assert_eq!(topo.dir_from(h), at, "discontiguous path hop {h:?}");
            at = topo.dir_to(h);
        }
        assert_eq!(at, dst, "path does not terminate at {dst:?}");
        Path { src, dst, hops }
    }

    /// Builds a path from hops already known to be contiguous (e.g. stored
    /// by the flow arena) without re-validating against the topology.
    pub(crate) fn from_raw(src: NodeId, dst: NodeId, hops: Vec<DirLinkId>) -> Self {
        Path { src, dst, hops }
    }

    /// An empty path from a node to itself (infinite capacity, zero delay).
    pub fn trivial(node: NodeId) -> Self {
        Path {
            src: node,
            dst: node,
            hops: Vec::new(),
        }
    }

    /// The origin node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The directed links traversed, in order.
    pub fn hops(&self) -> &[DirLinkId] {
        &self.hops
    }

    /// Number of links traversed.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// One-way propagation delay: the sum of link latencies.
    pub fn latency(&self, topo: &Topology) -> SimDuration {
        self.hops.iter().fold(SimDuration::ZERO, |acc, h| {
            acc + topo.link_latency(h.link())
        })
    }

    /// Round-trip propagation delay (twice the one-way latency; the model
    /// assumes symmetric reverse routing for ACKs).
    pub fn rtt(&self, topo: &Topology) -> SimDuration {
        self.latency(topo) * 2
    }

    /// End-to-end loss probability: `1 - prod(1 - p_link)`.
    pub fn loss(&self, topo: &Topology) -> f64 {
        1.0 - self
            .hops
            .iter()
            .map(|h| 1.0 - topo.link_loss(h.link()))
            .product::<f64>()
    }

    /// The capacity of the tightest directed link on the path; `None` for
    /// the trivial path (unbounded).
    pub fn bottleneck(&self, topo: &Topology) -> Option<Bandwidth> {
        self.hops
            .iter()
            .map(|&h| topo.dir_capacity(h))
            .min_by(|a, b| a.partial_cmp(b).expect("capacities are finite"))
    }

    /// Concatenates `self` with `tail` (whose source must be this path's
    /// destination). Used to build detour paths through a waypoint.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints do not line up.
    pub fn join(&self, tail: &Path) -> Path {
        assert_eq!(self.dst, tail.src, "paths do not share a junction node");
        let mut hops = self.hops.clone();
        hops.extend_from_slice(&tail.hops);
        Path {
            src: self.src,
            dst: tail.dst,
            hops,
        }
    }
}

/// Computes and caches latency-shortest paths over a fixed topology.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    topo: Topology,
    /// per source: predecessor directed link on the shortest-path tree,
    /// lazily computed. `cache[src][node]` is the dir link arriving at node.
    cache: Vec<Option<Vec<Option<DirLinkId>>>>,
}

impl RoutingTable {
    /// Creates a routing table over a snapshot of the topology.
    pub fn new(topo: &Topology) -> Self {
        RoutingTable {
            cache: vec![None; topo.node_count()],
            topo: topo.clone(),
        }
    }

    /// The topology this table routes over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn tree(&mut self, src: NodeId) -> &Vec<Option<DirLinkId>> {
        if self.cache[src.index()].is_none() {
            self.cache[src.index()] = Some(dijkstra(&self.topo, src));
        }
        self.cache[src.index()].as_ref().expect("just computed")
    }

    /// The latency-shortest path from `src` to `dst`, or `None` if the
    /// nodes are disconnected. `src == dst` yields the trivial path.
    pub fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Path> {
        if src == dst {
            return Some(Path::trivial(src));
        }
        let topo = self.topo.clone();
        let tree = self.tree(src);
        let mut hops = Vec::new();
        let mut at = dst;
        while at != src {
            let h = tree[at.index()]?;
            hops.push(h);
            at = topo.dir_from(h);
        }
        hops.reverse();
        Some(Path::new(&topo, src, dst, hops))
    }

    /// A detour path `src → waypoint → dst`, each leg routed natively.
    /// Returns `None` if either leg is disconnected.
    pub fn route_via(&mut self, src: NodeId, waypoint: NodeId, dst: NodeId) -> Option<Path> {
        let first = self.route(src, waypoint)?;
        let second = self.route(waypoint, dst)?;
        Some(first.join(&second))
    }
}

/// Single-source shortest path by latency; returns the predecessor
/// directed-link of each node (None for unreachable / the source itself).
fn dijkstra(topo: &Topology, src: NodeId) -> Vec<Option<DirLinkId>> {
    let n = topo.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut pred: Vec<Option<DirLinkId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0u64, src.index())));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, dl) in topo.neighbors(NodeId(u as u32)) {
            let w = topo.link_weight(dl.link());
            let nd = d.saturating_add(w);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = Some(dl);
                heap.push(Reverse((nd, v.index())));
            }
        }
    }
    pred
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    /// A triangle where the direct a—c link is slow (high latency), and the
    /// detour a—b—c is faster: a triangle-inequality violation.
    fn tiv_triangle() -> (Topology, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let w = b.add_node("waypoint");
        let c = b.add_node("c");
        b.add_link(a, c, Bandwidth::mbps(10.0), SimDuration::from_millis(100));
        b.add_link(a, w, Bandwidth::gbps(1.0), SimDuration::from_millis(10));
        b.add_link(w, c, Bandwidth::gbps(1.0), SimDuration::from_millis(10));
        (b.build(), a, w, c)
    }

    #[test]
    fn shortest_path_prefers_low_latency_detour() {
        let (t, a, w, c) = tiv_triangle();
        let mut rt = RoutingTable::new(&t);
        let p = rt.route(a, c).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.latency(&t), SimDuration::from_millis(20));
        assert_eq!(t.dir_to(p.hops()[0]), w);
    }

    #[test]
    fn route_via_builds_composite_path() {
        let (t, a, w, c) = tiv_triangle();
        let mut rt = RoutingTable::new(&t);
        let p = rt.route_via(a, w, c).unwrap();
        assert_eq!(p.src(), a);
        assert_eq!(p.dst(), c);
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.rtt(&t), SimDuration::from_millis(40));
    }

    #[test]
    fn trivial_route() {
        let (t, a, _, _) = tiv_triangle();
        let mut rt = RoutingTable::new(&t);
        let p = rt.route(a, a).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.latency(&t), SimDuration::ZERO);
        assert!(p.bottleneck(&t).is_none());
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        let _z = b.add_node("z-island");
        b.add_link(x, y, Bandwidth::gbps(1.0), SimDuration::from_millis(1));
        let t = b.build();
        let mut rt = RoutingTable::new(&t);
        assert!(rt.route(x, _z).is_none());
    }

    #[test]
    fn path_loss_composes() {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        let z = b.add_node("z");
        b.add_link_full(
            x,
            y,
            Bandwidth::gbps(1.0),
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(1),
            0.1,
        );
        b.add_link_full(
            y,
            z,
            Bandwidth::gbps(1.0),
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(1),
            0.2,
        );
        let t = b.build();
        let mut rt = RoutingTable::new(&t);
        let p = rt.route(x, z).unwrap();
        assert!((p.loss(&t) - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_is_tightest_directed_capacity() {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        let z = b.add_node("z");
        b.add_link(x, y, Bandwidth::gbps(1.0), SimDuration::from_millis(1));
        b.add_link_full(
            y,
            z,
            Bandwidth::mbps(50.0),
            Bandwidth::gbps(1.0),
            SimDuration::from_millis(1),
            0.0,
        );
        let t = b.build();
        let mut rt = RoutingTable::new(&t);
        let p = rt.route(x, z).unwrap();
        assert_eq!(p.bottleneck(&t).unwrap(), Bandwidth::mbps(50.0));
        // Reverse direction sees the full gigabit.
        let q = rt.route(z, x).unwrap();
        assert_eq!(q.bottleneck(&t).unwrap(), Bandwidth::gbps(1.0));
    }

    #[test]
    #[should_panic(expected = "discontiguous")]
    fn discontiguous_paths_rejected() {
        let (t, a, _, c) = tiv_triangle();
        // hop 0 is the a—c direct link's reverse: starts at c, not a.
        let bad = t.neighbors(c)[0].1;
        let _ = Path::new(&t, a, c, vec![bad]);
    }

    #[test]
    #[should_panic(expected = "junction")]
    fn join_requires_shared_node() {
        let (t, a, w, c) = tiv_triangle();
        let mut rt = RoutingTable::new(&t);
        let p1 = rt.route(a, w).unwrap();
        let p2 = rt.route(a, c).unwrap();
        let _ = p1.join(&p2);
    }
}
